/**
 * @file
 * Tests for characterization: per-PE loads vs. the schedule, the
 * summary statistics (C_max, B_max, M_avg, F/C_max), and the §3.4 beta
 * bound's definition and range.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/characterization.h"
#include "mesh/generator.h"
#include "parallel/characterize.h"
#include "partition/geometric_bisection.h"

namespace
{

using namespace quake::core;
using namespace quake::parallel;
using namespace quake::mesh;
using namespace quake::partition;

DistributedProblem
latticeProblem(int parts, int n = 4)
{
    const TetMesh mesh =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, n, n, n);
    const GeometricBisection partitioner;
    return distributeTopology(mesh, partitioner.partition(mesh, parts));
}

TEST(Characterize, LoadsMatchSchedule)
{
    const DistributedProblem problem = latticeProblem(4);
    const SmvpCharacterization ch = characterize(problem, "lattice/4");
    ASSERT_EQ(ch.numPes, 4);
    ASSERT_EQ(ch.pes.size(), 4u);
    for (int p = 0; p < 4; ++p) {
        EXPECT_EQ(ch.pes[p].words, problem.schedule.pe(p).words());
        EXPECT_EQ(ch.pes[p].blocks,
                  problem.schedule.pe(p).blocksMaximal());
        EXPECT_GT(ch.pes[p].flops, 0);
    }
    EXPECT_EQ(ch.bisectionWords, problem.schedule.bisectionWords());
    EXPECT_EQ(ch.messageSizes, problem.schedule.messageSizes());
}

TEST(Characterize, FlopsMatchPatternArithmetic)
{
    // flops = 2 * 9 * (local adjacency + diagonal blocks).
    const DistributedProblem problem = latticeProblem(2);
    const SmvpCharacterization ch = characterize(problem, "lattice/2");
    for (int p = 0; p < 2; ++p) {
        const Subdomain &sub = problem.subdomains[p];
        const NodeAdjacency adj = sub.localMesh.buildNodeAdjacency();
        const std::int64_t blocks =
            static_cast<std::int64_t>(adj.adjncy.size()) +
            sub.localMesh.numNodes();
        EXPECT_EQ(ch.pes[p].flops, 18 * blocks);
    }
}

TEST(Characterize, AssembledAndPatternFlopsAgree)
{
    const TetMesh mesh =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 3, 3, 3);
    const UniformModel model(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
    const GeometricBisection partitioner;
    const Partition p = partitioner.partition(mesh, 3);
    const SmvpCharacterization with_values =
        characterize(distribute(mesh, model, p), "v");
    const SmvpCharacterization pattern_only =
        characterize(distributeTopology(mesh, p), "p");
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(with_values.pes[i].flops, pattern_only.pes[i].flops);
}

TEST(Characterize, FixedBlockModeInflatesBlocks)
{
    const DistributedProblem problem = latticeProblem(4);
    CharacterizeOptions fixed;
    fixed.blockMode = BlockMode::kFixedSize;
    fixed.blockWords = 4;
    const SmvpCharacterization max_blocks =
        characterize(problem, "max");
    const SmvpCharacterization small_blocks =
        characterize(problem, "fixed", fixed);
    for (int p = 0; p < 4; ++p)
        EXPECT_GT(small_blocks.pes[p].blocks, max_blocks.pes[p].blocks);
}

// ------------------------------------------------------------ summarize

TEST(Summarize, HandBuiltCharacterization)
{
    SmvpCharacterization ch;
    ch.name = "hand";
    ch.numPes = 3;
    ch.pes = {PeLoad{100, 10, 2}, PeLoad{150, 30, 4},
              PeLoad{120, 20, 6}};
    ch.messageSizes = {5, 5, 10, 10, 15, 15};
    ch.bisectionWords = 40;

    const CharacterizationSummary s = summarize(ch);
    EXPECT_EQ(s.flopsMax, 150);
    EXPECT_NEAR(s.flopsMean, (100 + 150 + 120) / 3.0, 1e-12);
    EXPECT_EQ(s.wordsMax, 30);
    EXPECT_EQ(s.blocksMax, 6);
    EXPECT_NEAR(s.messageSizeAvg, 10.0, 1e-12);
    EXPECT_NEAR(s.flopsPerWord, 5.0, 1e-12);
    EXPECT_EQ(s.bisectionWords, 40);
    EXPECT_NEAR(s.flopBalance, 150.0 / (370.0 / 3.0), 1e-12);
}

TEST(Summarize, BetaOneWhenOnePeDominatesBoth)
{
    SmvpCharacterization ch;
    ch.numPes = 2;
    ch.pes = {PeLoad{1, 40, 8}, PeLoad{1, 10, 2}};
    const CharacterizationSummary s = summarize(ch);
    EXPECT_DOUBLE_EQ(s.beta, 1.0);
}

TEST(Summarize, BetaMatchesPaperFormula)
{
    // Maxima on different PEs: C_max = 40 (PE 0), B_max = 8 (PE 1).
    SmvpCharacterization ch;
    ch.numPes = 2;
    ch.pes = {PeLoad{1, 40, 4}, PeLoad{1, 20, 8}};
    const CharacterizationSummary s = summarize(ch);
    // PE0 term: max(40*(8-4)/(40*8), 8*(40-40)/(4*40)) = max(.5, 0) = .5
    // PE1 term: max(40*(8-8)/(20*8), 8*(40-20)/(8*40)) = max(0, .5) = .5
    EXPECT_NEAR(s.beta, 1.5, 1e-12);
}

TEST(Summarize, BetaNeverExceedsTwo)
{
    SmvpCharacterization ch;
    ch.numPes = 2;
    ch.pes = {PeLoad{1, 1000, 1}, PeLoad{1, 1, 1000}};
    const CharacterizationSummary s = summarize(ch);
    EXPECT_GE(s.beta, 1.0);
    EXPECT_LE(s.beta, 2.0);
}

TEST(Summarize, RejectsEmpty)
{
    EXPECT_THROW(summarize(SmvpCharacterization{}),
                 quake::common::FatalError);
}

class LatticeBetaSweep : public ::testing::TestWithParam<int>
{};

TEST_P(LatticeBetaSweep, BetaInPaperRange)
{
    const SmvpCharacterization ch =
        characterize(latticeProblem(GetParam(), 5), "beta-sweep");
    const CharacterizationSummary s = summarize(ch);
    // The paper's Figure 6 values lie in [1.00, 1.15]; the definition
    // guarantees [1, 2].
    EXPECT_GE(s.beta, 1.0);
    EXPECT_LE(s.beta, 2.0);
}

TEST_P(LatticeBetaSweep, FlopsBalanced)
{
    const SmvpCharacterization ch =
        characterize(latticeProblem(GetParam(), 5), "balance-sweep");
    const CharacterizationSummary s = summarize(ch);
    // Paper §3.1: modern partitioners distribute computation evenly.
    EXPECT_LT(s.flopBalance, 1.25);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, LatticeBetaSweep,
                         ::testing::Values(2, 4, 8, 16));

} // namespace
