/**
 * @file
 * Tests for the cache simulator and the SMVP T_f prediction: geometry
 * validation, hit/miss mechanics (cold, capacity, conflict, LRU), the
 * two-level hierarchy accounting, and the size-dependent sustained-rate
 * story the paper tells in §3.1/§4.
 */

#include <gtest/gtest.h>

#include "arch/cache_model.h"
#include "arch/smvp_trace.h"
#include "common/error.h"
#include "mesh/generator.h"
#include "sparse/assembly.h"

namespace
{

using namespace quake::arch;
using quake::common::FatalError;

// ------------------------------------------------------------ CacheSim

TEST(CacheConfig, Geometry)
{
    const CacheConfig c{8 * 1024, 32, 2};
    EXPECT_EQ(c.numSets(), 128);
    EXPECT_NO_THROW(c.validate());
}

TEST(CacheConfig, RejectsBadGeometry)
{
    EXPECT_THROW((CacheConfig{0, 32, 1}).validate(), FatalError);
    EXPECT_THROW((CacheConfig{8192, 48, 1}).validate(), FatalError);
    EXPECT_THROW((CacheConfig{8192, 32, 7}).validate(), FatalError);
}

std::string
validationMessage(const CacheConfig &c)
{
    try {
        c.validate();
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

// Each rejected field names itself, so a CLI user (or a rejection
// test) can tell a bad size from a bad line from a bad way count.
TEST(CacheConfig, DistinctMessagePerField)
{
    EXPECT_NE(validationMessage(CacheConfig{0, 32, 1})
                  .find("cache size must be positive"),
              std::string::npos);
    EXPECT_NE(validationMessage(CacheConfig{-8192, 32, 1})
                  .find("cache size must be positive"),
              std::string::npos);
    EXPECT_NE(validationMessage(CacheConfig{8192, 0, 1})
                  .find("line size must be positive"),
              std::string::npos);
    EXPECT_NE(validationMessage(CacheConfig{8192, -32, 1})
                  .find("line size must be positive"),
              std::string::npos);
    EXPECT_NE(validationMessage(CacheConfig{8192, 48, 1})
                  .find("line size must be a power of two"),
              std::string::npos);
    EXPECT_NE(validationMessage(CacheConfig{8192, 32, 0})
                  .find("associativity must be positive"),
              std::string::npos);
    EXPECT_NE(validationMessage(CacheConfig{8192, 32, -2})
                  .find("associativity must be positive"),
              std::string::npos);
    EXPECT_NE(validationMessage(CacheConfig{8200, 32, 1})
                  .find("size must be a multiple of line * associativity"),
              std::string::npos);
    EXPECT_NE(validationMessage(CacheConfig{96 * 1024, 32, 1})
                  .find("set count must be a power of two"),
              std::string::npos);
}

TEST(CacheSim, ColdMissThenHit)
{
    CacheSim cache(CacheConfig{1024, 32, 1});
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x101f)); // same 32-byte line
    EXPECT_FALSE(cache.access(0x1020)); // next line
    EXPECT_EQ(cache.accesses(), 4);
    EXPECT_EQ(cache.misses(), 2);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
}

TEST(CacheSim, DirectMappedConflict)
{
    // 1 KB direct-mapped, 32B lines -> 32 sets; addresses 1 KB apart
    // collide.
    CacheSim cache(CacheConfig{1024, 32, 1});
    EXPECT_FALSE(cache.access(0x0));
    EXPECT_FALSE(cache.access(0x400)); // evicts 0x0
    EXPECT_FALSE(cache.access(0x0));   // conflict miss
}

TEST(CacheSim, TwoWayAssociativityRemovesThatConflict)
{
    CacheSim cache(CacheConfig{1024, 32, 2});
    EXPECT_FALSE(cache.access(0x0));
    EXPECT_FALSE(cache.access(0x400));
    EXPECT_TRUE(cache.access(0x0)); // both fit in the set
}

TEST(CacheSim, LruEvictsLeastRecentlyUsed)
{
    // 2-way set; three colliding lines A, B, C.
    CacheSim cache(CacheConfig{1024, 32, 2});
    const std::uint64_t a = 0x0, b = 0x400, c = 0x800;
    cache.access(a);
    cache.access(b);
    cache.access(a);  // A most recent
    cache.access(c);  // evicts B
    EXPECT_TRUE(cache.access(a));
    EXPECT_FALSE(cache.access(b));
}

TEST(CacheSim, CapacityMissesOnBigWorkingSet)
{
    // Stream 64 KB through an 8 KB cache twice: second pass still
    // misses everything (LRU on a looping stream).
    CacheSim cache(CacheConfig{8 * 1024, 32, 2});
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 32)
            cache.access(addr);
    EXPECT_GT(cache.missRate(), 0.95);
}

TEST(CacheSim, SmallWorkingSetStaysResident)
{
    CacheSim cache(CacheConfig{8 * 1024, 32, 2});
    for (int pass = 0; pass < 10; ++pass)
        for (std::uint64_t addr = 0; addr < 4 * 1024; addr += 8)
            cache.access(addr);
    // First pass cold-misses 128 lines; the rest hit.
    EXPECT_LT(cache.missRate(), 0.03);
}

TEST(CacheSim, ResetClears)
{
    CacheSim cache(CacheConfig{1024, 32, 1});
    cache.access(0x0);
    cache.reset();
    EXPECT_EQ(cache.accesses(), 0);
    EXPECT_FALSE(cache.access(0x0)); // cold again
}

// -------------------------------------------------------- HierarchySim

TEST(Hierarchy, AccountsPerLevel)
{
    MemoryHierarchy h;
    h.l1 = CacheConfig{1024, 32, 1};
    h.l2 = CacheConfig{4096, 32, 2};
    h.l1HitSeconds = 1e-9;
    h.l2HitSeconds = 10e-9;
    h.memorySeconds = 100e-9;
    HierarchySim sim(h);

    sim.access(0x0); // misses both: 1 + 10 + 100 ns
    EXPECT_EQ(sim.stats().l1Misses, 1);
    EXPECT_EQ(sim.stats().l2Misses, 1);
    EXPECT_NEAR(sim.stats().seconds, 111e-9, 1e-15);

    sim.access(0x0); // L1 hit: +1 ns
    EXPECT_NEAR(sim.stats().seconds, 112e-9, 1e-15);
    EXPECT_EQ(sim.stats().accesses, 2);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    MemoryHierarchy h;
    h.l1 = CacheConfig{1024, 32, 1};
    h.l2 = CacheConfig{64 * 1024, 32, 4};
    HierarchySim sim(h);
    // Two conflicting L1 lines, both L2-resident after first touch.
    sim.access(0x0);
    sim.access(0x400);
    sim.access(0x0); // L1 conflict miss, L2 hit
    EXPECT_EQ(sim.stats().l1Misses, 3);
    EXPECT_EQ(sim.stats().l2Misses, 2);
}

// ------------------------------------------------------- Tf prediction

TEST(TfPrediction, InCacheMatrixRunsNearPeak)
{
    using namespace quake;
    // A tiny matrix that fits in L2: after the cold pass the replay is
    // still one pass, so rates are bounded by cold misses — use a
    // hierarchy with fast memory to isolate the arithmetic bound.
    const mesh::TetMesh m = mesh::buildKuhnLattice(
        mesh::Aabb{{0, 0, 0}, {1, 1, 1}}, 2, 2, 2);
    const mesh::UniformModel model(mesh::Aabb{{0, 0, 0}, {1, 1, 1}},
                                   1.0, 1.0);
    const sparse::Bcsr3Matrix k = sparse::assembleStiffness(m, model);

    MemoryHierarchy instant;
    instant.l1HitSeconds = 0.0;
    instant.l2HitSeconds = 0.0;
    instant.memorySeconds = 0.0;
    const TfPrediction p = predictSmvpTf(k, instant, CoreModel{600e6});
    // Memory is free, so the prediction collapses to the peak rate.
    EXPECT_NEAR(p.mflops, 600.0, 1e-6);
    EXPECT_EQ(p.flops, k.flopsPerMultiply());
}

TEST(TfPrediction, LargeMatrixFarBelowPeak)
{
    using namespace quake;
    // sf10-scale matrix (~5 MB) against a T3E-like hierarchy: the
    // paper's 12%-of-peak regime.
    const mesh::GeneratedMesh g =
        mesh::generateSfMesh(mesh::SfClass::kSf10);
    const mesh::LayeredBasinModel model;
    const sparse::Bcsr3Matrix k =
        sparse::assembleStiffness(g.mesh, model);

    const TfPrediction p =
        predictSmvpTf(k, MemoryHierarchy{}, CoreModel{600e6});
    EXPECT_LT(p.mflops, 0.5 * 600.0); // far below peak
    EXPECT_GT(p.mflops, 10.0);        // but not absurd
    EXPECT_GT(p.memory.l1MissRate(), 0.01);
    EXPECT_NEAR(p.tf * p.mflops * 1e6, 1.0, 1e-9);
}

TEST(TfPrediction, BiggerProblemsMissMore)
{
    using namespace quake;
    const mesh::UniformModel model(mesh::Aabb{{0, 0, 0}, {1, 1, 1}},
                                   1.0, 1.0);
    const mesh::TetMesh small = mesh::buildKuhnLattice(
        mesh::Aabb{{0, 0, 0}, {1, 1, 1}}, 3, 3, 3);
    const mesh::TetMesh large = mesh::buildKuhnLattice(
        mesh::Aabb{{0, 0, 0}, {1, 1, 1}}, 12, 12, 12);

    const TfPrediction ps = predictSmvpTf(
        sparse::assembleStiffness(small, model), MemoryHierarchy{});
    const TfPrediction pl = predictSmvpTf(
        sparse::assembleStiffness(large, model), MemoryHierarchy{});
    EXPECT_GE(pl.memory.l1MissRate(), ps.memory.l1MissRate());
    EXPECT_GE(ps.mflops, pl.mflops);
}

TEST(TfPrediction, RejectsBadInputs)
{
    using namespace quake;
    const sparse::Bcsr3Matrix empty;
    EXPECT_THROW(predictSmvpTf(empty, MemoryHierarchy{}), FatalError);
}

} // namespace
