/**
 * @file
 * Unit and property tests for the geometric primitives: Vec3 algebra,
 * bounding boxes, and tetrahedron measures.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "mesh/geometry.h"

namespace
{

using quake::common::SplitMix64;
using namespace quake::mesh;

// ------------------------------------------------------------------ Vec3

TEST(Vec3, Arithmetic)
{
    const Vec3 a{1, 2, 3};
    const Vec3 b{4, 5, 6};
    EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
    EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
    EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
    EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
    EXPECT_EQ(a / 2.0, (Vec3{0.5, 1, 1.5}));
}

TEST(Vec3, DotAndNorm)
{
    const Vec3 a{1, 2, 3};
    const Vec3 b{4, 5, 6};
    EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
    EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
    EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm2(), 25.0);
}

TEST(Vec3, CrossIsOrthogonalAndRightHanded)
{
    const Vec3 x{1, 0, 0};
    const Vec3 y{0, 1, 0};
    EXPECT_EQ(x.cross(y), (Vec3{0, 0, 1}));
    const Vec3 a{1.5, -2.0, 0.25};
    const Vec3 b{0.5, 3.0, -1.0};
    const Vec3 c = a.cross(b);
    EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
    EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3, PlusEquals)
{
    Vec3 a{1, 1, 1};
    a += Vec3{2, 3, 4};
    EXPECT_EQ(a, (Vec3{3, 4, 5}));
}

// ------------------------------------------------------------------ Aabb

TEST(Aabb, ExtentCenterContains)
{
    const Aabb box{{0, 0, 0}, {2, 4, 6}};
    EXPECT_EQ(box.extent(), (Vec3{2, 4, 6}));
    EXPECT_EQ(box.center(), (Vec3{1, 2, 3}));
    EXPECT_TRUE(box.contains({1, 1, 1}));
    EXPECT_TRUE(box.contains({0, 0, 0}));
    EXPECT_TRUE(box.contains({2, 4, 6}));
    EXPECT_FALSE(box.contains({-0.1, 1, 1}));
    EXPECT_FALSE(box.contains({1, 4.1, 1}));
}

TEST(Aabb, ExpandGrows)
{
    Aabb box{{0, 0, 0}, {1, 1, 1}};
    box.expand({-1, 2, 0.5});
    EXPECT_EQ(box.lo, (Vec3{-1, 0, 0}));
    EXPECT_EQ(box.hi, (Vec3{1, 2, 1}));
}

// ------------------------------------------------------ tetrahedron math

// The canonical unit corner tet: volume 1/6.
const Vec3 kO{0, 0, 0};
const Vec3 kX{1, 0, 0};
const Vec3 kY{0, 1, 0};
const Vec3 kZ{0, 0, 1};

TEST(Tet, SignedVolumeOrientation)
{
    EXPECT_DOUBLE_EQ(tetSignedVolume(kO, kX, kY, kZ), 1.0 / 6.0);
    // Swapping two vertices flips the sign.
    EXPECT_DOUBLE_EQ(tetSignedVolume(kO, kY, kX, kZ), -1.0 / 6.0);
    EXPECT_DOUBLE_EQ(tetVolume(kO, kY, kX, kZ), 1.0 / 6.0);
}

TEST(Tet, VolumeScalesCubically)
{
    const double v1 = tetVolume(kO, kX, kY, kZ);
    const double v2 =
        tetVolume(kO * 3.0, kX * 3.0, kY * 3.0, kZ * 3.0);
    EXPECT_NEAR(v2, 27.0 * v1, 1e-12);
}

TEST(Tet, VolumeTranslationInvariant)
{
    const Vec3 shift{5, -3, 2};
    EXPECT_NEAR(tetVolume(kO + shift, kX + shift, kY + shift, kZ + shift),
                tetVolume(kO, kX, kY, kZ), 1e-12);
}

TEST(Tet, DegenerateHasZeroVolume)
{
    // All four points coplanar.
    EXPECT_DOUBLE_EQ(tetVolume(kO, kX, kY, Vec3{1, 1, 0}), 0.0);
}

TEST(Tet, Centroid)
{
    EXPECT_EQ(tetCentroid(kO, kX, kY, kZ),
              (Vec3{0.25, 0.25, 0.25}));
}

TEST(Tet, EdgeLengths)
{
    const auto lengths = tetEdgeLengths(kO, kX, kY, kZ);
    // Edges from the origin have length 1; the other three are sqrt(2).
    int unit = 0, diag = 0;
    for (double len : lengths) {
        if (std::fabs(len - 1.0) < 1e-12)
            ++unit;
        else if (std::fabs(len - std::sqrt(2.0)) < 1e-12)
            ++diag;
    }
    EXPECT_EQ(unit, 3);
    EXPECT_EQ(diag, 3);
}

TEST(Tet, LongestEdgeIndexConsistent)
{
    const int e = tetLongestEdge(kO, kX, kY, kZ);
    const auto lengths = tetEdgeLengths(kO, kX, kY, kZ);
    for (double len : lengths)
        EXPECT_GE(lengths[e], len - 1e-15);
}

TEST(Tet, QualityRegularIsOne)
{
    // Regular tetrahedron with unit edges.
    const Vec3 a{0, 0, 0};
    const Vec3 b{1, 0, 0};
    const Vec3 c{0.5, std::sqrt(3.0) / 2.0, 0};
    const Vec3 d{0.5, std::sqrt(3.0) / 6.0, std::sqrt(6.0) / 3.0};
    EXPECT_NEAR(tetQuality(a, b, c, d), 1.0, 1e-9);
}

TEST(Tet, QualityDegenerateIsZero)
{
    EXPECT_NEAR(tetQuality(kO, kX, kY, Vec3{1, 1, 0}), 0.0, 1e-12);
}

TEST(Tet, QualityScaleInvariant)
{
    const double q1 = tetQuality(kO, kX, kY, kZ);
    const double q2 =
        tetQuality(kO * 7.5, kX * 7.5, kY * 7.5, kZ * 7.5);
    EXPECT_NEAR(q1, q2, 1e-12);
}

TEST(Tet, SurfaceAreaUnitCorner)
{
    // Three right faces of area 1/2 plus the diagonal face of area
    // sqrt(3)/2.
    EXPECT_NEAR(tetSurfaceArea(kO, kX, kY, kZ),
                1.5 + std::sqrt(3.0) / 2.0, 1e-12);
}

// Property sweep: random nondegenerate tets.
class RandomTetProperty : public ::testing::TestWithParam<int>
{
  protected:
    std::array<Vec3, 4>
    randomTet()
    {
        SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
        std::array<Vec3, 4> v;
        do {
            for (Vec3 &p : v)
                p = Vec3{rng.uniform(-10, 10), rng.uniform(-10, 10),
                         rng.uniform(-10, 10)};
        } while (tetVolume(v[0], v[1], v[2], v[3]) < 1e-3);
        return v;
    }
};

TEST_P(RandomTetProperty, QualityInUnitInterval)
{
    const auto v = randomTet();
    const double q = tetQuality(v[0], v[1], v[2], v[3]);
    EXPECT_GT(q, 0.0);
    EXPECT_LE(q, 1.0 + 1e-12);
}

TEST_P(RandomTetProperty, VolumePermutationInvariant)
{
    const auto v = randomTet();
    const double base = tetVolume(v[0], v[1], v[2], v[3]);
    EXPECT_NEAR(tetVolume(v[2], v[0], v[3], v[1]), base, 1e-9);
    EXPECT_NEAR(tetVolume(v[3], v[2], v[1], v[0]), base, 1e-9);
}

TEST_P(RandomTetProperty, LongestEdgeBoundsAllEdges)
{
    const auto v = randomTet();
    const auto lengths = tetEdgeLengths(v[0], v[1], v[2], v[3]);
    const int e = tetLongestEdge(v[0], v[1], v[2], v[3]);
    for (double len : lengths)
        EXPECT_GE(lengths[e] + 1e-12, len);
}

TEST_P(RandomTetProperty, SignedVolumeAntisymmetry)
{
    const auto v = randomTet();
    EXPECT_NEAR(tetSignedVolume(v[0], v[1], v[2], v[3]),
                -tetSignedVolume(v[1], v[0], v[2], v[3]), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomTetProperty,
                         ::testing::Range(0, 25));

} // namespace
