/**
 * @file
 * Tests for the 3x3-block CSR matrix: block lookup and accumulation,
 * block product vs. expanded scalar product, partial-row products, and
 * invariant validation.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "sparse/bcsr3.h"

namespace
{

using quake::common::FatalError;
using quake::common::SplitMix64;
using quake::sparse::Bcsr3Matrix;
using quake::sparse::Block3;
using quake::sparse::CsrMatrix;

/** 2 block rows; pattern { (0,0), (0,1), (1,1) }. */
Bcsr3Matrix
samplePattern()
{
    return Bcsr3Matrix(2, {0, 2, 3}, {0, 1, 1});
}

Block3
sequentialBlock(double start)
{
    Block3 b;
    for (int i = 0; i < 9; ++i)
        b[i] = start + i;
    return b;
}

TEST(Bcsr3, Dimensions)
{
    const Bcsr3Matrix a = samplePattern();
    EXPECT_EQ(a.numBlockRows(), 2);
    EXPECT_EQ(a.numRows(), 6);
    EXPECT_EQ(a.numBlocks(), 3);
    EXPECT_EQ(a.nnz(), 27);
    EXPECT_EQ(a.flopsPerMultiply(), 54);
}

TEST(Bcsr3, StartsZeroed)
{
    const Bcsr3Matrix a = samplePattern();
    const std::vector<double> y = a.multiply(std::vector<double>(6, 1.0));
    for (double v : y)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Bcsr3, FindBlock)
{
    const Bcsr3Matrix a = samplePattern();
    EXPECT_EQ(a.findBlock(0, 0), 0);
    EXPECT_EQ(a.findBlock(0, 1), 1);
    EXPECT_EQ(a.findBlock(1, 1), 2);
    EXPECT_EQ(a.findBlock(1, 0), -1); // not in the pattern
    EXPECT_THROW(a.findBlock(9, 0), FatalError);
}

TEST(Bcsr3, AddToBlockAccumulates)
{
    Bcsr3Matrix a = samplePattern();
    a.addToBlock(0, 1, sequentialBlock(1));
    a.addToBlock(0, 1, sequentialBlock(1));
    const double *b = a.blockAt(a.findBlock(0, 1));
    for (int i = 0; i < 9; ++i)
        EXPECT_DOUBLE_EQ(b[i], 2.0 * (1 + i));
}

TEST(Bcsr3DeathTest, AddToMissingBlockPanics)
{
    Bcsr3Matrix a = samplePattern();
    EXPECT_DEATH(a.addToBlock(1, 0, sequentialBlock(0)),
                 "not in the sparsity pattern");
}

TEST(Bcsr3, MultiplyKnownBlock)
{
    // Single block row, identity-ish block.
    Bcsr3Matrix a(1, {0, 1}, {0});
    Block3 b{};
    b[0] = 1;
    b[4] = 2;
    b[8] = 3;
    b[1] = 5; // (0,1) entry
    a.addToBlock(0, 0, b);
    const std::vector<double> y = a.multiply({1, 10, 100});
    EXPECT_DOUBLE_EQ(y[0], 1 * 1 + 5 * 10);
    EXPECT_DOUBLE_EQ(y[1], 2 * 10);
    EXPECT_DOUBLE_EQ(y[2], 3 * 100);
}

TEST(Bcsr3, MultiplyRejectsWrongSize)
{
    const Bcsr3Matrix a = samplePattern();
    EXPECT_THROW(a.multiply(std::vector<double>(5, 0.0)), FatalError);
}

TEST(Bcsr3, MultiplyRowsWritesOnlyRange)
{
    Bcsr3Matrix a = samplePattern();
    a.addToBlock(0, 0, sequentialBlock(1));
    a.addToBlock(1, 1, sequentialBlock(2));

    std::vector<double> x(6, 1.0);
    std::vector<double> y(6, -99.0);
    a.multiplyRows(x.data(), y.data(), 1, 2); // only block row 1
    EXPECT_DOUBLE_EQ(y[0], -99.0);
    EXPECT_DOUBLE_EQ(y[1], -99.0);
    EXPECT_DOUBLE_EQ(y[2], -99.0);
    EXPECT_DOUBLE_EQ(y[3], 2 + 3 + 4);
}

TEST(Bcsr3DeathTest, ValidateCatchesBadPattern)
{
    EXPECT_DEATH(Bcsr3Matrix(2, {0, 2, 3}, {1, 0, 1}),
                 "strictly increasing");
    EXPECT_DEATH(Bcsr3Matrix(2, {0, 1, 3}, {0, 5, 1}), "out of range");
    EXPECT_DEATH(Bcsr3Matrix(2, {0, 2}, {0, 1}), "xadj size mismatch");
}

// Property: block multiply agrees with the expanded CSR multiply.
class Bcsr3RandomProperty : public ::testing::TestWithParam<int>
{
  protected:
    Bcsr3Matrix
    randomMatrix(SplitMix64 &rng)
    {
        const std::int64_t n = 2 + static_cast<std::int64_t>(
                                       rng.nextBounded(8));
        std::vector<std::int64_t> xadj = {0};
        std::vector<std::int32_t> cols;
        for (std::int64_t r = 0; r < n; ++r) {
            for (std::int32_t c = 0; c < n; ++c)
                if (c == r || rng.nextDouble() < 0.35)
                    cols.push_back(c);
            xadj.push_back(static_cast<std::int64_t>(cols.size()));
        }
        Bcsr3Matrix a(n, xadj, cols);
        for (std::int64_t r = 0; r < n; ++r) {
            for (std::int64_t k = xadj[r]; k < xadj[r + 1]; ++k) {
                Block3 b;
                for (double &v : b)
                    v = rng.uniform(-3, 3);
                a.addToBlock(r, a.blockCols()[k], b);
            }
        }
        return a;
    }
};

TEST_P(Bcsr3RandomProperty, MatchesExpandedCsr)
{
    SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
    const Bcsr3Matrix a = randomMatrix(rng);
    const CsrMatrix expanded = a.toCsr();
    EXPECT_EQ(expanded.nnz(), a.nnz());

    std::vector<double> x(static_cast<std::size_t>(a.numRows()));
    for (double &v : x)
        v = rng.uniform(-1, 1);

    const std::vector<double> y_block = a.multiply(x);
    const std::vector<double> y_scalar = expanded.multiply(x);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y_block[i], y_scalar[i], 1e-12);
}

TEST_P(Bcsr3RandomProperty, ToCsrPreservesEntries)
{
    SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 13 + 3);
    const Bcsr3Matrix a = randomMatrix(rng);
    const CsrMatrix expanded = a.toCsr();
    // Spot-check every block against the scalar matrix.
    for (std::int64_t br = 0; br < a.numBlockRows(); ++br) {
        for (std::int64_t k = a.xadj()[br]; k < a.xadj()[br + 1]; ++k) {
            const std::int32_t bc = a.blockCols()[k];
            const double *b = a.blockAt(k);
            for (int r = 0; r < 3; ++r)
                for (int c = 0; c < 3; ++c)
                    EXPECT_DOUBLE_EQ(
                        expanded.at(3 * br + r,
                                    static_cast<std::int32_t>(3 * bc + c)),
                        b[3 * r + c]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Bcsr3RandomProperty,
                         ::testing::Range(0, 15));

} // namespace
