/**
 * @file
 * Tests for the T_l/T_w estimation methodology (§3.3's companion-TR
 * recipe): exact recovery from a linear machine, robustness to noise,
 * fit-quality reporting, and input validation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/param_fit.h"

namespace
{

using namespace quake::core;
using quake::common::FatalError;
using quake::common::SplitMix64;

TEST(BlockFit, RecoversExactLinearModel)
{
    // A T3E-like machine: T_l = 22 us, T_w = 55 ns.
    std::vector<TransferSample> samples;
    for (double k : {1.0, 8.0, 64.0, 512.0, 4096.0})
        samples.push_back({k, 22e-6 + k * 55e-9});
    const BlockFit fit = fitBlockModel(samples);
    EXPECT_NEAR(fit.tl, 22e-6, 1e-12);
    EXPECT_NEAR(fit.tw, 55e-9, 1e-18);
    EXPECT_NEAR(fit.rSquared, 1.0, 1e-9);
    EXPECT_NEAR(fit.burstBandwidthBytes(), 8.0 / 55e-9, 1.0);
}

TEST(BlockFit, RobustToMeasurementNoise)
{
    SplitMix64 rng(77);
    std::vector<TransferSample> samples;
    for (std::int64_t k = 1; k <= 65536; k *= 2) {
        const double truth = 5e-6 + k * 20e-9;
        // +/- 5% multiplicative noise.
        samples.push_back(
            {static_cast<double>(k),
             truth * rng.uniform(0.95, 1.05)});
    }
    const BlockFit fit = fitBlockModel(samples);
    EXPECT_NEAR(fit.tw, 20e-9, 2e-9);
    EXPECT_GT(fit.rSquared, 0.99);
}

TEST(BlockFit, ClampsNegativeIntercept)
{
    // Zero-latency machine with noise that pulls the intercept below 0.
    std::vector<TransferSample> samples = {
        {1.0, 0.9e-9}, {2.0, 2.2e-9}, {4.0, 3.9e-9}, {8.0, 8.3e-9}};
    const BlockFit fit = fitBlockModel(samples);
    EXPECT_GE(fit.tl, 0.0);
    EXPECT_GT(fit.tw, 0.0);
}

TEST(BlockFit, RejectsDegenerateInputs)
{
    EXPECT_THROW(fitBlockModel({}), FatalError);
    EXPECT_THROW(fitBlockModel({{4.0, 1e-6}}), FatalError);
    // Two samples at the same size: slope undefined.
    EXPECT_THROW(fitBlockModel({{4.0, 1e-6}, {4.0, 1.1e-6}}),
                 FatalError);
    // Negative per-word time (decreasing transfer times).
    EXPECT_THROW(fitBlockModel({{1.0, 1e-3}, {1000.0, 1e-6}}),
                 FatalError);
}

TEST(EstimateMachine, RunsTheWholeRecipe)
{
    // The "machine" is a model with a stateful noise source; the
    // estimate must land near the truth.
    SplitMix64 rng(404);
    TransferFn machine = [&rng](std::int64_t words) {
        return (3e-6 + words * 12.5e-9) * rng.uniform(0.98, 1.02);
    };
    const BlockFit fit =
        estimateMachine(machine, standardBlockLadder(), 5);
    EXPECT_NEAR(fit.tl, 3e-6, 0.5e-6);
    EXPECT_NEAR(fit.tw, 12.5e-9, 0.5e-9);
    EXPECT_GT(fit.rSquared, 0.999);
}

TEST(EstimateMachine, RejectsBadArguments)
{
    TransferFn machine = [](std::int64_t words) {
        return 1e-6 + words * 1e-9;
    };
    EXPECT_THROW(estimateMachine(machine, {8}, 3), FatalError);
    EXPECT_THROW(estimateMachine(machine, {8, 16}, 0), FatalError);
    EXPECT_THROW(estimateMachine(machine, {0, 16}, 1), FatalError);
}

TEST(StandardBlockLadder, PowersOfTwoCoveringSmvpRange)
{
    const std::vector<std::int64_t> ladder = standardBlockLadder();
    EXPECT_EQ(ladder.front(), 1);
    EXPECT_EQ(ladder.back(), 65'536);
    for (std::size_t i = 1; i < ladder.size(); ++i)
        EXPECT_EQ(ladder[i], 2 * ladder[i - 1]);
    // Figure 7's message sizes (36 .. 27,540 words) are inside.
    EXPECT_LE(ladder.front(), 36);
    EXPECT_GE(ladder.back(), 27'540);
}

/** Property sweep: recovery of random machines across the parameter
 * space the paper spans (T3D-era to futuristic). */
class RandomMachineRecovery : public ::testing::TestWithParam<int>
{};

TEST_P(RandomMachineRecovery, RecoversWithinTolerance)
{
    SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 101 + 13);
    // T_l from 100 ns to 100 us; T_w from 1 to 200 ns.
    const double tl = 1e-7 * std::pow(10.0, rng.uniform(0.0, 3.0));
    const double tw = 1e-9 * std::pow(10.0, rng.uniform(0.0, 2.3));
    TransferFn machine = [&, tl, tw](std::int64_t words) {
        return (tl + words * tw) * rng.uniform(0.99, 1.01);
    };
    const BlockFit fit =
        estimateMachine(machine, standardBlockLadder(), 3);
    EXPECT_NEAR(fit.tw, tw, 0.05 * tw);
    // The intercept is harder under noise when tl << tw * max_block;
    // accept 25% or the noise floor of the largest sample.
    const double floor = 0.02 * tw * 65'536;
    EXPECT_NEAR(fit.tl, tl, std::max(0.25 * tl, floor));
    EXPECT_GT(fit.rSquared, 0.99);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomMachineRecovery,
                         ::testing::Range(0, 15));

TEST(BlockFit, HalfBandwidthBlockSizeInterpretation)
{
    // At block size k* = T_l / T_w, latency and payload cost are equal
    // (the "half-power point" of a link); check via the fitted model.
    std::vector<TransferSample> samples;
    for (double k : {16.0, 64.0, 256.0, 1024.0})
        samples.push_back({k, 10e-6 + k * 10e-9});
    const BlockFit fit = fitBlockModel(samples);
    const double k_star = fit.tl / fit.tw;
    EXPECT_NEAR(k_star, 1000.0, 1.0);
}

} // namespace
