/**
 * @file
 * Tests for Equations (1) and (2) and their derived quantities, including
 * spot checks against the numbers the paper quotes in §4.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/perf_model.h"
#include "core/reference.h"

namespace
{

using namespace quake::core;
using quake::common::FatalError;

SmvpShape
sampleShape()
{
    // sf2/128 from Figure 7.
    SmvpShape s;
    s.flops = 838'224;
    s.wordsMax = 16'260;
    s.blocksMax = 50;
    return s;
}

// -------------------------------------------------------- Equation (1)

TEST(Equation1, AlgebraicForm)
{
    SmvpShape s;
    s.flops = 1000;
    s.wordsMax = 100;
    // Tc = (F/C) * ((1-E)/E) * Tf = 10 * 1 * 2ns = 20ns at E = 0.5.
    EXPECT_NEAR(requiredTc(s, 0.5, 2e-9), 20e-9, 1e-18);
    // At E = 0.9 the budget shrinks by 9x vs the E = 0.5 case.
    EXPECT_NEAR(requiredTc(s, 0.9, 2e-9), 20e-9 / 9.0, 1e-18);
}

TEST(Equation1, RoundTripsThroughAchievedEfficiency)
{
    const SmvpShape s = sampleShape();
    for (double e : {0.3, 0.5, 0.8, 0.9, 0.95}) {
        const double tf = 5e-9;
        const double tc = requiredTc(s, e, tf);
        EXPECT_NEAR(achievedEfficiency(s, tf, tc), e, 1e-12);
    }
}

TEST(Equation1, FasterProcessorsNeedFasterNetworks)
{
    const SmvpShape s = sampleShape();
    const double bw100 =
        requiredSustainedBandwidth(s, 0.9, tfFromMflops(100));
    const double bw200 =
        requiredSustainedBandwidth(s, 0.9, tfFromMflops(200));
    EXPECT_NEAR(bw200, 2.0 * bw100, 1e-3);
}

TEST(Equation1, PaperHeadline300MBs)
{
    // §4.3: 200-MFLOP PEs need ~300 MB/s sustained to run all sf2
    // instances at 90% efficiency; the binding instance is sf2/128.
    const double bw = requiredSustainedBandwidth(sampleShape(), 0.9,
                                                 tfFromMflops(200));
    EXPECT_GT(bw, 250e6);
    EXPECT_LT(bw, 320e6);
}

TEST(Equation1, Paper120MBsAt100Mflops)
{
    // §4.3: 120 MB/s sustains all sf2 SMVPs at 90% on 100-MFLOP PEs.
    const double bw = requiredSustainedBandwidth(sampleShape(), 0.9,
                                                 tfFromMflops(100));
    EXPECT_GT(bw, 110e6);
    EXPECT_LT(bw, 160e6);
}

TEST(Equation1, RejectsBadInputs)
{
    const SmvpShape s = sampleShape();
    EXPECT_THROW(requiredTc(s, 0.0, 1e-9), FatalError);
    EXPECT_THROW(requiredTc(s, 1.0, 1e-9), FatalError);
    EXPECT_THROW(requiredTc(s, 0.5, 0.0), FatalError);
    SmvpShape bad;
    EXPECT_THROW(requiredTc(bad, 0.5, 1e-9), FatalError);
}

TEST(AchievedEfficiency, ZeroCommTimeIsPerfect)
{
    EXPECT_DOUBLE_EQ(achievedEfficiency(sampleShape(), 1e-9, 0.0), 1.0);
}

// -------------------------------------------------------- Equation (2)

TEST(Equation2, AlgebraicForm)
{
    SmvpShape s;
    s.flops = 1;
    s.wordsMax = 1000;
    s.blocksMax = 10;
    // Tc = (B/C)*Tl + Tw = 0.01 * 1us + 10ns = 20ns.
    EXPECT_NEAR(tcFromBlocks(s, 1e-6, 10e-9), 20e-9, 1e-18);
}

TEST(Equation2, LatencyBudgetInvertsTcFromBlocks)
{
    const SmvpShape s = sampleShape();
    const double tc_target = 30e-9;
    const double tw = 8e-9;
    const double tl = latencyBudget(s, tc_target, tw);
    EXPECT_NEAR(tcFromBlocks(s, tl, tw), tc_target, 1e-18);
}

TEST(Equation2, InfeasibleBurstGivesNegativeBudget)
{
    const SmvpShape s = sampleShape();
    EXPECT_LT(latencyBudget(s, 10e-9, 20e-9), 0.0);
}

TEST(Equation2, LatencyForBurstBandwidthConverts)
{
    const SmvpShape s = sampleShape();
    const double tc = 30e-9;
    // 8 bytes per word: burst bw of 800 MB/s means tw = 10 ns.
    EXPECT_NEAR(latencyForBurstBandwidth(s, tc, 800e6),
                latencyBudget(s, tc, 10e-9), 1e-18);
}

TEST(Equation2, InfiniteBurstLatencyBoundSf2Of128)
{
    // Figure 10(a) regime: with Tw -> 0 the entire budget goes to
    // latency: Tl = Tc * Cmax / Bmax.  With Figure 7's sf2/128 numbers
    // at 200 MFLOPS / E = 0.9 this evaluates to ~9.3 us.  (The paper's
    // prose quotes 3 us for this bound; EXPERIMENTS.md discusses the
    // discrepancy — the equations and inputs printed in the paper give
    // the value below.)
    const SmvpShape s = sampleShape();
    const double tc = requiredTc(s, 0.9, tfFromMflops(200));
    const double tl = latencyBudget(s, tc, 0.0);
    EXPECT_NEAR(tl, 9.3e-6, 0.2e-6);
}

// ------------------------------------------------------ half-bandwidth

TEST(HalfBandwidth, SplitsCommTimeEqually)
{
    const SmvpShape s = sampleShape();
    const double tc = 30e-9;
    const HalfBandwidthPoint p = halfBandwidthPoint(s, tc);
    const double t_comm = s.wordsMax * tc;
    const double latency_part = s.blocksMax * p.latency;
    const double burst_part =
        s.wordsMax * (kBytesPerWord / p.burstBandwidthBytes);
    EXPECT_NEAR(latency_part, t_comm / 2.0, 1e-15);
    EXPECT_NEAR(burst_part, t_comm / 2.0, 1e-15);
}

TEST(HalfBandwidth, MeetsTheTcTarget)
{
    const SmvpShape s = sampleShape();
    const double tc = 30e-9;
    const HalfBandwidthPoint p = halfBandwidthPoint(s, tc);
    const double tw = kBytesPerWord / p.burstBandwidthBytes;
    EXPECT_NEAR(tcFromBlocks(s, p.latency, tw), tc, 1e-18);
}

TEST(HalfBandwidth, PaperHeadline600MBsBurst)
{
    // §4.4 / conclusion: the most demanding sf2 case (128 PEs, 200
    // MFLOPS, E = 0.9) needs ~600 MB/s burst bandwidth.
    const SmvpShape s = sampleShape();
    const double tc = requiredTc(s, 0.9, tfFromMflops(200));
    const HalfBandwidthPoint p = halfBandwidthPoint(s, tc);
    EXPECT_GT(p.burstBandwidthBytes, 500e6);
    EXPECT_LT(p.burstBandwidthBytes, 650e6);
    // Half-bandwidth latency: microseconds for maximal blocks.
    EXPECT_GT(p.latency, 1e-6);
    EXPECT_LT(p.latency, 10e-6);
}

TEST(HalfBandwidth, FourWordBlocksNeedNanosecondLatency)
{
    // Figure 11 bottom / §4.4: with 4-word cache-line blocks the same
    // operating point needs ~70-100 ns block latency.
    const SmvpShape s = withFixedBlockSize(sampleShape(), 4.0);
    const double tc = requiredTc(s, 0.9, tfFromMflops(200));
    const HalfBandwidthPoint p = halfBandwidthPoint(s, tc);
    EXPECT_GT(p.latency, 30e-9);
    EXPECT_LT(p.latency, 120e-9);
}

TEST(FixedBlockSize, RewritesBlocksMax)
{
    const SmvpShape s = withFixedBlockSize(sampleShape(), 4.0);
    EXPECT_NEAR(s.blocksMax, 16'260 / 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.wordsMax, 16'260);
    EXPECT_THROW(withFixedBlockSize(sampleShape(), 0.0), FatalError);
}

// --------------------------------------------------- bisection bandwidth

TEST(Bisection, ScalesWithVolume)
{
    const SmvpShape s = sampleShape();
    const double one = requiredBisectionBandwidth(s, 1000, 0.9, 5e-9);
    const double two = requiredBisectionBandwidth(s, 2000, 0.9, 5e-9);
    EXPECT_NEAR(two, 2.0 * one, 1e-6);
    EXPECT_DOUBLE_EQ(requiredBisectionBandwidth(s, 0, 0.9, 5e-9), 0.0);
    EXPECT_THROW(requiredBisectionBandwidth(s, -5, 0.9, 5e-9),
                 FatalError);
}

// ---------------------------------------------------------- conversions

TEST(Conversions, TfFromMflops)
{
    EXPECT_NEAR(tfFromMflops(100), 10e-9, 1e-18);
    EXPECT_NEAR(tfFromMflops(200), 5e-9, 1e-18);
    EXPECT_THROW(tfFromMflops(0), FatalError);
}

TEST(Conversions, BandwidthFromTc)
{
    EXPECT_NEAR(bandwidthFromTc(8e-9), 1e9, 1e-3);
    EXPECT_THROW(bandwidthFromTc(0), FatalError);
}

// Property sweep over the paper's whole Figure 7 grid: requirements are
// monotone in efficiency and MFLOPS, and half-points meet their target.
class PaperGridProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(PaperGridProperty, MonotoneAndConsistent)
{
    using namespace quake::core::reference;
    const PaperMesh mesh = static_cast<PaperMesh>(
        std::get<0>(GetParam()));
    const int subdomains = kSubdomainCounts[static_cast<std::size_t>(
        std::get<1>(GetParam()))];
    const SmvpShape s = shapeFor(mesh, subdomains);

    const double tf = tfFromMflops(150);
    const double tc_50 = requiredTc(s, 0.5, tf);
    const double tc_90 = requiredTc(s, 0.9, tf);
    EXPECT_GT(tc_50, tc_90); // higher efficiency -> tighter budget

    const HalfBandwidthPoint p = halfBandwidthPoint(s, tc_90);
    const double tw = kBytesPerWord / p.burstBandwidthBytes;
    EXPECT_NEAR(tcFromBlocks(s, p.latency, tw), tc_90, 1e-16);
}

INSTANTIATE_TEST_SUITE_P(
    Figure7Grid, PaperGridProperty,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 6)));

} // namespace
