/**
 * @file
 * Property tests over the whole pipeline: for every combination of
 * partitioner and subdomain count on a graded basin mesh, the paper's
 * structural invariants must hold — schedule symmetry, word
 * divisibility, beta's range, model bounds, and executable-SMVP
 * correctness.  This is the "any partition, any p" safety net under
 * every figure reproduction.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "core/perf_model.h"
#include "mesh/generator.h"
#include "parallel/characterize.h"
#include "parallel/event_sim.h"
#include "parallel/parallel_smvp.h"
#include "parallel/phase_simulator.h"
#include "partition/baselines.h"
#include "partition/geometric_bisection.h"
#include "partition/refine_boundary.h"
#include "partition/spectral.h"
#include "sparse/assembly.h"

namespace
{

using namespace quake;

enum class Method
{
    kInertial,
    kCoordinate,
    kInertialRefined,
    kSpectral,
    kSlab,
    kRandom,
};

std::unique_ptr<partition::Partitioner>
makeMethod(Method method)
{
    using namespace partition;
    static const GeometricBisection inertial_base(
        BisectionAxis::kInertial);
    switch (method) {
      case Method::kInertial:
        return std::make_unique<GeometricBisection>(
            BisectionAxis::kInertial);
      case Method::kCoordinate:
        return std::make_unique<GeometricBisection>(
            BisectionAxis::kLongestExtent);
      case Method::kInertialRefined:
        return std::make_unique<RefinedPartitioner>(inertial_base);
      case Method::kSpectral:
        return std::make_unique<SpectralBisection>();
      case Method::kSlab:
        return std::make_unique<SlabPartitioner>();
      case Method::kRandom:
        return std::make_unique<RandomPartitioner>();
    }
    return nullptr;
}

class PipelineProperty
    : public ::testing::TestWithParam<std::tuple<Method, int>>
{
  protected:
    static void
    SetUpTestSuite()
    {
        generated_ = new mesh::GeneratedMesh(
            mesh::generateSfMesh(mesh::SfClass::kSf20, 1.3));
        model_ = new mesh::LayeredBasinModel();
    }

    static void
    TearDownTestSuite()
    {
        delete generated_;
        delete model_;
        generated_ = nullptr;
        model_ = nullptr;
    }

    void
    SetUp() override
    {
        const auto [method, parts] = GetParam();
        partition_ =
            makeMethod(method)->partition(generated_->mesh, parts);
    }

    static mesh::GeneratedMesh *generated_;
    static mesh::LayeredBasinModel *model_;
    partition::Partition partition_;
};

mesh::GeneratedMesh *PipelineProperty::generated_ = nullptr;
mesh::LayeredBasinModel *PipelineProperty::model_ = nullptr;

TEST_P(PipelineProperty, StructuralInvariantsHold)
{
    const parallel::DistributedProblem problem =
        parallel::distributeTopology(generated_->mesh, partition_);
    problem.schedule.validate();

    const core::SmvpCharacterization ch =
        parallel::characterize(problem, "prop");
    const core::CharacterizationSummary s = core::summarize(ch);

    // Paper Figure 7 structure.
    EXPECT_EQ(s.wordsMax % 6, 0);
    EXPECT_EQ(s.blocksMax % 2, 0);
    EXPECT_LE(s.blocksMax / 2, problem.numPes() - 1);
    EXPECT_GE(s.beta, 1.0);
    EXPECT_LE(s.beta, 2.0);

    // Conservation: every PE's flop count is positive, and the total
    // flop count equals the global matrix's (2 * 9 scalars per block).
    std::int64_t total_flops = 0;
    for (const core::PeLoad &pe : ch.pes) {
        EXPECT_GT(pe.flops, 0);
        total_flops += pe.flops;
    }
    std::int64_t global_blocks = 0;
    for (const parallel::Subdomain &sub : problem.subdomains) {
        const mesh::NodeAdjacency adj =
            sub.localMesh.buildNodeAdjacency();
        global_blocks += static_cast<std::int64_t>(adj.adjncy.size()) +
                         sub.localMesh.numNodes();
    }
    EXPECT_EQ(total_flops, 18 * global_blocks);
}

TEST_P(PipelineProperty, ModelBoundsHoldOnMachines)
{
    const parallel::DistributedProblem problem =
        parallel::distributeTopology(generated_->mesh, partition_);
    const core::SmvpCharacterization ch =
        parallel::characterize(problem, "prop");

    for (const parallel::MachineModel &m :
         {parallel::crayT3e(),
          parallel::MachineModel{"lat", 1e-9, 1e-4, 1e-10}}) {
        const parallel::ModelAccuracy acc =
            parallel::evaluateModelAccuracy(ch, m);
        EXPECT_GE(acc.ratio, 1.0 - 1e-12) << m.name;
        EXPECT_LE(acc.ratio, acc.beta + 1e-12) << m.name;
    }
}

TEST_P(PipelineProperty, EventSimConsistentWithSchedule)
{
    const parallel::CommSchedule schedule =
        parallel::CommSchedule::build(generated_->mesh, partition_);
    const parallel::EventSimResult full = parallel::simulateExchange(
        schedule, parallel::crayT3e(),
        parallel::EventSimOptions{0.0, true});
    const parallel::EventSimResult half = parallel::simulateExchange(
        schedule, parallel::crayT3e(),
        parallel::EventSimOptions{0.0, false});
    EXPECT_LE(full.tComm, half.tComm + 1e-15);
    if (partition_.numParts > 1) {
        EXPECT_GT(half.tComm, 0.0);
    }
}

TEST_P(PipelineProperty, ParallelSmvpMatchesSequential)
{
    const parallel::DistributedProblem problem = parallel::distribute(
        generated_->mesh, *model_, partition_);
    const parallel::ParallelSmvp psmvp(problem);

    const sparse::Bcsr3Matrix global_k =
        sparse::assembleStiffness(generated_->mesh, *model_);
    std::vector<double> x(
        static_cast<std::size_t>(global_k.numRows()));
    common::SplitMix64 rng(0xfeed);
    for (double &v : x)
        v = rng.uniform(-1, 1);

    const std::vector<double> y_par = psmvp.multiply(x);
    const std::vector<double> y_seq = global_k.multiply(x);
    double worst = 0;
    for (std::size_t i = 0; i < x.size(); ++i)
        worst = std::max(worst, std::fabs(y_par[i] - y_seq[i]) /
                                    (1.0 + std::fabs(y_seq[i])));
    EXPECT_LT(worst, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Combine(
        ::testing::Values(Method::kInertial, Method::kCoordinate,
                          Method::kInertialRefined, Method::kSpectral,
                          Method::kSlab, Method::kRandom),
        ::testing::Values(2, 5, 8, 16)));

} // namespace
