/**
 * @file
 * Tests for global FEM assembly: sparsity pattern vs. mesh adjacency,
 * global symmetry, rigid-body null space, mass conservation, and the
 * paper's ~1.2 KByte/node memory claim.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "mesh/generator.h"
#include "sparse/assembly.h"
#include "sparse/elasticity.h"

namespace
{

using namespace quake::mesh;
using namespace quake::sparse;

TetMesh
lattice(int n)
{
    return buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, n, n, n);
}

UniformModel
unitModel()
{
    return UniformModel(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
}

TEST(Pattern, MatchesAdjacencyPlusDiagonal)
{
    const TetMesh m = lattice(2);
    const Bcsr3Matrix k = buildStiffnessPattern(m);
    const NodeAdjacency adj = m.buildNodeAdjacency();
    EXPECT_EQ(k.numBlockRows(), m.numNodes());
    EXPECT_EQ(k.numBlocks(),
              static_cast<std::int64_t>(adj.adjncy.size()) + m.numNodes());
    // Every node pair connected by an edge is in the pattern, plus self.
    for (NodeId i = 0; i < m.numNodes(); ++i) {
        EXPECT_GE(k.findBlock(i, i), 0);
        for (std::int64_t e = adj.xadj[i]; e < adj.xadj[i + 1]; ++e)
            EXPECT_GE(k.findBlock(i, adj.adjncy[e]), 0);
    }
}

TEST(Pattern, RowNonzerosMatchPaperEstimate)
{
    // Paper §2.2: each row of K has on average 14 blocks x 3 = 42 scalar
    // nonzeros.  Kuhn lattices are the same regime (interior nodes see
    // 15 blocks including self); accept a band.
    const TetMesh m = lattice(5);
    const Bcsr3Matrix k = buildStiffnessPattern(m);
    const double blocks_per_row =
        static_cast<double>(k.numBlocks()) /
        static_cast<double>(k.numBlockRows());
    EXPECT_GT(blocks_per_row * 3, 25.0);
    EXPECT_LT(blocks_per_row * 3, 50.0);
}

TEST(Stiffness, GlobalSymmetry)
{
    const TetMesh m = lattice(2);
    const Bcsr3Matrix k = assembleStiffness(m, unitModel());
    EXPECT_TRUE(k.toCsr().isSymmetric(1e-10));
}

TEST(Stiffness, TranslationNullSpace)
{
    const TetMesh m = lattice(2);
    const Bcsr3Matrix k = assembleStiffness(m, unitModel());
    for (int axis = 0; axis < 3; ++axis) {
        std::vector<double> u(static_cast<std::size_t>(k.numRows()), 0.0);
        for (std::int64_t i = axis; i < k.numRows(); i += 3)
            u[i] = 1.0;
        const std::vector<double> y = k.multiply(u);
        for (double v : y)
            EXPECT_NEAR(v, 0.0, 1e-9);
    }
}

TEST(Stiffness, GlobalRotationNullSpace)
{
    const TetMesh m = lattice(2);
    const Bcsr3Matrix k = assembleStiffness(m, unitModel());
    const Vec3 omega{0.2, 0.5, -0.3};
    std::vector<double> u(static_cast<std::size_t>(k.numRows()));
    for (NodeId i = 0; i < m.numNodes(); ++i) {
        const Vec3 r = omega.cross(m.node(i));
        u[3 * i + 0] = r.x;
        u[3 * i + 1] = r.y;
        u[3 * i + 2] = r.z;
    }
    const std::vector<double> y = k.multiply(u);
    for (double v : y)
        EXPECT_NEAR(v, 0.0, 1e-8);
}

TEST(Stiffness, PositiveSemidefiniteOnSamples)
{
    const TetMesh m = lattice(2);
    const Bcsr3Matrix k = assembleStiffness(m, unitModel());
    quake::common::SplitMix64 rng(2024);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<double> u(static_cast<std::size_t>(k.numRows()));
        for (double &v : u)
            v = rng.uniform(-1, 1);
        const std::vector<double> y = k.multiply(u);
        double quad = 0;
        for (std::size_t i = 0; i < u.size(); ++i)
            quad += u[i] * y[i];
        EXPECT_GE(quad, -1e-9);
    }
}

TEST(Stiffness, StiffnessTracksMaterial)
{
    // Same mesh, 2x the shear speed => 4x mu => 4x every entry.
    const TetMesh m = lattice(2);
    const Aabb box{{0, 0, 0}, {1, 1, 1}};
    const Bcsr3Matrix k1 =
        assembleStiffness(m, UniformModel(box, 1.0, 1.0));
    const Bcsr3Matrix k2 =
        assembleStiffness(m, UniformModel(box, 2.0, 1.0));
    const double *b1 = k1.blockAt(0);
    const double *b2 = k2.blockAt(0);
    for (int i = 0; i < 9; ++i)
        EXPECT_NEAR(b2[i], 4.0 * b1[i], 1e-9 * std::fabs(b1[i]) + 1e-12);
}

TEST(LumpedMass, ConservesTotalMass)
{
    const TetMesh m = lattice(3);
    const double rho = 2.2;
    const UniformModel model(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, rho);
    const std::vector<double> mass = assembleLumpedMass(m, model);
    double total = 0;
    for (std::size_t i = 0; i < mass.size(); i += 3)
        total += mass[i]; // one DOF per node carries the nodal mass
    EXPECT_NEAR(total, rho * 1.0, 1e-9);
}

TEST(LumpedMass, AllPositive)
{
    const TetMesh m = lattice(2);
    const std::vector<double> mass = assembleLumpedMass(m, unitModel());
    EXPECT_EQ(mass.size(), static_cast<std::size_t>(3 * m.numNodes()));
    for (double v : mass)
        EXPECT_GT(v, 0.0);
}

TEST(LumpedMass, ThreeDofsShareNodalMass)
{
    const TetMesh m = lattice(2);
    const std::vector<double> mass = assembleLumpedMass(m, unitModel());
    for (std::size_t i = 0; i < mass.size(); i += 3) {
        EXPECT_DOUBLE_EQ(mass[i], mass[i + 1]);
        EXPECT_DOUBLE_EQ(mass[i], mass[i + 2]);
    }
}

TEST(BytesPerNode, MatchesPaperBallpark)
{
    // Paper §2.1: ~1.2 KByte per node at runtime.  Count the stiffness
    // (values + indices) plus the handful of state vectors the explicit
    // stepper carries (u, u_prev, Ku, f, M = 5 vectors of 3n doubles).
    const GeneratedMesh g =
        generateSfMesh(SfClass::kSf20);
    const LayeredBasinModel model;
    const Bcsr3Matrix k = assembleStiffness(g.mesh, model);
    const double bytes = bytesPerNode(k, 5);
    EXPECT_GT(bytes, 700.0);
    EXPECT_LT(bytes, 2000.0);
}

} // namespace
