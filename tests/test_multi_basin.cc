/**
 * @file
 * Tests for the multi-basin soil model and the generality of the
 * pipeline beyond the single San Fernando bowl, plus the ref-[15]
 * communication-balance statistics.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/characterization.h"
#include "mesh/generator.h"
#include "parallel/characterize.h"
#include "partition/geometric_bisection.h"

namespace
{

using namespace quake::mesh;
using quake::common::FatalError;

TEST(MultiBasin, DepthIsMaxOverBasins)
{
    const MultiBasinModel model = MultiBasinModel::threeBasins();
    // At each basin centre, the depth equals that basin's maxDepth.
    for (const MultiBasinModel::Basin &b : model.basins())
        EXPECT_NEAR(model.basinDepth(b.center.x, b.center.y),
                    b.maxDepth, 1e-6);
    // Far corner: no sediment.
    EXPECT_DOUBLE_EQ(model.basinDepth(49.5, 0.5), 0.0);
}

TEST(MultiBasin, SpeedStructureMatchesSingleBasinModel)
{
    const MultiBasinModel model = MultiBasinModel::threeBasins();
    const Vec3 in_sediment{14.0, 14.0, 0.1};
    const Vec3 in_rock{45.0, 45.0, 0.1};
    EXPECT_LT(model.shearWaveSpeed(in_sediment), 0.5);
    EXPECT_GE(model.shearWaveSpeed(in_rock), 3.0);
    EXPECT_LT(model.density(in_sediment), model.density(in_rock));
}

TEST(MultiBasin, RejectsBadBasins)
{
    const Vec3 extent{50, 50, 10};
    EXPECT_THROW(MultiBasinModel(extent, {}), FatalError);
    EXPECT_THROW(
        MultiBasinModel(extent,
                        {{{60.0, 25.0, 0.0}, 5.0, 5.0, 1.0}}),
        FatalError);
    EXPECT_THROW(
        MultiBasinModel(extent,
                        {{{25.0, 25.0, 0.0}, 5.0, 5.0, 20.0}}),
        FatalError);
}

TEST(MultiBasin, GeneratorGradesAroundEveryBasin)
{
    const MultiBasinModel model = MultiBasinModel::threeBasins();
    MeshSpec spec;
    // 10-second waves: short enough (~0.7 km in sediment) to force
    // real grading inside the 1.2-2 km-deep basins.
    spec.periodSeconds = 10.0;
    const GeneratedMesh g = generateMesh(model, spec);
    g.mesh.validate();

    // Node density near each basin centre beats the rock corner.
    auto countNear = [&](double x, double y) {
        std::int64_t count = 0;
        for (NodeId i = 0; i < g.mesh.numNodes(); ++i) {
            const Vec3 &p = g.mesh.node(i);
            const double dx = p.x - x, dy = p.y - y;
            if (dx * dx + dy * dy < 36.0 && p.z < 3.0)
                ++count;
        }
        return count;
    };
    const std::int64_t rock_corner = countNear(45.0, 45.0);
    for (const MultiBasinModel::Basin &b : model.basins())
        EXPECT_GT(countNear(b.center.x, b.center.y), rock_corner);
}

TEST(MultiBasin, PipelineInvariantsHoldOnMultiBasinMesh)
{
    const MultiBasinModel model = MultiBasinModel::threeBasins();
    MeshSpec spec;
    spec.periodSeconds = 20.0;
    const GeneratedMesh g = generateMesh(model, spec);

    const quake::partition::GeometricBisection partitioner;
    const auto problem = quake::parallel::distributeTopology(
        g.mesh, partitioner.partition(g.mesh, 8));
    const auto summary = quake::core::summarize(
        quake::parallel::characterize(problem, "multibasin/8"));
    EXPECT_EQ(summary.wordsMax % 6, 0);
    EXPECT_GE(summary.beta, 1.0);
    EXPECT_LE(summary.beta, 2.0);
    EXPECT_LT(summary.flopBalance, 1.3);
}

TEST(CommBalance, ComputedFromLoads)
{
    using quake::core::CharacterizationSummary;
    using quake::core::PeLoad;
    using quake::core::SmvpCharacterization;

    SmvpCharacterization ch;
    ch.numPes = 3;
    ch.pes = {PeLoad{1, 100, 2}, PeLoad{1, 50, 4}, PeLoad{1, 0, 0}};
    const CharacterizationSummary s = quake::core::summarize(ch);
    // Means over the two communicating PEs: words 75, blocks 3.
    EXPECT_NEAR(s.wordBalance, 100.0 / 75.0, 1e-12);
    EXPECT_NEAR(s.blockBalance, 4.0 / 3.0, 1e-12);
}

TEST(CommBalance, PerfectlySymmetricIsOne)
{
    using quake::core::PeLoad;
    using quake::core::SmvpCharacterization;
    SmvpCharacterization ch;
    ch.numPes = 4;
    ch.pes.assign(4, PeLoad{10, 60, 6});
    const auto s = quake::core::summarize(ch);
    EXPECT_DOUBLE_EQ(s.wordBalance, 1.0);
    EXPECT_DOUBLE_EQ(s.blockBalance, 1.0);
}

TEST(CommBalance, WorseThanFlopBalanceOnRealPartitions)
{
    // Ref [15]: partitioners balance computation well, communication
    // less well.  Check the ordering on a graded mesh.
    const GeneratedMesh g = generateSfMesh(SfClass::kSf20);
    const quake::partition::GeometricBisection partitioner;
    const auto problem = quake::parallel::distributeTopology(
        g.mesh, partitioner.partition(g.mesh, 16));
    const auto s = quake::core::summarize(
        quake::parallel::characterize(problem, "balance/16"));
    EXPECT_GE(s.wordBalance, s.flopBalance - 0.05);
    EXPECT_GE(s.wordBalance, 1.0);
    EXPECT_GE(s.blockBalance, 1.0);
}

} // namespace
