/**
 * @file
 * Unit tests for the common utilities: error handling, RNG determinism,
 * table formatting, and argument parsing.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/args.h"
#include "common/engine_cli.h"
#include "common/error.h"
#include "common/fnv.h"
#include "common/rng.h"
#include "common/table.h"

namespace
{

using quake::common::Args;
using quake::common::FatalError;
using quake::common::SplitMix64;
using quake::common::Table;

// ----------------------------------------------------------------- error

TEST(Error, ExpectThrowsFatalOnFalse)
{
    EXPECT_THROW(QUAKE_EXPECT(false, "bad input " << 42), FatalError);
}

TEST(Error, ExpectPassesOnTrue)
{
    EXPECT_NO_THROW(QUAKE_EXPECT(true, "fine"));
}

TEST(Error, ExpectMessageIncludesStreamedArgs)
{
    try {
        QUAKE_EXPECT(false, "value was " << 7);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 7"),
                  std::string::npos);
    }
}

TEST(ErrorDeathTest, RequireAbortsOnViolation)
{
    EXPECT_DEATH(QUAKE_REQUIRE(1 == 2, "impossible"), "requirement failed");
}

TEST(ErrorDeathTest, PanicAborts)
{
    EXPECT_DEATH(QUAKE_PANIC("boom"), "panic: boom");
}

// ------------------------------------------------------------------- rng

TEST(SplitMix64, SameSeedSameStream)
{
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 60);
}

TEST(SplitMix64, DoublesInUnitInterval)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(SplitMix64, DoublesRoughlyUniform)
{
    SplitMix64 rng(99);
    int below_half = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        below_half += rng.nextDouble() < 0.5;
    EXPECT_NEAR(static_cast<double>(below_half) / n, 0.5, 0.02);
}

TEST(SplitMix64, UniformRespectsRange)
{
    SplitMix64 rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.5, 4.5);
        EXPECT_GE(v, -2.5);
        EXPECT_LT(v, 4.5);
    }
}

TEST(SplitMix64, BoundedCoversRange)
{
    SplitMix64 rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.nextBounded(5);
        EXPECT_LT(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

// ----------------------------------------------------------------- table

TEST(Table, RejectsEmptyHeader)
{
    EXPECT_THROW(Table({}), FatalError);
}

TEST(Table, RejectsRowWidthMismatch)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, AlignsColumns)
{
    Table t({"id", "value"});
    t.addRow({"1", "short"});
    t.addRow({"12345", "x"});
    const std::string s = t.toString();
    // Both data rows start their second column at the same offset.
    const auto line_start = s.find("1 ");
    ASSERT_NE(line_start, std::string::npos);
    EXPECT_NE(s.find("12345  x"), std::string::npos);
}

TEST(Table, CountsRows)
{
    Table t({"x"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableFormat, FormatCount)
{
    EXPECT_EQ(quake::common::formatCount(0), "0");
    EXPECT_EQ(quake::common::formatCount(999), "999");
    EXPECT_EQ(quake::common::formatCount(1000), "1,000");
    EXPECT_EQ(quake::common::formatCount(24640110), "24,640,110");
    EXPECT_EQ(quake::common::formatCount(-1234567), "-1,234,567");
}

TEST(TableFormat, FormatFixed)
{
    EXPECT_EQ(quake::common::formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(quake::common::formatFixed(1.0, 0), "1");
}

TEST(TableFormat, FormatBandwidthPicksUnits)
{
    EXPECT_EQ(quake::common::formatBandwidth(300e6), "300.0 MB/s");
    EXPECT_EQ(quake::common::formatBandwidth(2.5e9), "2.50 GB/s");
    EXPECT_EQ(quake::common::formatBandwidth(5e3), "5.0 KB/s");
}

TEST(TableFormat, FormatTimePicksUnits)
{
    EXPECT_EQ(quake::common::formatTime(2.0), "2.00 s");
    EXPECT_EQ(quake::common::formatTime(3e-3), "3.00 ms");
    EXPECT_EQ(quake::common::formatTime(22e-6), "22.00 us");
    EXPECT_EQ(quake::common::formatTime(55e-9), "55.0 ns");
}

// ------------------------------------------------------------------ args

Args
makeArgs(std::initializer_list<const char *> argv)
{
    std::vector<const char *> v = {"prog"};
    v.insert(v.end(), argv.begin(), argv.end());
    return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, ParsesKeyValue)
{
    const Args args = makeArgs({"--mesh", "sf2"});
    EXPECT_TRUE(args.has("mesh"));
    EXPECT_EQ(args.get("mesh"), "sf2");
}

TEST(Args, ParsesEqualsForm)
{
    const Args args = makeArgs({"--mesh=sf5"});
    EXPECT_EQ(args.get("mesh"), "sf5");
}

TEST(Args, BareFlagIsTrue)
{
    const Args args = makeArgs({"--full"});
    EXPECT_TRUE(args.has("full"));
    EXPECT_EQ(args.get("full"), "true");
}

TEST(Args, MissingKeyUsesFallback)
{
    const Args args = makeArgs({});
    EXPECT_FALSE(args.has("absent"));
    EXPECT_EQ(args.get("absent", "dflt"), "dflt");
    EXPECT_EQ(args.getInt("absent", 42), 42);
    EXPECT_DOUBLE_EQ(args.getDouble("absent", 2.5), 2.5);
}

TEST(Args, ParsesNumbers)
{
    const Args args = makeArgs({"--pes", "128", "--eff=0.9"});
    EXPECT_EQ(args.getInt("pes", 0), 128);
    EXPECT_DOUBLE_EQ(args.getDouble("eff", 0.0), 0.9);
}

TEST(Args, RejectsMalformedNumbers)
{
    const Args args = makeArgs({"--pes", "12x"});
    EXPECT_THROW(args.getInt("pes", 0), FatalError);
}

TEST(Args, CollectsPositionals)
{
    const Args args = makeArgs({"alpha", "--k", "v", "beta"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "alpha");
    EXPECT_EQ(args.positional()[1], "beta");
}

TEST(Args, FlagFollowedByFlagIsBoolean)
{
    const Args args = makeArgs({"--a", "--b", "val"});
    EXPECT_EQ(args.get("a"), "true");
    EXPECT_EQ(args.get("b"), "val");
}

// ------------------------------------------------------------------- fnv

using quake::common::Fnv1aHasher;
using quake::common::fnv1a;

TEST(Fnv1aHasher, MatchesKnownVector)
{
    // FNV-1a-64("abc"), computed independently from the published
    // offset basis and prime — pins the algorithm, not the code.
    Fnv1aHasher h;
    h.bytes("abc", 3);
    EXPECT_EQ(h.digest(), 0xe16801510db89efdULL);
}

TEST(Fnv1aHasher, EmptyDigestIsOffsetBasis)
{
    EXPECT_EQ(Fnv1aHasher().digest(), quake::common::kFnvOffsetBasis);
}

TEST(Fnv1aHasher, IncrementalEqualsOneShot)
{
    // Streaming in two chunks must equal hashing the concatenation —
    // the property that makes staged cache keys chainable.
    const char data[] = "the quick brown fox";
    Fnv1aHasher split;
    split.bytes(data, 9).bytes(data + 9, sizeof(data) - 1 - 9);
    EXPECT_EQ(split.digest(), fnv1a(data, sizeof(data) - 1));
}

TEST(Fnv1aHasher, ResumesFromSavedState)
{
    Fnv1aHasher whole;
    whole.value(1).value(2).value(3);

    Fnv1aHasher first;
    first.value(1);
    Fnv1aHasher resumed(first.digest());
    resumed.value(2).value(3);
    EXPECT_EQ(resumed.digest(), whole.digest());
}

TEST(Fnv1aHasher, ValueOrderMatters)
{
    Fnv1aHasher ab, ba;
    ab.value(1.0).value(2.0);
    ba.value(2.0).value(1.0);
    EXPECT_NE(ab.digest(), ba.digest());
}

TEST(Fnv1aHasher, StringLengthPrefixPreventsAliasing)
{
    // ("ab", "c") and ("a", "bc") concatenate identically; the length
    // prefix in str() must still separate them.
    Fnv1aHasher x, y;
    x.str("ab").str("c");
    y.str("a").str("bc");
    EXPECT_NE(x.digest(), y.digest());
}

TEST(Fnv1aHasher, VectorLengthPrefixPreventsAliasing)
{
    const std::vector<int> one{1, 2, 3}, two{1, 2}, three{3};
    Fnv1aHasher x, y;
    x.vec(one);
    y.vec(two).vec(three);
    EXPECT_NE(x.digest(), y.digest());
}

TEST(Fnv1aHasher, SingleValueSensitivity)
{
    Fnv1aHasher a, b;
    a.value(0.25);
    b.value(0.250001);
    EXPECT_NE(a.digest(), b.digest());
}

// ------------------------------------------------------------ engine_cli

using quake::common::EngineCliOptions;
using quake::common::parseEngineCli;

TEST(EngineCli, DefaultsWhenNoFlags)
{
    const EngineCliOptions cli = parseEngineCli(makeArgs({}));
    EXPECT_EQ(cli.shards, 1);
    EXPECT_FALSE(cli.pin);
    EXPECT_TRUE(cli.topologySpec.empty());
    EXPECT_FALSE(cli.faults);
    EXPECT_FALSE(cli.hasDeadlineMs);
    EXPECT_EQ(cli.retryBudget, 3);
    EXPECT_EQ(cli.sampleEvery, 16);
}

TEST(EngineCli, ParsesSharedEngineFlags)
{
    const EngineCliOptions cli = parseEngineCli(makeArgs(
        {"--shards", "4", "--pin", "--topology", "2x2", "--faults",
         "--drop-rate", "0.01", "--seed", "99", "--deadline-ms", "250",
         "--retry-budget", "5", "--trace", "t.json", "--metrics",
         "m.json", "--sample-every", "8"}));
    EXPECT_EQ(cli.shards, 4);
    EXPECT_TRUE(cli.pin);
    EXPECT_EQ(cli.topologySpec, "2x2");
    EXPECT_TRUE(cli.faults);
    EXPECT_DOUBLE_EQ(cli.dropRate, 0.01);
    EXPECT_EQ(cli.faultSeed, 99u);
    EXPECT_TRUE(cli.hasDeadlineMs);
    EXPECT_DOUBLE_EQ(cli.deadlineMs, 250.0);
    EXPECT_EQ(cli.retryBudget, 5);
    EXPECT_EQ(cli.tracePath, "t.json");
    EXPECT_EQ(cli.metricsPath, "m.json");
    EXPECT_EQ(cli.sampleEvery, 8);
}

TEST(EngineCli, RejectsBadValues)
{
    EXPECT_THROW(parseEngineCli(makeArgs({"--shards", "0"})),
                 FatalError);
    EXPECT_THROW(
        parseEngineCli(makeArgs({"--faults", "--drop-rate", "1.5"})),
        FatalError);
    EXPECT_THROW(parseEngineCli(makeArgs({"--deadline-ms", "0"})),
                 FatalError);
    EXPECT_THROW(
        parseEngineCli(makeArgs({"--deadline-ms", "50",
                                 "--retry-budget", "0"})),
        FatalError);
    EXPECT_THROW(parseEngineCli(makeArgs({"--sample-every", "0"})),
                 FatalError);
}

TEST(EngineCli, DropRateIgnoredWithoutFaults)
{
    // --drop-rate only matters under --faults; alone it must not trip
    // the fault-spec validation (matches the old per-example parsing).
    const EngineCliOptions cli =
        parseEngineCli(makeArgs({"--drop-rate", "2.0"}));
    EXPECT_FALSE(cli.faults);
}

} // namespace
