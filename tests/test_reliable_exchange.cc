/**
 * @file
 * Tests for the reliable exchange protocol: bit-for-bit equivalence
 * with the baseline event simulator when no faults are injected,
 * determinism under a fixed seed, recovery from drops/duplicates/ack
 * losses, graceful degradation when the retry budget is exhausted, and
 * rejection of malformed schedules and options.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "mesh/generator.h"
#include "parallel/event_sim.h"
#include "parallel/reliable_exchange.h"
#include "partition/geometric_bisection.h"

namespace
{

using namespace quake::parallel;
using namespace quake::mesh;
using namespace quake::partition;
using quake::common::FatalError;

CommSchedule
latticeSchedule(int parts)
{
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 5, 5, 5);
    const GeometricBisection partitioner;
    return CommSchedule::build(m, partitioner.partition(m, parts));
}

std::int64_t
totalDirectedMessages(const CommSchedule &s)
{
    std::int64_t n = 0;
    for (int pe = 0; pe < s.numPes(); ++pe)
        n += static_cast<std::int64_t>(s.pe(pe).exchanges.size());
    return n;
}

class ReliableExchangePeCounts : public ::testing::TestWithParam<int>
{
};

TEST_P(ReliableExchangePeCounts, ZeroFaultsMatchBaselineBitForBit)
{
    const CommSchedule schedule = latticeSchedule(GetParam());
    for (bool duplex : {true, false}) {
        const EventSimResult base = simulateExchange(
            schedule, crayT3e(), EventSimOptions{0.0, duplex});

        ReliableExchangeOptions options;
        options.fullDuplex = duplex;
        const ReliableExchangeResult r =
            simulateReliableExchange(schedule, crayT3e(), options);

        // Bit-for-bit: exact double equality, not approximate.
        EXPECT_EQ(r.peFinishTime, base.peFinishTime);
        EXPECT_EQ(r.tComm, base.tComm);
        EXPECT_EQ(r.totalIdle, base.totalIdle);
        EXPECT_EQ(r.criticalPe, base.criticalPe);

        EXPECT_EQ(r.retransmissions, 0);
        EXPECT_EQ(r.timeoutsFired, 0);
        EXPECT_EQ(r.dataDropped, 0);
        EXPECT_EQ(r.duplicatesDelivered, 0);
        EXPECT_TRUE(r.lostExchanges.empty());
        EXPECT_EQ(r.staleWords, 0);
        EXPECT_FALSE(r.degraded);
        EXPECT_EQ(r.dataSent, totalDirectedMessages(schedule));
        EXPECT_EQ(r.acksSent, r.dataSent);
        EXPECT_GE(r.tProtocolQuiesce, r.tComm);
    }
}

TEST_P(ReliableExchangePeCounts, DeterministicUnderFaults)
{
    const CommSchedule schedule = latticeSchedule(GetParam());
    ReliableExchangeOptions options;
    options.faults.seed = 0xabcdef;
    options.faults.dropProbability = 0.1;
    options.faults.duplicateProbability = 0.05;
    options.faults.ackDropProbability = 0.05;
    options.faults.jitterMeanSeconds = 3e-6;
    options.faults.stragglerProbability = 0.2;
    options.faults.stragglerDelaySeconds = 50e-6;
    options.faults.degradedLinkProbability = 0.2;
    options.faults.degradedBandwidthFactor = 3.0;

    const ReliableExchangeResult a =
        simulateReliableExchange(schedule, crayT3e(), options);
    const ReliableExchangeResult b =
        simulateReliableExchange(schedule, crayT3e(), options);

    EXPECT_EQ(a.tComm, b.tComm);
    EXPECT_EQ(a.peFinishTime, b.peFinishTime);
    EXPECT_EQ(a.totalIdle, b.totalIdle);
    EXPECT_EQ(a.dataSent, b.dataSent);
    EXPECT_EQ(a.dataDelivered, b.dataDelivered);
    EXPECT_EQ(a.dataDropped, b.dataDropped);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.spuriousRetransmissions, b.spuriousRetransmissions);
    EXPECT_EQ(a.acksDropped, b.acksDropped);
    EXPECT_EQ(a.timeoutsFired, b.timeoutsFired);
    EXPECT_EQ(a.timeoutWaitSeconds, b.timeoutWaitSeconds);
    EXPECT_EQ(a.staleWords, b.staleWords);
    EXPECT_EQ(a.lostExchanges.size(), b.lostExchanges.size());
    EXPECT_EQ(a.peStartDelay, b.peStartDelay);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, ReliableExchangePeCounts,
                         ::testing::Values(2, 4, 8, 16));

TEST(ReliableExchange, ModerateDropsRecoverEverything)
{
    const CommSchedule schedule = latticeSchedule(8);
    ReliableExchangeOptions options;
    options.faults.seed = 7;
    options.faults.dropProbability = 0.05;
    options.maxRetries = 20;

    const EventSimResult base = simulateExchange(schedule, crayT3e());
    const ReliableExchangeResult r =
        simulateReliableExchange(schedule, crayT3e(), options);

    EXPECT_GT(r.dataDropped, 0);
    EXPECT_GT(r.retransmissions, 0);
    EXPECT_GT(r.timeoutsFired, 0);
    EXPECT_GT(r.timeoutWaitSeconds, 0.0);
    EXPECT_TRUE(r.lostExchanges.empty());
    EXPECT_EQ(r.staleWords, 0);
    EXPECT_FALSE(r.degraded);
    // Recovery costs time: retransmitted data re-occupies links and the
    // sender waited out at least one timeout.
    EXPECT_GT(r.tComm, base.tComm);
}

TEST(ReliableExchange, TotalLossDegradesGracefully)
{
    const CommSchedule schedule = latticeSchedule(4);
    const std::int64_t messages = totalDirectedMessages(schedule);
    ReliableExchangeOptions options;
    options.faults.dropProbability = 1.0;
    options.maxRetries = 2;

    const ReliableExchangeResult r =
        simulateReliableExchange(schedule, crayT3e(), options);

    // The phase completes (no hang) with every exchange given up after
    // exactly 1 + maxRetries attempts.
    EXPECT_EQ(static_cast<std::int64_t>(r.lostExchanges.size()),
              messages);
    EXPECT_EQ(r.dataSent, messages * 3);
    EXPECT_EQ(r.retransmissions, messages * 2);
    EXPECT_EQ(r.timeoutsFired, messages * 3);
    EXPECT_EQ(r.dataDelivered, 0);
    EXPECT_EQ(r.staleWords, schedule.totalWords());
    EXPECT_DOUBLE_EQ(r.staleFraction, 1.0);
    EXPECT_TRUE(r.degraded);
    for (const LostExchange &lost : r.lostExchanges)
        EXPECT_EQ(lost.attempts, 3);
}

TEST(ReliableExchange, DuplicatesAreReceivedButSummedOnce)
{
    const CommSchedule schedule = latticeSchedule(4);
    const std::int64_t messages = totalDirectedMessages(schedule);
    ReliableExchangeOptions options;
    options.faults.duplicateProbability = 1.0;

    const EventSimResult base = simulateExchange(schedule, crayT3e());
    const ReliableExchangeResult r =
        simulateReliableExchange(schedule, crayT3e(), options);

    EXPECT_EQ(r.duplicatesDelivered, messages);
    EXPECT_EQ(r.dataDelivered, 2 * messages);
    EXPECT_EQ(r.redundantDeliveries, messages);
    EXPECT_TRUE(r.lostExchanges.empty());
    EXPECT_EQ(r.staleWords, 0);
    // Wasted receptions occupy input links: the phase cannot be faster.
    EXPECT_GE(r.tComm, base.tComm);
}

TEST(ReliableExchange, AckLossCausesSpuriousRetransmissions)
{
    const CommSchedule schedule = latticeSchedule(8);
    ReliableExchangeOptions options;
    options.faults.seed = 21;
    options.faults.ackDropProbability = 0.5;
    options.maxRetries = 30;

    const ReliableExchangeResult r =
        simulateReliableExchange(schedule, crayT3e(), options);

    // Data is never dropped, so everything is delivered; the lost acks
    // force retransmissions of already-delivered data.
    EXPECT_EQ(r.dataDropped, 0);
    EXPECT_GT(r.acksDropped, 0);
    EXPECT_GT(r.retransmissions, 0);
    EXPECT_EQ(r.spuriousRetransmissions, r.retransmissions);
    EXPECT_GT(r.redundantDeliveries, 0);
    EXPECT_EQ(r.staleWords, 0);
    EXPECT_TRUE(r.lostExchanges.empty());
}

TEST(ReliableExchange, UniformStragglerShiftsThePhase)
{
    const CommSchedule schedule = latticeSchedule(8);
    const double delay = 100e-6;
    ReliableExchangeOptions options;
    options.faults.stragglerProbability = 1.0;
    options.faults.stragglerDelaySeconds = delay;

    const EventSimResult base = simulateExchange(schedule, crayT3e());
    const ReliableExchangeResult r =
        simulateReliableExchange(schedule, crayT3e(), options);

    for (double d : r.peStartDelay)
        EXPECT_DOUBLE_EQ(d, delay);
    EXPECT_NEAR(r.tComm, base.tComm + delay, 1e-12);
    EXPECT_TRUE(r.lostExchanges.empty());
}

TEST(ReliableExchange, DegradedLinksScaleTheWordTime)
{
    const CommSchedule schedule = latticeSchedule(8);
    // Zero block latency isolates the word-time term, which a uniform
    // 4x degradation must scale exactly (power-of-two scaling is exact
    // in floating point).
    const MachineModel machine{"zero-latency", 1e-9, 0.0, 100e-9};
    ReliableExchangeOptions options;
    options.faults.degradedLinkProbability = 1.0;
    options.faults.degradedBandwidthFactor = 4.0;

    const EventSimResult base = simulateExchange(
        schedule, machine, EventSimOptions{0.0, true});
    const ReliableExchangeResult r =
        simulateReliableExchange(schedule, machine, options);

    EXPECT_DOUBLE_EQ(r.tComm, 4.0 * base.tComm);
}

TEST(ReliableExchange, JitterDelaysButDelivers)
{
    const CommSchedule schedule = latticeSchedule(8);
    ReliableExchangeOptions options;
    options.faults.seed = 5;
    options.faults.jitterMeanSeconds = 10e-6;

    const EventSimResult base = simulateExchange(schedule, crayT3e());
    const ReliableExchangeResult r =
        simulateReliableExchange(schedule, crayT3e(), options);

    EXPECT_EQ(r.dataDropped, 0);
    EXPECT_EQ(r.retransmissions, 0);
    EXPECT_EQ(r.staleWords, 0);
    EXPECT_GE(r.tComm, base.tComm);
}

TEST(ReliableExchange, EmptyScheduleIsTrivial)
{
    const CommSchedule schedule;
    const ReliableExchangeResult r =
        simulateReliableExchange(schedule, crayT3e());
    EXPECT_DOUBLE_EQ(r.tComm, 0.0);
    EXPECT_EQ(r.dataSent, 0);
    EXPECT_FALSE(r.degraded);
    EXPECT_DOUBLE_EQ(r.staleFraction, 0.0);
}

TEST(ReliableExchange, RejectsMalformedSchedules)
{
    // Self-send.
    {
        PeSchedule pe;
        Exchange ex;
        ex.peer = 0;
        ex.nodes = {1, 2};
        pe.exchanges.push_back(ex);
        const CommSchedule bad =
            CommSchedule::fromPeSchedules({pe}, false);
        EXPECT_THROW(simulateReliableExchange(bad, crayT3e()),
                     FatalError);
        EXPECT_THROW(simulateExchange(bad, crayT3e()), FatalError);
    }
    // Out-of-range peer.
    {
        PeSchedule pe;
        Exchange ex;
        ex.peer = 7;
        ex.nodes = {1};
        pe.exchanges.push_back(ex);
        const CommSchedule bad =
            CommSchedule::fromPeSchedules({pe, PeSchedule{}}, false);
        EXPECT_THROW(simulateReliableExchange(bad, crayT3e()),
                     FatalError);
    }
    // Asymmetric pair: 0 sends to 1, but 1 does not send to 0.
    {
        PeSchedule pe0;
        Exchange ex;
        ex.peer = 1;
        ex.nodes = {3, 4};
        pe0.exchanges.push_back(ex);
        const CommSchedule bad =
            CommSchedule::fromPeSchedules({pe0, PeSchedule{}}, false);
        EXPECT_THROW(simulateReliableExchange(bad, crayT3e()),
                     FatalError);
    }
    // Mirrored exchange with a different node set.
    {
        PeSchedule pe0, pe1;
        Exchange fwd, bwd;
        fwd.peer = 1;
        fwd.nodes = {3, 4};
        bwd.peer = 0;
        bwd.nodes = {3, 5};
        pe0.exchanges.push_back(fwd);
        pe1.exchanges.push_back(bwd);
        const CommSchedule bad =
            CommSchedule::fromPeSchedules({pe0, pe1}, false);
        EXPECT_THROW(simulateReliableExchange(bad, crayT3e()),
                     FatalError);
    }
    // fromPeSchedules validates eagerly by default.
    {
        PeSchedule pe;
        Exchange ex;
        ex.peer = 0;
        ex.nodes = {1};
        pe.exchanges.push_back(ex);
        EXPECT_THROW(CommSchedule::fromPeSchedules({pe}), FatalError);
    }
}

TEST(ReliableExchange, RejectsMalformedOptions)
{
    const CommSchedule schedule = latticeSchedule(2);
    ReliableExchangeOptions options;
    options.backoffFactor = 0.5;
    EXPECT_THROW(simulateReliableExchange(schedule, crayT3e(), options),
                 FatalError);

    options = ReliableExchangeOptions{};
    options.maxRetries = -1;
    EXPECT_THROW(simulateReliableExchange(schedule, crayT3e(), options),
                 FatalError);

    options = ReliableExchangeOptions{};
    options.timeoutSeconds = -1e-6;
    EXPECT_THROW(simulateReliableExchange(schedule, crayT3e(), options),
                 FatalError);

    options = ReliableExchangeOptions{};
    options.faults.dropProbability = 1.5;
    EXPECT_THROW(simulateReliableExchange(schedule, crayT3e(), options),
                 FatalError);
}

TEST(ReliableExchange, FaultInjectedEventSimDropsWithoutRecovery)
{
    // The baseline simulator with a FaultModel injects but does not
    // recover: dropped messages stay dropped and are reported.
    const CommSchedule schedule = latticeSchedule(8);
    FaultSpec spec;
    spec.seed = 11;
    spec.dropProbability = 0.3;
    const FaultModel faults(spec, schedule.numPes());

    EventSimOptions options;
    options.faults = &faults;
    const EventSimResult r =
        simulateExchange(schedule, crayT3e(), options);

    EXPECT_GT(r.messagesDropped, 0);
    EXPECT_EQ(r.messagesSent, totalDirectedMessages(schedule));
    EXPECT_EQ(r.messagesDelivered,
              r.messagesSent - r.messagesDropped +
                  r.duplicatesDelivered);

    const EventSimResult again =
        simulateExchange(schedule, crayT3e(), options);
    EXPECT_EQ(r.peFinishTime, again.peFinishTime);
    EXPECT_EQ(r.messagesDropped, again.messagesDropped);
}

} // namespace
