/**
 * @file
 * Tests for the requirement sweep engine behind Figures 8-11.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/requirements.h"

namespace
{

using namespace quake::core;
using quake::common::FatalError;

SmvpShape
sampleShape()
{
    SmvpShape s;
    s.flops = 838'224;
    s.wordsMax = 16'260;
    s.blocksMax = 50;
    return s;
}

TEST(Logspace, EndpointsAndMonotonicity)
{
    const std::vector<double> v = logspace(1.0, 1000.0, 4);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_NEAR(v.front(), 1.0, 1e-12);
    EXPECT_NEAR(v.back(), 1000.0, 1e-9);
    EXPECT_NEAR(v[1], 10.0, 1e-9);
    for (std::size_t i = 1; i < v.size(); ++i)
        EXPECT_GT(v[i], v[i - 1]);
}

TEST(Logspace, RejectsBadRanges)
{
    EXPECT_THROW(logspace(0.0, 10.0, 3), FatalError);
    EXPECT_THROW(logspace(10.0, 1.0, 3), FatalError);
    EXPECT_THROW(logspace(1.0, 10.0, 1), FatalError);
}

TEST(RequirementSweep, OneRowPerOperatingPoint)
{
    const std::vector<OperatingPoint> grid = {
        {100.0, 0.5}, {100.0, 0.9}, {200.0, 0.5}, {200.0, 0.9}};
    const auto rows = requirementSweep(sampleShape(), grid, 10'000);
    ASSERT_EQ(rows.size(), 4u);
    for (const RequirementRow &r : rows) {
        EXPECT_GT(r.tc, 0.0);
        EXPECT_NEAR(r.sustainedBandwidthBytes, 8.0 / r.tc, 1e-6);
        EXPECT_GT(r.bisectionBandwidthBytes, 0.0);
    }
    // 200 MFLOPS at the same efficiency needs double the bandwidth.
    EXPECT_NEAR(rows[2].sustainedBandwidthBytes,
                2.0 * rows[0].sustainedBandwidthBytes, 1.0);
}

TEST(RequirementSweep, BisectionOmittedWhenVolumeZero)
{
    const auto rows =
        requirementSweep(sampleShape(), {{100.0, 0.8}}, 0);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_DOUBLE_EQ(rows[0].bisectionBandwidthBytes, 0.0);
}

TEST(RequirementSweep, FromTfMatchesExplicitGrid)
{
    const double tf = 14e-9; // the paper's measured T3E T_f
    const std::vector<double> effs = {0.25, 0.5, 0.75};
    const auto direct =
        requirementSweepFromTf(sampleShape(), tf, effs, 10'000);
    const auto via_grid = requirementSweep(
        sampleShape(), gridFromMeasuredTf(tf, effs), 10'000);
    ASSERT_EQ(direct.size(), via_grid.size());
    ASSERT_EQ(direct.size(), effs.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_DOUBLE_EQ(direct[i].tc, via_grid[i].tc);
        EXPECT_DOUBLE_EQ(direct[i].sustainedBandwidthBytes,
                         via_grid[i].sustainedBandwidthBytes);
        EXPECT_DOUBLE_EQ(direct[i].bisectionBandwidthBytes,
                         via_grid[i].bisectionBandwidthBytes);
        EXPECT_DOUBLE_EQ(direct[i].point.mflops, 1.0 / (tf * 1e6));
    }
}

TEST(RequirementSweep, FromTfRejectsBadInputs)
{
    EXPECT_THROW(requirementSweepFromTf(sampleShape(), 0.0, {0.5}),
                 FatalError);
    EXPECT_THROW(requirementSweepFromTf(sampleShape(), -1e-9, {0.5}),
                 FatalError);
    EXPECT_THROW(requirementSweepFromTf(sampleShape(), 14e-9, {1.5}),
                 FatalError);
}

TEST(TradeoffCurve, MonotoneDecreasingLatency)
{
    // More burst bandwidth never shrinks the latency budget.
    const double tc = requiredTc(sampleShape(), 0.9, tfFromMflops(200));
    const auto curve =
        tradeoffCurve(sampleShape(), tc, 1e6, 100e9, 40);
    ASSERT_GT(curve.size(), 5u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GT(curve[i].burstBandwidthBytes,
                  curve[i - 1].burstBandwidthBytes);
        EXPECT_GE(curve[i].latency, curve[i - 1].latency - 1e-18);
    }
}

TEST(TradeoffCurve, OmitsInfeasiblePoints)
{
    // At very low burst bandwidth the budget is negative; those points
    // must be dropped, giving the vertical asymptote of Figure 10.
    const double tc = requiredTc(sampleShape(), 0.9, tfFromMflops(200));
    const auto curve = tradeoffCurve(sampleShape(), tc, 1e3, 100e9, 60);
    for (const TradeoffPoint &p : curve)
        EXPECT_GE(p.latency, 0.0);
    // The asymptote sits at C_max words / T_comm = 8 / tc bytes/sec.
    const double asymptote = 8.0 / tc;
    EXPECT_GT(curve.front().burstBandwidthBytes, asymptote);
}

TEST(TradeoffCurve, SaturatesAtInfiniteBurstBudget)
{
    const double tc = requiredTc(sampleShape(), 0.9, tfFromMflops(200));
    const auto curve =
        tradeoffCurve(sampleShape(), tc, 1e6, 1e13, 50);
    const double bound = latencyBudget(sampleShape(), tc, 0.0);
    EXPECT_NEAR(curve.back().latency, bound, 0.02 * bound);
}

TEST(Headline, ConsistentWithPrimitives)
{
    const Headline h = computeHeadline(sampleShape(), 200.0, 0.9);
    const double tc = requiredTc(sampleShape(), 0.9, tfFromMflops(200));
    EXPECT_NEAR(h.sustainedBandwidthBytes, 8.0 / tc, 1e-3);
    EXPECT_NEAR(h.infiniteBurstLatency,
                latencyBudget(sampleShape(), tc, 0.0), 1e-15);
    EXPECT_GT(h.halfPoint.latency, 0.0);
    // The half point always admits less latency than the infinite-burst
    // bound (it only gets half the budget).
    EXPECT_LT(h.halfPoint.latency, h.infiniteBurstLatency);
}

class EfficiencySweep : public ::testing::TestWithParam<double>
{};

TEST_P(EfficiencySweep, HigherEfficiencyTightensEverything)
{
    const double e = GetParam();
    const Headline lo = computeHeadline(sampleShape(), 200.0, e);
    const Headline hi = computeHeadline(sampleShape(), 200.0, e + 0.05);
    EXPECT_GT(hi.sustainedBandwidthBytes, lo.sustainedBandwidthBytes);
    EXPECT_LT(hi.halfPoint.latency, lo.halfPoint.latency);
    EXPECT_LT(hi.infiniteBurstLatency, lo.infiniteBurstLatency);
}

INSTANTIATE_TEST_SUITE_P(Grid, EfficiencySweep,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9));

} // namespace
