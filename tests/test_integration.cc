/**
 * @file
 * Integration tests spanning the whole pipeline: synthetic mesh ->
 * partition -> distribution -> characterization -> performance model,
 * with cross-checks against the paper's published properties and the
 * executable SMVP.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/perf_model.h"
#include "core/reference.h"
#include "mesh/generator.h"
#include "parallel/characterize.h"
#include "parallel/parallel_smvp.h"
#include "parallel/phase_simulator.h"
#include "partition/geometric_bisection.h"
#include "spark/kernels.h"
#include "sparse/assembly.h"

namespace
{

using namespace quake;

/** Generate the test-sized basin mesh once for the whole suite. */
class PipelineTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        model_ = new mesh::LayeredBasinModel();
        generated_ = new mesh::GeneratedMesh(
            mesh::generateSfMesh(mesh::SfClass::kSf20));
    }

    static void
    TearDownTestSuite()
    {
        delete generated_;
        delete model_;
        generated_ = nullptr;
        model_ = nullptr;
    }

    static mesh::LayeredBasinModel *model_;
    static mesh::GeneratedMesh *generated_;
};

mesh::LayeredBasinModel *PipelineTest::model_ = nullptr;
mesh::GeneratedMesh *PipelineTest::generated_ = nullptr;

TEST_F(PipelineTest, CharacterizationScalesLikeFigure7)
{
    // Run the full sweep on the synthetic mesh and check the paper's
    // qualitative laws: F halves as p doubles; F/C_max falls; B_max
    // grows; beta stays in [1, 2].
    const partition::GeometricBisection partitioner;
    std::vector<core::CharacterizationSummary> summaries;
    for (int p : {4, 8, 16}) {
        const auto problem = parallel::distributeTopology(
            generated_->mesh, partitioner.partition(generated_->mesh, p));
        summaries.push_back(core::summarize(
            parallel::characterize(problem, "sf20/" + std::to_string(p))));
    }

    for (std::size_t i = 1; i < summaries.size(); ++i) {
        EXPECT_LT(summaries[i].flopsMax, summaries[i - 1].flopsMax);
        EXPECT_LT(summaries[i].flopsPerWord,
                  summaries[i - 1].flopsPerWord);
        EXPECT_GE(summaries[i].blocksMax, summaries[i - 1].blocksMax);
        EXPECT_GE(summaries[i].beta, 1.0);
        EXPECT_LE(summaries[i].beta, 2.0);
    }
    // Halving work per PE when doubling p (within partition tolerance).
    EXPECT_NEAR(static_cast<double>(summaries[1].flopsMax),
                0.5 * static_cast<double>(summaries[0].flopsMax),
                0.15 * static_cast<double>(summaries[0].flopsMax));
}

TEST_F(PipelineTest, BisectionIsNotTheBottleneck)
{
    // §4.2's conclusion on the synthetic pipeline: the required
    // bisection bandwidth stays within a small multiple of a single
    // PE's sustained bandwidth (vs. the p/2 links available).
    const partition::GeometricBisection partitioner;
    const auto problem = parallel::distributeTopology(
        generated_->mesh, partitioner.partition(generated_->mesh, 16));
    const auto ch = parallel::characterize(problem, "sf20/16");
    const auto summary = core::summarize(ch);
    const core::SmvpShape shape = core::SmvpShape::fromSummary(summary);

    const double tf = core::tfFromMflops(200);
    const double pe_bw = core::requiredSustainedBandwidth(shape, 0.9, tf);
    const double bisection_bw = core::requiredBisectionBandwidth(
        shape, ch.bisectionWords, 0.9, tf);
    EXPECT_LT(bisection_bw, 8.0 * pe_bw); // a couple of links' worth
}

TEST_F(PipelineTest, MessagesSmallEvenAtScale)
{
    // §4.1/conclusion (2): block transfers tend to be small.  On the
    // synthetic mesh at 16 PEs, the average message is thousands of
    // words at most — nowhere near the MB-scale needed to amortize a
    // 22 us T3E latency against its 145 MB/s burst rate.
    const partition::GeometricBisection partitioner;
    const auto problem = parallel::distributeTopology(
        generated_->mesh, partitioner.partition(generated_->mesh, 16));
    const auto summary =
        core::summarize(parallel::characterize(problem, "sf20/16"));
    EXPECT_LT(summary.messageSizeAvg, 10'000.0);
    EXPECT_GT(summary.messageSizeAvg, 3.0);
}

TEST_F(PipelineTest, ModelAccuracyBoundHoldsEndToEnd)
{
    const partition::GeometricBisection partitioner;
    for (int p : {4, 8, 16}) {
        const auto problem = parallel::distributeTopology(
            generated_->mesh, partitioner.partition(generated_->mesh, p));
        const auto ch = parallel::characterize(problem, "acc");
        const auto acc = parallel::evaluateModelAccuracy(
            ch, parallel::crayT3e());
        EXPECT_GE(acc.ratio, 1.0 - 1e-12);
        EXPECT_LE(acc.ratio, acc.beta + 1e-12);
    }
}

TEST_F(PipelineTest, ParallelSmvpCorrectOnBasinMesh)
{
    const partition::GeometricBisection partitioner;
    const auto problem = parallel::distribute(
        generated_->mesh, *model_,
        partitioner.partition(generated_->mesh, 8));
    const parallel::ParallelSmvp psmvp(problem);

    const auto k = sparse::assembleStiffness(generated_->mesh, *model_);
    std::vector<double> x(static_cast<std::size_t>(k.numRows()));
    common::SplitMix64 rng(8080);
    for (double &v : x)
        v = rng.uniform(-1, 1);

    const std::vector<double> y_par = psmvp.multiply(x);
    const std::vector<double> y_seq = k.multiply(x);
    double max_rel = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double denom = 1.0 + std::fabs(y_seq[i]);
        max_rel = std::max(max_rel,
                           std::fabs(y_par[i] - y_seq[i]) / denom);
    }
    EXPECT_LT(max_rel, 1e-9);
}

TEST_F(PipelineTest, SparkKernelsAgreeOnBasinMesh)
{
    const spark::KernelSuite suite(generated_->mesh, *model_);
    std::vector<double> x(static_cast<std::size_t>(suite.dof()));
    common::SplitMix64 rng(4242);
    for (double &v : x)
        v = rng.uniform(-1, 1);
    const auto y_csr = suite.run(spark::Kernel::kCsr, x);
    const auto y_sym = suite.run(spark::Kernel::kSym, x);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y_csr[i], y_sym[i],
                    1e-8 * (1.0 + std::fabs(y_csr[i])));
}

TEST_F(PipelineTest, EfficiencyFallsWithMorePes)
{
    // Fixed machine, growing PE count: F/C_max shrinks so efficiency
    // must fall — the "cannot rely on problem size" story of §4.1.
    const partition::GeometricBisection partitioner;
    const parallel::MachineModel machine = parallel::crayT3e();
    double prev_eff = 1.0;
    for (int p : {2, 8, 32}) {
        const auto problem = parallel::distributeTopology(
            generated_->mesh, partitioner.partition(generated_->mesh, p));
        const auto times = parallel::simulateSmvp(
            parallel::characterize(problem, "eff"), machine);
        EXPECT_LT(times.efficiency, prev_eff);
        prev_eff = times.efficiency;
    }
}

TEST_F(PipelineTest, ReferenceModeAndSyntheticModeAgreeOnShape)
{
    // Apply Equation (1) to (a) the paper's sf10/16 entry and (b) the
    // synthetic sf20 mesh at 16 PEs scaled to a similar F/C_max regime:
    // both must put the required bandwidth within the same decade.
    const core::SmvpShape ref = core::reference::shapeFor(
        core::reference::PaperMesh::kSf10, 16);
    const partition::GeometricBisection partitioner;
    const auto problem = parallel::distributeTopology(
        generated_->mesh, partitioner.partition(generated_->mesh, 16));
    const core::SmvpShape syn = core::SmvpShape::fromSummary(
        core::summarize(parallel::characterize(problem, "sf20/16")));

    const double tf = core::tfFromMflops(100);
    const double bw_ref = core::requiredSustainedBandwidth(ref, 0.8, tf);
    const double bw_syn = core::requiredSustainedBandwidth(syn, 0.8, tf);
    EXPECT_LT(std::fabs(std::log10(bw_ref / bw_syn)), 1.0);
}

} // namespace
