/**
 * @file
 * Tests for the resilience subsystem (DESIGN.md §11): checkpoint
 * serialization round trips and the corruption-refusal sweep, atomic
 * file IO with errno context, bitwise save/restore continuation of the
 * integrator, the retry/backoff/degradation state machine with injected
 * failures and a fake sleeper, the watchdog's stall cancellation, the
 * Eq. (1) model-informed deadline, and end-to-end supervised runs that
 * resume from their own checkpoints.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "mesh/generator.h"
#include "mesh/soil_model.h"
#include "quake/simulation.h"
#include "quake/time_stepper.h"
#include "resilience/checkpoint.h"
#include "resilience/supervisor.h"

namespace
{

using namespace quake;
using quake::common::FatalError;

/** Run `fn`, expecting a FatalError; return its message. */
std::string
fatalMessage(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected FatalError";
    return "";
}

bool
bitwiseEqual(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(double)) == 0;
}

/** A handmade checkpoint with every field populated and distinct. */
resilience::Checkpoint
sampleCheckpoint()
{
    resilience::Checkpoint c;
    c.fingerprint = 0x123456789abcdef0ULL;
    c.dt = 0.015625;
    c.plannedSteps = 40;
    c.state.steps = 20;
    c.state.u = {1.0, -2.5, 3.25, 0.0};
    c.state.up = {0.5, -1.25, 2.0, -0.125};
    c.state.partials.peak = 3.25;
    c.state.partials.energy = 7.5;
    c.state.statsValid = true;
    c.reportPeak = 3.5;
    c.samples = {{0.1, 1.0, 2.0}, {0.2, 3.5, 4.0}};
    return c;
}

/** Byte offset of the first payload byte of the tagged section. */
std::size_t
payloadOffset(const std::vector<std::uint8_t> &bytes, std::uint32_t tag)
{
    std::size_t pos = 8 + 4; // magic + version
    while (pos + 20 <= bytes.size()) {
        std::uint32_t t = 0;
        std::uint64_t len = 0;
        std::memcpy(&t, bytes.data() + pos, sizeof(t));
        std::memcpy(&len, bytes.data() + pos + 4, sizeof(len));
        if (t == tag)
            return pos + 20;
        pos += 20 + len;
    }
    ADD_FAILURE() << "tag not found in serialized checkpoint";
    return 0;
}

// ---------------------------------------------------------------------
// Serialization round trip and the corruption-refusal sweep.
// ---------------------------------------------------------------------

TEST(CheckpointFormat, SerializeParseRoundTripIsBitwise)
{
    const resilience::Checkpoint c = sampleCheckpoint();
    const std::vector<std::uint8_t> bytes =
        resilience::serializeCheckpoint(c);
    const resilience::Checkpoint back =
        resilience::parseCheckpoint(bytes, "test");

    EXPECT_EQ(back.fingerprint, c.fingerprint);
    EXPECT_EQ(back.dt, c.dt);
    EXPECT_EQ(back.plannedSteps, c.plannedSteps);
    EXPECT_EQ(back.state.steps, c.state.steps);
    EXPECT_TRUE(bitwiseEqual(back.state.u, c.state.u));
    EXPECT_TRUE(bitwiseEqual(back.state.up, c.state.up));
    EXPECT_EQ(back.state.partials.peak, c.state.partials.peak);
    EXPECT_EQ(back.state.partials.energy, c.state.partials.energy);
    EXPECT_EQ(back.state.statsValid, c.state.statsValid);
    EXPECT_EQ(back.reportPeak, c.reportPeak);
    ASSERT_EQ(back.samples.size(), c.samples.size());
    for (std::size_t i = 0; i < c.samples.size(); ++i) {
        EXPECT_EQ(back.samples[i].time, c.samples[i].time);
        EXPECT_EQ(back.samples[i].peakDisplacement,
                  c.samples[i].peakDisplacement);
        EXPECT_EQ(back.samples[i].kineticEnergy,
                  c.samples[i].kineticEnergy);
    }
    EXPECT_EQ(resilience::stateFingerprint(back),
              resilience::stateFingerprint(c));
}

TEST(CheckpointFormat, SerializationIsDeterministic)
{
    const resilience::Checkpoint c = sampleCheckpoint();
    EXPECT_EQ(resilience::serializeCheckpoint(c),
              resilience::serializeCheckpoint(c));
}

TEST(CheckpointFormat, RejectsTruncation)
{
    std::vector<std::uint8_t> bytes =
        resilience::serializeCheckpoint(sampleCheckpoint());
    bytes.resize(bytes.size() / 2);
    const std::string what = fatalMessage(
        [&] { resilience::parseCheckpoint(bytes, "test"); });
    EXPECT_NE(what.find("checkpoint truncated"), std::string::npos)
        << what;
}

TEST(CheckpointFormat, RejectsBadMagic)
{
    std::vector<std::uint8_t> bytes =
        resilience::serializeCheckpoint(sampleCheckpoint());
    bytes[0] ^= 0xFF;
    const std::string what = fatalMessage(
        [&] { resilience::parseCheckpoint(bytes, "test"); });
    EXPECT_NE(what.find("not a quake98 checkpoint"), std::string::npos)
        << what;
}

TEST(CheckpointFormat, RejectsVersionSkew)
{
    std::vector<std::uint8_t> bytes =
        resilience::serializeCheckpoint(sampleCheckpoint());
    bytes[8] += 1;
    const std::string what = fatalMessage(
        [&] { resilience::parseCheckpoint(bytes, "test"); });
    EXPECT_NE(what.find("unsupported checkpoint version"),
              std::string::npos)
        << what;
}

TEST(CheckpointFormat, RejectsBitFlipInEverySection)
{
    const struct
    {
        std::uint32_t tag;
        const char *name;
    } sections[] = {{0x4d455441, "META"},
                    {0x55435552, "UCUR"},
                    {0x55505256, "UPRV"},
                    {0x53544154, "STAT"},
                    {0x52505254, "RPRT"}};
    for (const auto &sec : sections) {
        std::vector<std::uint8_t> bytes =
            resilience::serializeCheckpoint(sampleCheckpoint());
        bytes[payloadOffset(bytes, sec.tag)] ^= 0x40;
        const std::string what = fatalMessage(
            [&] { resilience::parseCheckpoint(bytes, "test"); });
        EXPECT_NE(what.find(std::string("section ") + sec.name +
                            " checksum mismatch"),
                  std::string::npos)
            << sec.name << ": " << what;
    }
}

TEST(CheckpointFormat, RejectsTrailingGarbage)
{
    std::vector<std::uint8_t> bytes =
        resilience::serializeCheckpoint(sampleCheckpoint());
    bytes.push_back(0xAB);
    const std::string what = fatalMessage(
        [&] { resilience::parseCheckpoint(bytes, "test"); });
    EXPECT_NE(what.find("trailing garbage"), std::string::npos) << what;
}

TEST(CheckpointFormat, StateFingerprintSeesEveryField)
{
    const resilience::Checkpoint base = sampleCheckpoint();
    const std::uint64_t h0 = resilience::stateFingerprint(base);

    resilience::Checkpoint c = base;
    c.state.u[2] = std::nextafter(c.state.u[2], 1e300);
    EXPECT_NE(resilience::stateFingerprint(c), h0);

    c = base;
    c.state.steps += 1;
    EXPECT_NE(resilience::stateFingerprint(c), h0);

    c = base;
    c.reportPeak += 1.0;
    EXPECT_NE(resilience::stateFingerprint(c), h0);

    c = base;
    c.samples.pop_back();
    EXPECT_NE(resilience::stateFingerprint(c), h0);
}

// ---------------------------------------------------------------------
// File IO: atomic write/read round trip and errno-context diagnostics.
// ---------------------------------------------------------------------

TEST(CheckpointIo, FileRoundTrip)
{
    const std::string path = "test_resilience_roundtrip.ckpt";
    const resilience::Checkpoint c = sampleCheckpoint();
    const std::size_t bytes = resilience::writeCheckpoint(path, c);
    EXPECT_GT(bytes, 0u);
    const resilience::Checkpoint back = resilience::readCheckpoint(path);
    EXPECT_EQ(resilience::stateFingerprint(back),
              resilience::stateFingerprint(c));
    std::remove(path.c_str());
}

TEST(CheckpointIo, MissingFileDiagnosticCarriesErrnoContext)
{
    const std::string what = fatalMessage(
        [] { resilience::readCheckpoint("/no/such/dir/x.ckpt"); });
    EXPECT_NE(what.find("/no/such/dir/x.ckpt"), std::string::npos)
        << what;
    EXPECT_NE(what.find("(errno "), std::string::npos) << what;
}

TEST(CheckpointIo, UnwritablePathDiagnosticCarriesErrnoContext)
{
    const std::string what = fatalMessage([] {
        resilience::writeCheckpoint("/no/such/dir/x.ckpt",
                                    sampleCheckpoint());
    });
    EXPECT_NE(what.find("(errno "), std::string::npos) << what;
}

// ---------------------------------------------------------------------
// Integrator save/restore: bitwise continuation on a small system.
// ---------------------------------------------------------------------

/** A ring Laplacian SMVP: deterministic, mesh-free, any size. */
sim::SmvpFn
ringSmvp()
{
    return [](const std::vector<double> &x, std::vector<double> &y) {
        const std::size_t n = x.size();
        y.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            y[i] = 2.0 * x[i] - 0.5 * (x[(i + 1) % n] +
                                       x[(i + n - 1) % n]);
    };
}

sim::ExplicitTimeStepper
makeRingStepper(int n)
{
    sim::ExplicitTimeStepper stepper(ringSmvp(),
                                     std::vector<double>(n, 1.0), 0.01);
    std::vector<double> u0(n), v0(n, 0.0);
    for (int i = 0; i < n; ++i)
        u0[i] = std::sin(0.7 * i);
    stepper.setInitialConditions(u0, v0);
    return stepper;
}

TEST(StepperState, RestoreContinuationIsBitwise)
{
    const int n = 24;
    sim::ExplicitTimeStepper golden = makeRingStepper(n);
    for (int s = 0; s < 5; ++s)
        golden.step();
    sim::StepperState mid;
    golden.saveState(mid);
    EXPECT_EQ(mid.steps, 5);
    for (int s = 5; s < 10; ++s)
        golden.step();

    sim::ExplicitTimeStepper resumed = makeRingStepper(n);
    resumed.restoreState(mid);
    EXPECT_EQ(resumed.stepCount(), 5);
    for (int s = 5; s < 10; ++s)
        resumed.step();

    EXPECT_TRUE(bitwiseEqual(resumed.displacement(),
                             golden.displacement()));
    EXPECT_TRUE(bitwiseEqual(resumed.previousDisplacement(),
                             golden.previousDisplacement()));
    EXPECT_EQ(resumed.peakDisplacement(), golden.peakDisplacement());
    EXPECT_EQ(resumed.kineticEnergy(), golden.kineticEnergy());
}

TEST(StepperState, RestoreRejectsWrongDofCount)
{
    sim::ExplicitTimeStepper stepper = makeRingStepper(24);
    stepper.step();
    sim::StepperState state;
    stepper.saveState(state);
    state.u.resize(12);
    state.up.resize(12);
    sim::ExplicitTimeStepper other = makeRingStepper(24);
    EXPECT_THROW(other.restoreState(state), FatalError);
}

// ---------------------------------------------------------------------
// Engine fingerprint: what it covers and what it deliberately excludes.
// ---------------------------------------------------------------------

sim::SimulationConfig
latticeConfig()
{
    sim::SimulationConfig config;
    // A duration long enough that the step cap is the binding limit.
    config.durationSeconds = 1000.0;
    config.maxSteps = 12;
    config.sampleInterval = 3;
    config.numPes = 2;
    config.smvpThreads = 2;
    return config;
}

struct Lattice
{
    mesh::Aabb box{{0, 0, 0}, {4.0, 4.0, 2.0}};
    mesh::UniformModel model{box, 1.0};
    mesh::TetMesh mesh = mesh::buildKuhnLattice(box, 2, 2, 2);
};

TEST(EngineFingerprint, ExcludesExecutionKnobsIncludesPhysics)
{
    const Lattice lat;
    const sim::SimulationConfig base = latticeConfig();
    const std::uint64_t h0 =
        sim::makeSimulationEngine(lat.mesh, lat.model, base).fingerprint;

    // Execution knobs proven bitwise-invariant must NOT change the
    // fingerprint: a checkpoint may legally resume under any of them.
    sim::SimulationConfig cfg = base;
    cfg.smvpThreads = 1;
    cfg.overlapSmvp = !cfg.overlapSmvp;
    cfg.fusedStep = !cfg.fusedStep;
    EXPECT_EQ(
        sim::makeSimulationEngine(lat.mesh, lat.model, cfg).fingerprint,
        h0);

    // Physics and topology MUST change it.
    cfg = base;
    cfg.dampingA0 = 0.25;
    EXPECT_NE(
        sim::makeSimulationEngine(lat.mesh, lat.model, cfg).fingerprint,
        h0);
    cfg = base;
    cfg.numPes = 4;
    EXPECT_NE(
        sim::makeSimulationEngine(lat.mesh, lat.model, cfg).fingerprint,
        h0);
}

TEST(EngineFingerprint, RequireCompatibleRefusesMismatch)
{
    const Lattice lat;
    sim::SimulationEngine engine =
        sim::makeSimulationEngine(lat.mesh, lat.model, latticeConfig());
    resilience::Checkpoint c = sampleCheckpoint();
    c.fingerprint = engine.fingerprint;
    resilience::requireCompatible(c, engine); // must not throw

    c.fingerprint ^= 1;
    const std::string what = fatalMessage(
        [&] { resilience::requireCompatible(c, engine); });
    EXPECT_NE(what.find("fingerprint mismatch"), std::string::npos)
        << what;
}

// ---------------------------------------------------------------------
// Supervisor policy: validation, backoff, retries, degradation.
// ---------------------------------------------------------------------

TEST(SupervisorOptions, ValidateRejectsNonsense)
{
    resilience::SupervisorOptions o;
    o.maxAttempts = 0;
    EXPECT_THROW(o.validate(), FatalError);

    o = {};
    o.stallTimeout = std::chrono::milliseconds{-1};
    EXPECT_THROW(o.validate(), FatalError);

    o = {};
    o.pollInterval = std::chrono::milliseconds{0};
    EXPECT_THROW(o.validate(), FatalError);

    o = {};
    o.backoffFactor = 0.5;
    EXPECT_THROW(o.validate(), FatalError);

    o = {};
    o.backoffCap = std::chrono::milliseconds{10};
    o.backoffBase = std::chrono::milliseconds{100};
    EXPECT_THROW(o.validate(), FatalError);

    o = {};
    o.validate(); // defaults are sane
}

TEST(RunSupervisor, BackoffIsCappedExponential)
{
    resilience::SupervisorOptions o;
    o.backoffBase = std::chrono::milliseconds{100};
    o.backoffFactor = 2.0;
    o.backoffCap = std::chrono::milliseconds{300};
    const resilience::RunSupervisor sup(o);
    EXPECT_EQ(sup.backoffDelay(1).count(), 100);
    EXPECT_EQ(sup.backoffDelay(2).count(), 200);
    EXPECT_EQ(sup.backoffDelay(3).count(), 300); // capped (400 -> 300)
    EXPECT_EQ(sup.backoffDelay(4).count(), 300);
}

TEST(RunSupervisor, RetriesTransientFailuresWithBackoff)
{
    resilience::SupervisorOptions o;
    o.maxAttempts = 5;
    o.backoffBase = std::chrono::milliseconds{100};
    o.backoffFactor = 2.0;
    o.backoffCap = std::chrono::milliseconds{5000};

    std::vector<std::int64_t> slept;
    resilience::RunSupervisor sup(
        o, [&](std::chrono::milliseconds d) {
            slept.push_back(d.count());
        });

    int calls = 0;
    const resilience::RunOutcome out = sup.supervise(
        [&](int, resilience::Heartbeat &) -> sim::SimulationReport {
            if (++calls < 3)
                throw std::runtime_error("transient failure");
            sim::SimulationReport r;
            r.steps = 7;
            return r;
        },
        4);

    EXPECT_TRUE(out.succeeded);
    EXPECT_EQ(out.attempts, 3);
    EXPECT_EQ(out.stalls, 0);
    EXPECT_EQ(out.degradations, 0);
    EXPECT_EQ(out.finalThreads, 4); // no stall, no degradation
    EXPECT_EQ(out.report.steps, 7);
    EXPECT_TRUE(out.error.empty());
    ASSERT_EQ(slept.size(), 2u);
    EXPECT_EQ(slept[0], 100);
    EXPECT_EQ(slept[1], 200);
}

TEST(RunSupervisor, StallsDegradeThreadsAndExhaustAttempts)
{
    resilience::SupervisorOptions o;
    o.maxAttempts = 3;
    o.backoffBase = std::chrono::milliseconds{0};
    o.backoffCap = std::chrono::milliseconds{0};
    resilience::RunSupervisor sup(o,
                                  [](std::chrono::milliseconds) {});

    std::vector<int> thread_budgets;
    const resilience::RunOutcome out = sup.supervise(
        [&](int threads,
            resilience::Heartbeat &) -> sim::SimulationReport {
            thread_budgets.push_back(threads);
            throw resilience::StallError("stuck");
        },
        8);

    EXPECT_FALSE(out.succeeded);
    EXPECT_EQ(out.attempts, 3);
    EXPECT_EQ(out.stalls, 3);
    EXPECT_EQ(out.degradations, 3); // 8 -> 4 -> 2 -> 1
    EXPECT_EQ(out.error, "stuck");
    EXPECT_EQ(thread_budgets, (std::vector<int>{8, 4, 2}));
}

TEST(RunSupervisor, DegradationCanBeDisabled)
{
    resilience::SupervisorOptions o;
    o.maxAttempts = 2;
    o.backoffBase = std::chrono::milliseconds{0};
    o.backoffCap = std::chrono::milliseconds{0};
    o.degradeThreadsOnStall = false;
    resilience::RunSupervisor sup(o,
                                  [](std::chrono::milliseconds) {});

    std::vector<int> thread_budgets;
    const resilience::RunOutcome out = sup.supervise(
        [&](int threads,
            resilience::Heartbeat &) -> sim::SimulationReport {
            thread_budgets.push_back(threads);
            throw resilience::StallError("stuck");
        },
        8);
    EXPECT_EQ(out.degradations, 0);
    EXPECT_EQ(thread_budgets, (std::vector<int>{8, 8}));
}

TEST(RunSupervisor, WatchdogCancelsASilentAttempt)
{
    resilience::SupervisorOptions o;
    o.maxAttempts = 1;
    o.stallTimeout = std::chrono::milliseconds{80};
    o.pollInterval = std::chrono::milliseconds{5};
    resilience::RunSupervisor sup(o,
                                  [](std::chrono::milliseconds) {});

    const resilience::RunOutcome out = sup.supervise(
        [&](int,
            resilience::Heartbeat &hb) -> sim::SimulationReport {
            hb.beat(1); // one beat, then silence
            while (!hb.cancelled())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds{2});
            throw resilience::StallError("cancelled by watchdog");
        },
        1);

    EXPECT_FALSE(out.succeeded);
    EXPECT_EQ(out.stalls, 1);
}

TEST(ModelStepDeadline, FollowsEq1AndClampsToFloor)
{
    core::SmvpShape shape;
    shape.flops = 1e6;
    shape.wordsMax = 1e4;
    shape.blocksMax = 100;

    // 1e6 * 1e-6 s + 1e4 * 1e-4 s = 2 s; x3 slack = 6000 ms.
    const auto d = resilience::modelStepDeadline(shape, 1e-6, 1e-4, 3.0);
    EXPECT_EQ(d.count(), 6000);

    // A tiny problem clamps to the floor.
    const auto tiny = resilience::modelStepDeadline(
        shape, 1e-12, 0.0, 1.0, std::chrono::milliseconds{50});
    EXPECT_EQ(tiny.count(), 50);

    EXPECT_THROW(resilience::modelStepDeadline(shape, 0.0, 1e-4, 3.0),
                 FatalError);
    EXPECT_THROW(resilience::modelStepDeadline(shape, 1e-6, -1.0, 3.0),
                 FatalError);
    EXPECT_THROW(resilience::modelStepDeadline(shape, 1e-6, 1e-4, 0.0),
                 FatalError);
}

// ---------------------------------------------------------------------
// End-to-end supervised runs on the lattice scenario.
// ---------------------------------------------------------------------

TEST(SupervisedRun, PlainRunSucceedsWithoutCheckpointing)
{
    const Lattice lat;
    const resilience::RunOutcome out = resilience::runSupervisedSimulation(
        lat.mesh, lat.model, latticeConfig(), {});
    EXPECT_TRUE(out.succeeded) << out.error;
    EXPECT_EQ(out.attempts, 1);
    EXPECT_EQ(out.restarts, 0);
    EXPECT_EQ(out.report.steps, 12);
    EXPECT_NE(out.stateFingerprint, 0u);
}

TEST(SupervisedRun, ResumeFromMidRunCheckpointMatchesUninterrupted)
{
    const Lattice lat;
    const sim::SimulationConfig config = latticeConfig();
    const std::string path = "test_resilience_resume.ckpt";
    std::remove(path.c_str());

    resilience::ResilientRunOptions opts;
    opts.checkpointPath = path;
    opts.checkpointEvery = 5; // checkpoints at steps 5 and 10 of 12

    const resilience::RunOutcome golden =
        resilience::runSupervisedSimulation(lat.mesh, lat.model, config,
                                            opts);
    ASSERT_TRUE(golden.succeeded) << golden.error;

    // Rewrite the mid-run checkpoint (step 10 was the last written; to
    // force a genuine partial resume, re-run with a coarser interval so
    // the file holds step 10, then resume and advance the final 2
    // steps).  The resumed run must land on the exact same final state.
    resilience::ResilientRunOptions resume = opts;
    resume.resume = true;
    const resilience::RunOutcome resumed =
        resilience::runSupervisedSimulation(lat.mesh, lat.model, config,
                                            resume);
    ASSERT_TRUE(resumed.succeeded) << resumed.error;
    EXPECT_EQ(resumed.restarts, 1);
    EXPECT_EQ(resumed.resumedFromStep, 10);
    EXPECT_EQ(resumed.report.steps, 12);
    EXPECT_EQ(resumed.stateFingerprint, golden.stateFingerprint);
    EXPECT_EQ(resumed.report.peakDisplacement,
              golden.report.peakDisplacement);
    ASSERT_EQ(resumed.report.samples.size(),
              golden.report.samples.size());

    std::remove(path.c_str());
}

TEST(SupervisedRun, ResumeUnderDifferentExecutionKnobsStillMatches)
{
    const Lattice lat;
    const sim::SimulationConfig config = latticeConfig();
    const std::string path = "test_resilience_reshuffle.ckpt";
    std::remove(path.c_str());

    resilience::ResilientRunOptions opts;
    opts.checkpointPath = path;
    opts.checkpointEvery = 5;
    const resilience::RunOutcome golden =
        resilience::runSupervisedSimulation(lat.mesh, lat.model, config,
                                            opts);
    ASSERT_TRUE(golden.succeeded) << golden.error;

    // The trajectory is bitwise invariant across threads / exchange
    // mode / fused-unfused, so resuming under different knobs is legal
    // and must land on the same final displacement state.  (The state
    // fingerprint also covers the kinetic-energy reduction, which is
    // only tolerance-equal across fused<->unfused, so flip everything
    // EXCEPT the fused flag here.)
    sim::SimulationConfig other = config;
    other.smvpThreads = 1;
    other.overlapSmvp = !other.overlapSmvp;
    resilience::ResilientRunOptions resume = opts;
    resume.resume = true;
    const resilience::RunOutcome resumed =
        resilience::runSupervisedSimulation(lat.mesh, lat.model, other,
                                            resume);
    ASSERT_TRUE(resumed.succeeded) << resumed.error;
    EXPECT_EQ(resumed.restarts, 1);
    EXPECT_EQ(resumed.stateFingerprint, golden.stateFingerprint);

    std::remove(path.c_str());
}

TEST(SupervisedRun, RejectsInconsistentOptions)
{
    const Lattice lat;
    resilience::ResilientRunOptions opts;
    opts.checkpointEvery = 5; // but no path
    EXPECT_THROW(resilience::runSupervisedSimulation(
                     lat.mesh, lat.model, latticeConfig(), opts),
                 FatalError);

    opts = {};
    opts.resume = true; // but no path
    EXPECT_THROW(resilience::runSupervisedSimulation(
                     lat.mesh, lat.model, latticeConfig(), opts),
                 FatalError);

    opts = {};
    opts.checkpointPath = "x.ckpt";
    opts.checkpointEvery = -1;
    EXPECT_THROW(resilience::runSupervisedSimulation(
                     lat.mesh, lat.model, latticeConfig(), opts),
                 FatalError);
}

} // namespace
