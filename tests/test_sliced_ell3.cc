/**
 * @file
 * Tests for the sliced-ELLPACK-3x3 format (DESIGN.md §12): conversion
 * edge cases (empty rows, single-tet meshes, row-length skew, slice
 * height 1), exact round-trip against the source BCSR3, the fused-step
 * bitwise contract, the threaded kernel's bitwise equality with the
 * serial one, and the engine-level backend knob.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "mesh/generator.h"
#include "quake/simulation.h"
#include "spark/kernels.h"
#include "sparse/assembly.h"
#include "sparse/bcsr3_sym.h"
#include "sparse/sliced_ell3.h"

namespace
{

using namespace quake::mesh;
using quake::common::FatalError;
using quake::sparse::Bcsr3Matrix;
using quake::sparse::Block3;
using quake::sparse::SlicedEll3Matrix;
using quake::sparse::SymBcsr3Matrix;

/** Random vector of n scalars in [-1, 1]. */
std::vector<double>
randomVector(std::int64_t n, std::uint64_t seed)
{
    std::vector<double> x(static_cast<std::size_t>(n));
    quake::common::SplitMix64 rng(seed);
    for (double &v : x)
        v = rng.uniform(-1, 1);
    return x;
}

/** A skewed test matrix: row 0 dense, every other row diagonal-only. */
Bcsr3Matrix
skewedMatrix(std::int64_t rows)
{
    std::vector<std::int64_t> xadj(static_cast<std::size_t>(rows) + 1);
    xadj[0] = 0;
    xadj[1] = rows; // row 0 holds a block for every column
    for (std::int64_t r = 1; r < rows; ++r)
        xadj[static_cast<std::size_t>(r) + 1] = rows + r;
    std::vector<std::int32_t> cols;
    for (std::int64_t c = 0; c < rows; ++c)
        cols.push_back(static_cast<std::int32_t>(c));
    for (std::int64_t r = 1; r < rows; ++r)
        cols.push_back(static_cast<std::int32_t>(r));
    Bcsr3Matrix a(rows, xadj, cols);
    quake::common::SplitMix64 rng(11);
    for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t b = xadj[static_cast<std::size_t>(r)];
             b < xadj[static_cast<std::size_t>(r) + 1]; ++b) {
            Block3 blk{};
            for (int e = 0; e < 9; ++e)
                blk[static_cast<std::size_t>(e)] = rng.uniform(-2, 2);
            a.addToBlock(r, cols[static_cast<std::size_t>(b)], blk);
        }
    return a;
}

void
expectSameProduct(const Bcsr3Matrix &a, const SlicedEll3Matrix &ell,
                  std::uint64_t seed)
{
    const std::vector<double> x = randomVector(a.numRows(), seed);
    const std::vector<double> ref = a.multiply(x);
    const std::vector<double> y = ell.multiply(x);
    ASSERT_EQ(y.size(), ref.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-12 * (1.0 + std::fabs(ref[i])))
            << "dof " << i;
}

TEST(SlicedEll3, EmptyRowListCoversNothing)
{
    const Bcsr3Matrix a = skewedMatrix(5);
    const SlicedEll3Matrix ell =
        SlicedEll3Matrix::fromBcsr3Rows(a, nullptr, 0);
    EXPECT_EQ(ell.numCoveredRows(), 0);
    EXPECT_EQ(ell.numSlices(), 0);
    EXPECT_EQ(ell.storedBlocks(), 0);
    EXPECT_EQ(ell.numRows(), a.numRows());

    // multiply over zero covered rows must leave y untouched.
    const std::vector<double> x = randomVector(a.numRows(), 3);
    std::vector<double> y(static_cast<std::size_t>(a.numRows()), 7.5);
    ell.multiply(x.data(), y.data());
    for (double v : y)
        EXPECT_EQ(v, 7.5);
}

TEST(SlicedEll3, EmptyRowsInsideTheMatrix)
{
    // Row 1 holds no blocks at all: its lane is all padding and its
    // output rows must be overwritten with exact zero.
    Bcsr3Matrix a(3, {0, 1, 1, 2}, {0, 2});
    Block3 d{};
    d[0] = d[4] = d[8] = 2.0;
    a.addToBlock(0, 0, d);
    a.addToBlock(2, 2, d);

    for (std::int64_t h : {std::int64_t{1}, std::int64_t{2},
                           std::int64_t{8}}) {
        const SlicedEll3Matrix ell = SlicedEll3Matrix::fromBcsr3(a, h);
        ell.validate();
        EXPECT_EQ(ell.structuralBlocks(), a.numBlocks());
        const std::vector<double> x = randomVector(a.numRows(), 17);
        std::vector<double> y(static_cast<std::size_t>(a.numRows()),
                              -3.0);
        ell.multiply(x.data(), y.data());
        for (int c = 3; c < 6; ++c)
            EXPECT_EQ(y[static_cast<std::size_t>(c)], 0.0)
                << "empty row dof " << c;
        expectSameProduct(a, ell, 18);
    }
}

TEST(SlicedEll3, SingleTetMesh)
{
    // The smallest assembled system: one tetrahedron, four nodes.
    TetMesh m;
    m.addNode({0, 0, 0});
    m.addNode({1, 0, 0});
    m.addNode({0, 1, 0});
    m.addNode({0, 0, 1});
    m.addTet(0, 1, 2, 3);
    const UniformModel model(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
    const Bcsr3Matrix a =
        quake::sparse::assembleStiffness(m, model, 0.25);

    // Four block rows against the default slice height of 8: a single
    // partially-filled slice, pad lanes included.
    const SlicedEll3Matrix ell = SlicedEll3Matrix::fromBcsr3(a);
    ell.validate();
    EXPECT_EQ(ell.numCoveredRows(), 4);
    EXPECT_EQ(ell.numSlices(), 1);
    expectSameProduct(a, ell, 23);
}

TEST(SlicedEll3, RowLengthSkewPadsButStaysCorrect)
{
    const Bcsr3Matrix a = skewedMatrix(17);
    const SlicedEll3Matrix ell = SlicedEll3Matrix::fromBcsr3(a, 8);
    ell.validate();
    // The dense row forces its whole slice to the full width, so the
    // stored slots must strictly exceed the structural blocks.
    EXPECT_GT(ell.storedBlocks(), ell.structuralBlocks());
    EXPECT_GT(ell.paddingRatio(), 1.0);
    expectSameProduct(a, ell, 29);
}

TEST(SlicedEll3, SliceHeightOneDegeneratesToRowMajorEll)
{
    const Bcsr3Matrix a = skewedMatrix(9);
    const SlicedEll3Matrix ell = SlicedEll3Matrix::fromBcsr3(a, 1);
    ell.validate();
    EXPECT_EQ(ell.sliceHeight(), 1);
    EXPECT_EQ(ell.numSlices(), a.numBlockRows());
    // With one row per slice, each slice width is exactly the row
    // length: no padding at all.
    EXPECT_EQ(ell.storedBlocks(), ell.structuralBlocks());
    EXPECT_DOUBLE_EQ(ell.paddingRatio(), 1.0);
    expectSameProduct(a, ell, 31);
}

TEST(SlicedEll3, RoundTripReproducesBcsr3Exactly)
{
    const Bcsr3Matrix a = skewedMatrix(13);
    const std::int64_t h = 4;
    const SlicedEll3Matrix ell = SlicedEll3Matrix::fromBcsr3(a, h);
    const std::vector<std::int64_t> &xadj = a.xadj();
    const std::vector<std::int32_t> &cols = a.blockCols();
    for (std::int64_t s = 0; s < ell.numSlices(); ++s) {
        const std::int64_t width = ell.sliceWidth(s);
        for (std::int64_t lane = 0; lane < h; ++lane) {
            const std::int64_t r = ell.laneRow(s * h + lane);
            const std::int64_t len =
                r >= 0 ? xadj[static_cast<std::size_t>(r) + 1] -
                             xadj[static_cast<std::size_t>(r)]
                       : 0;
            for (std::int64_t j = 0; j < width; ++j) {
                if (j < len) {
                    const std::int64_t b =
                        xadj[static_cast<std::size_t>(r)] + j;
                    EXPECT_EQ(ell.colAt(s, j, lane),
                              cols[static_cast<std::size_t>(b)]);
                    for (int e = 0; e < 9; ++e)
                        EXPECT_EQ(ell.valueAt(s, j, lane, e),
                                  a.blockAt(b)[e])
                            << "row " << r << " slot " << j;
                } else {
                    EXPECT_EQ(ell.colAt(s, j, lane), 0);
                    for (int e = 0; e < 9; ++e)
                        EXPECT_EQ(ell.valueAt(s, j, lane, e), 0.0);
                }
            }
        }
    }
}

TEST(SlicedEll3, FromSymBcsr3MatchesTheFullOperator)
{
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 3, 3, 3);
    const UniformModel model(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
    const Bcsr3Matrix a =
        quake::sparse::assembleStiffness(m, model, 0.25);
    const SymBcsr3Matrix sym = SymBcsr3Matrix::fromBcsr3(a, 1e-9);
    const SlicedEll3Matrix ell = SlicedEll3Matrix::fromSymBcsr3(sym);
    ell.validate();
    EXPECT_EQ(ell.numCoveredRows(), a.numBlockRows());

    const std::vector<double> x = randomVector(a.numRows(), 37);
    const std::vector<double> ref = a.multiply(x);
    const std::vector<double> y = ell.multiply(x);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-9 * (1.0 + std::fabs(ref[i])))
            << "dof " << i;
}

TEST(SlicedEll3, FusedStepBitwiseEqualsMultiplyPlusTriad)
{
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 3, 3, 3);
    const UniformModel model(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
    const Bcsr3Matrix a =
        quake::sparse::assembleStiffness(m, model, 0.25);
    const SlicedEll3Matrix ell = SlicedEll3Matrix::fromBcsr3(a);
    const std::int64_t n = a.numRows();

    const std::vector<double> u = randomVector(n, 41);
    const std::vector<double> up0 = randomVector(n, 43);
    const std::vector<double> f = randomVector(n, 47);
    std::vector<double> invMass(static_cast<std::size_t>(n), 1.0);
    const double dt = 1e-3;

    quake::sparse::StepUpdate su;
    su.u = u.data();
    su.f = f.data();
    su.invMass = invMass.data();
    su.dt = dt;
    su.dt2 = dt * dt;
    su.prevCoeff = 1.0;
    su.denom = 1.0;

    const std::vector<double> ku = ell.multiply(u);
    std::vector<double> upRef = up0;
    su.up = upRef.data();
    quake::sparse::StepPartials pRef;
    quake::sparse::applyStepUpdateRange(su, ku.data(), 0, n, pRef);

    std::vector<double> upF = up0;
    su.up = upF.data();
    std::vector<double> scratch(static_cast<std::size_t>(n), 0.0);
    const quake::sparse::StepPartials pF =
        ell.multiplyFusedStep(su, scratch.data());

    EXPECT_EQ(upRef, upF);
    EXPECT_EQ(pRef.peak, pF.peak);
    EXPECT_EQ(pRef.energy, pF.energy);
    // The fused sweep materializes the same ku in the caller scratch.
    EXPECT_EQ(ku, scratch);
}

TEST(SlicedEll3, FusedStepRequiresIdentityRowMap)
{
    const Bcsr3Matrix a = skewedMatrix(6);
    const std::int64_t rows[] = {2, 4}; // a proper subset, not identity
    const SlicedEll3Matrix ell =
        SlicedEll3Matrix::fromBcsr3Rows(a, rows, 2);
    EXPECT_FALSE(ell.identityRowMap());

    quake::sparse::StepUpdate su{};
    std::vector<double> y(static_cast<std::size_t>(a.numRows()), 0.0);
    EXPECT_THROW(ell.multiplyFusedStep(su, y.data()), FatalError);
}

TEST(SlicedEll3, RejectsInvalidSliceHeight)
{
    const Bcsr3Matrix a = skewedMatrix(4);
    EXPECT_THROW(SlicedEll3Matrix::fromBcsr3(a, 0), FatalError);
    EXPECT_THROW(SlicedEll3Matrix::fromBcsr3(
                     a, SlicedEll3Matrix::kMaxSliceHeight + 1),
                 FatalError);
    EXPECT_THROW(SlicedEll3Matrix::fromBcsr3(a).multiply(
                     std::vector<double>(3, 0.0)),
                 FatalError);
}

TEST(SlicedEll3, ThreadedKernelBitwiseEqualsSerial)
{
    const GeneratedMesh generated = generateSfMesh(SfClass::kSf20);
    const LayeredBasinModel model;
    quake::spark::KernelSuite suite(generated.mesh, model);
    const std::vector<double> x = randomVector(suite.dof(), 53);

    const std::vector<double> serial =
        suite.run(quake::spark::Kernel::kSlicedEll3, x);
    for (int t : {1, 2, 4, 8}) {
        suite.setThreads(t);
        EXPECT_EQ(serial,
                  suite.run(quake::spark::Kernel::kSlicedEll3Mt, x))
            << t << " threads";
    }
}

// ---------------------------------------------------------------------------
// Engine-level backend knob.
// ---------------------------------------------------------------------------

quake::sim::SimulationReport
runBackendSim(quake::sim::SimulationConfig::KernelBackend backend,
              int pes, int threads, bool overlap, bool fused)
{
    quake::sim::SimulationConfig config;
    config.durationSeconds = 1.0;
    config.maxSteps = 12;
    config.sampleInterval = 3;
    config.numPes = pes;
    config.smvpThreads = threads;
    config.overlapSmvp = overlap;
    config.fusedStep = fused;
    config.kernelBackend = backend;
    return quake::sim::runSfSimulation(SfClass::kSf20, config);
}

TEST(SlicedEll3Engine, BitwiseInvariantAcrossExecutionConfigs)
{
    using KB = quake::sim::SimulationConfig::KernelBackend;
    // Distributed ELL backend: threads, exchange mode, and fusion are
    // scheduling-only — the trajectory must be bitwise identical.
    const quake::sim::SimulationReport ref =
        runBackendSim(KB::kSlicedEll3, 3, 1, false, false);
    for (int t : {1, 2, 4})
        for (bool overlap : {false, true})
            for (bool fused : {false, true}) {
                const quake::sim::SimulationReport r =
                    runBackendSim(KB::kSlicedEll3, 3, t, overlap, fused);
                EXPECT_EQ(r.peakDisplacement, ref.peakDisplacement)
                    << t << " threads overlap=" << overlap
                    << " fused=" << fused;
                ASSERT_EQ(r.samples.size(), ref.samples.size());
                for (std::size_t i = 0; i < r.samples.size(); ++i) {
                    EXPECT_EQ(r.samples[i].peakDisplacement,
                              ref.samples[i].peakDisplacement);
                    EXPECT_EQ(r.samples[i].time, ref.samples[i].time);
                }
            }

    // Sequential ELL backend: fused vs unfused bitwise as well.
    const quake::sim::SimulationReport s1 =
        runBackendSim(KB::kSlicedEll3, 1, 1, false, false);
    const quake::sim::SimulationReport s2 =
        runBackendSim(KB::kSlicedEll3, 1, 1, false, true);
    EXPECT_EQ(s1.peakDisplacement, s2.peakDisplacement);

    // Cross-backend: close, but a distinct trajectory is legal.
    const quake::sim::SimulationReport b =
        runBackendSim(KB::kBcsr3, 3, 2, true, true);
    EXPECT_NEAR(b.peakDisplacement, ref.peakDisplacement,
                1e-9 * (1.0 + std::fabs(b.peakDisplacement)));
}

TEST(SlicedEll3Engine, BackendIsPartOfTheFingerprint)
{
    using KB = quake::sim::SimulationConfig::KernelBackend;
    const GeneratedMesh generated = generateSfMesh(SfClass::kSf20);
    const LayeredBasinModel model;
    quake::sim::SimulationConfig config;
    config.durationSeconds = 1.0;
    config.maxSteps = 4;
    config.numPes = 2;

    config.kernelBackend = KB::kBcsr3;
    const quake::sim::SimulationEngine e1 =
        quake::sim::makeSimulationEngine(generated.mesh, model, config);
    config.kernelBackend = KB::kSlicedEll3;
    const quake::sim::SimulationEngine e2 =
        quake::sim::makeSimulationEngine(generated.mesh, model, config);
    EXPECT_NE(e1.fingerprint, e2.fingerprint);

    // Execution-only knobs still do NOT move the fingerprint.
    config.smvpThreads = 4;
    config.overlapSmvp = !config.overlapSmvp;
    config.fusedStep = !config.fusedStep;
    const quake::sim::SimulationEngine e3 =
        quake::sim::makeSimulationEngine(generated.mesh, model, config);
    EXPECT_EQ(e2.fingerprint, e3.fingerprint);
}

} // namespace
