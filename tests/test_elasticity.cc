/**
 * @file
 * Tests for the linear-tetrahedron elasticity kernels: material
 * conversion, shape gradients, and the element stiffness's defining
 * properties (symmetry, rigid-body null space, positive semidefiniteness).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "mesh/geometry.h"
#include "sparse/elasticity.h"

namespace
{

using namespace quake::sparse;
using quake::common::FatalError;
using quake::common::SplitMix64;
using quake::mesh::Vec3;

const Vec3 kO{0, 0, 0};
const Vec3 kX{1, 0, 0};
const Vec3 kY{0, 1, 0};
const Vec3 kZ{0, 0, 1};

TEST(Material, FromShearWaveQuarterPoisson)
{
    // For nu = 0.25, lambda == mu (the classic Poisson solid).
    const Material m = Material::fromShearWave(2.0, 2.5, 0.25);
    EXPECT_DOUBLE_EQ(m.mu, 2.5 * 4.0);
    EXPECT_DOUBLE_EQ(m.lambda, m.mu);
    EXPECT_DOUBLE_EQ(m.rho, 2.5);
}

TEST(Material, FromShearWaveZeroPoisson)
{
    const Material m = Material::fromShearWave(1.0, 1.0, 0.0);
    EXPECT_DOUBLE_EQ(m.lambda, 0.0);
}

TEST(Material, RejectsBadInputs)
{
    EXPECT_THROW(Material::fromShearWave(-1, 1, 0.25), FatalError);
    EXPECT_THROW(Material::fromShearWave(1, 0, 0.25), FatalError);
    EXPECT_THROW(Material::fromShearWave(1, 1, 0.5), FatalError);
}

TEST(ShapeGradients, SumToZero)
{
    const auto g = shapeGradients(kO, kX, kY, kZ);
    const Vec3 sum = g[0] + g[1] + g[2] + g[3];
    EXPECT_NEAR(sum.norm(), 0.0, 1e-14);
}

TEST(ShapeGradients, ReproduceBarycentricDerivatives)
{
    // On the unit corner tet, lambda_1 = x, lambda_2 = y, lambda_3 = z.
    const auto g = shapeGradients(kO, kX, kY, kZ);
    EXPECT_NEAR((g[1] - Vec3{1, 0, 0}).norm(), 0.0, 1e-14);
    EXPECT_NEAR((g[2] - Vec3{0, 1, 0}).norm(), 0.0, 1e-14);
    EXPECT_NEAR((g[3] - Vec3{0, 0, 1}).norm(), 0.0, 1e-14);
}

TEST(ShapeGradients, ExactForLinearField)
{
    // Gradients must recover an arbitrary linear field u(p) = a . p + c
    // from its vertex values: grad u = sum_i u_i g_i.
    SplitMix64 rng(404);
    const Vec3 a{1.5, -2.25, 0.75};
    const std::array<Vec3, 4> verts = {
        Vec3{0.3, 0.1, 0.2}, Vec3{1.7, 0.4, 0.1}, Vec3{0.2, 1.9, 0.3},
        Vec3{0.5, 0.6, 2.1}};
    const auto g =
        shapeGradients(verts[0], verts[1], verts[2], verts[3]);
    Vec3 grad{};
    for (int i = 0; i < 4; ++i)
        grad += g[i] * (a.dot(verts[i]) + 3.0);
    EXPECT_NEAR((grad - a).norm(), 0.0, 1e-12);
}

TEST(ShapeGradients, RejectsDegenerate)
{
    EXPECT_THROW(shapeGradients(kO, kX, kY, Vec3{1, 1, 0}), FatalError);
}

/** Apply the element stiffness to a 12-vector of vertex displacements. */
std::array<double, 12>
applyKe(const ElementStiffness &ke, const std::array<double, 12> &u)
{
    std::array<double, 12> y{};
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            for (int r = 0; r < 3; ++r)
                for (int c = 0; c < 3; ++c)
                    y[3 * i + r] +=
                        ke.blocks[i][j][3 * r + c] * u[3 * j + c];
    return y;
}

class ElementStiffnessProperty : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7 + 11);
        do {
            for (Vec3 &p : verts_)
                p = Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2),
                         rng.uniform(-2, 2)};
        } while (quake::mesh::tetVolume(verts_[0], verts_[1], verts_[2],
                                        verts_[3]) < 0.05);
        mat_ = Material::fromShearWave(rng.uniform(0.3, 3.0),
                                       rng.uniform(1.5, 3.0), 0.25);
        ke_ = elementStiffness(verts_[0], verts_[1], verts_[2], verts_[3],
                               mat_);
        rng_seed_ = GetParam();
    }

    std::array<Vec3, 4> verts_;
    Material mat_;
    ElementStiffness ke_;
    int rng_seed_ = 0;
};

TEST_P(ElementStiffnessProperty, Symmetric)
{
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            for (int r = 0; r < 3; ++r)
                for (int c = 0; c < 3; ++c)
                    EXPECT_NEAR(ke_.blocks[i][j][3 * r + c],
                                ke_.blocks[j][i][3 * c + r], 1e-9);
}

TEST_P(ElementStiffnessProperty, TranslationInNullSpace)
{
    for (int axis = 0; axis < 3; ++axis) {
        std::array<double, 12> u{};
        for (int i = 0; i < 4; ++i)
            u[3 * i + axis] = 1.0;
        const auto y = applyKe(ke_, u);
        for (double v : y)
            EXPECT_NEAR(v, 0.0, 1e-9);
    }
}

TEST_P(ElementStiffnessProperty, InfinitesimalRotationInNullSpace)
{
    // u_i = omega x p_i is a rigid rotation to first order.
    const Vec3 omega{0.3, -0.7, 0.5};
    std::array<double, 12> u{};
    for (int i = 0; i < 4; ++i) {
        const Vec3 r = omega.cross(verts_[i]);
        u[3 * i + 0] = r.x;
        u[3 * i + 1] = r.y;
        u[3 * i + 2] = r.z;
    }
    const auto y = applyKe(ke_, u);
    for (double v : y)
        EXPECT_NEAR(v, 0.0, 1e-8);
}

TEST_P(ElementStiffnessProperty, PositiveSemidefinite)
{
    SplitMix64 rng(static_cast<std::uint64_t>(rng_seed_) * 131 + 7);
    for (int trial = 0; trial < 20; ++trial) {
        std::array<double, 12> u;
        for (double &v : u)
            v = rng.uniform(-1, 1);
        const auto y = applyKe(ke_, u);
        double quad = 0;
        for (int i = 0; i < 12; ++i)
            quad += u[i] * y[i];
        EXPECT_GE(quad, -1e-9);
    }
}

TEST_P(ElementStiffnessProperty, UniformStretchResisted)
{
    // A pure dilation u = p stores strictly positive energy.
    std::array<double, 12> u{};
    for (int i = 0; i < 4; ++i) {
        u[3 * i + 0] = verts_[i].x;
        u[3 * i + 1] = verts_[i].y;
        u[3 * i + 2] = verts_[i].z;
    }
    const auto y = applyKe(ke_, u);
    double quad = 0;
    for (int i = 0; i < 12; ++i)
        quad += u[i] * y[i];
    EXPECT_GT(quad, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ElementStiffnessProperty,
                         ::testing::Range(0, 12));

TEST(ElementStiffness, ScalesLinearlyWithVolume)
{
    const Material m = Material::fromShearWave(1.0, 1.0, 0.25);
    const ElementStiffness small = elementStiffness(kO, kX, kY, kZ, m);
    // Doubling all coordinates: volume x8, gradients x1/2 => Ke x2.
    const ElementStiffness big = elementStiffness(
        kO * 2.0, kX * 2.0, kY * 2.0, kZ * 2.0, m);
    EXPECT_NEAR(big.blocks[1][1][0], 2.0 * small.blocks[1][1][0], 1e-12);
}

TEST(ElementLumpedMass, QuarterPerVertex)
{
    const double mass = elementLumpedMass(kO, kX, kY, kZ, 2.4);
    EXPECT_NEAR(mass, 2.4 * (1.0 / 6.0) / 4.0, 1e-15);
}

} // namespace
