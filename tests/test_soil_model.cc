/**
 * @file
 * Tests for the ground models: the layered basin's geometry and speed
 * structure, parameter validation, and the uniform model.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "mesh/soil_model.h"

namespace
{

using namespace quake::mesh;
using quake::common::FatalError;

TEST(LayeredBasin, DomainMatchesParams)
{
    const LayeredBasinModel model;
    const Aabb box = model.domain();
    EXPECT_EQ(box.lo, (Vec3{0, 0, 0}));
    EXPECT_EQ(box.hi, (Vec3{50, 50, 10}));
}

TEST(LayeredBasin, BasinDeepestAtCenter)
{
    const LayeredBasinModel model;
    const auto &p = model.params();
    const double center_depth =
        model.basinDepth(p.basinCenter.x, p.basinCenter.y);
    EXPECT_NEAR(center_depth, p.basinMaxDepth, 1e-9);
    EXPECT_GT(center_depth, model.basinDepth(p.basinCenter.x + 5,
                                             p.basinCenter.y));
}

TEST(LayeredBasin, NoBasinFarAway)
{
    const LayeredBasinModel model;
    EXPECT_DOUBLE_EQ(model.basinDepth(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(model.basinDepth(50.0, 50.0), 0.0);
}

TEST(LayeredBasin, SedimentMuchSlowerThanRock)
{
    const LayeredBasinModel model;
    const Vec3 in_basin{25, 25, 0.1};
    const Vec3 in_rock{5, 5, 0.1};
    const double vs_soft = model.shearWaveSpeed(in_basin);
    const double vs_rock = model.shearWaveSpeed(in_rock);
    EXPECT_LT(vs_soft, 0.5);
    EXPECT_GE(vs_rock, 3.0);
    // The >10x contrast drives the "wildly varying density" grading.
    EXPECT_GT(vs_rock / vs_soft, 10.0);
}

TEST(LayeredBasin, SpeedIncreasesWithDepthInsideBasin)
{
    const LayeredBasinModel model;
    const double shallow = model.shearWaveSpeed({25, 25, 0.05});
    const double deeper = model.shearWaveSpeed({25, 25, 1.0});
    EXPECT_LT(shallow, deeper);
}

TEST(LayeredBasin, SpeedIncreasesWithDepthInRock)
{
    const LayeredBasinModel model;
    const double top = model.shearWaveSpeed({5, 5, 1.0});
    const double bottom = model.shearWaveSpeed({5, 5, 9.0});
    EXPECT_LT(top, bottom);
    EXPECT_LE(bottom, model.params().vsRockBottom + 1e-12);
}

TEST(LayeredBasin, RockBelowBasinIsFast)
{
    const LayeredBasinModel model;
    // Below the deepest sediment at the basin centre.
    const Vec3 below{25, 25, model.params().basinMaxDepth + 0.5};
    EXPECT_GE(model.shearWaveSpeed(below), model.params().vsRockTop);
    EXPECT_FALSE(model.inBasin(below));
}

TEST(LayeredBasin, InBasinPredicate)
{
    const LayeredBasinModel model;
    EXPECT_TRUE(model.inBasin({25, 25, 0.5}));
    EXPECT_FALSE(model.inBasin({2, 2, 0.5}));
}

TEST(LayeredBasin, DensityTracksMaterial)
{
    const LayeredBasinModel model;
    EXPECT_DOUBLE_EQ(model.density({25, 25, 0.5}),
                     model.params().rhoSediment);
    EXPECT_DOUBLE_EQ(model.density({2, 2, 0.5}), model.params().rhoRock);
}

TEST(LayeredBasin, RejectsBadParams)
{
    LayeredBasinModel::Params p;
    p.extentKm = {50, 50, -1};
    EXPECT_THROW(LayeredBasinModel{p}, FatalError);

    p = LayeredBasinModel::Params{};
    p.vsSediment = -0.1;
    EXPECT_THROW(LayeredBasinModel{p}, FatalError);

    p = LayeredBasinModel::Params{};
    p.vsSediment = 1.0;
    p.vsBasinFloor = 0.5; // decreasing with depth
    EXPECT_THROW(LayeredBasinModel{p}, FatalError);

    p = LayeredBasinModel::Params{};
    p.basinMaxDepth = 20.0; // deeper than the domain
    EXPECT_THROW(LayeredBasinModel{p}, FatalError);
}

TEST(UniformModel, ConstantEverywhere)
{
    const Aabb box{{0, 0, 0}, {1, 2, 3}};
    const UniformModel model(box, 2.5, 2.0);
    EXPECT_EQ(model.domain().hi, (Vec3{1, 2, 3}));
    EXPECT_DOUBLE_EQ(model.shearWaveSpeed({0.1, 0.2, 0.3}), 2.5);
    EXPECT_DOUBLE_EQ(model.shearWaveSpeed({0.9, 1.9, 2.9}), 2.5);
    EXPECT_DOUBLE_EQ(model.density({0.5, 0.5, 0.5}), 2.0);
}

// Speed field continuity across the basin rim (sampled).
class BasinRimContinuity : public ::testing::TestWithParam<double>
{};

TEST_P(BasinRimContinuity, SpeedJumpOnlyAtSedimentInterface)
{
    const LayeredBasinModel model;
    const double x = GetParam();
    // At the surface, sediment speed applies wherever depth > 0; speeds
    // must stay within physical bounds everywhere.
    const double vs = model.shearWaveSpeed({x, 25.0, 0.0});
    EXPECT_GE(vs, model.params().vsSediment - 1e-12);
    EXPECT_LE(vs, model.params().vsRockBottom + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SurfaceSweep, BasinRimContinuity,
                         ::testing::Values(0.0, 10.0, 15.0, 20.0, 25.0,
                                           30.0, 35.0, 40.0, 50.0));

} // namespace
