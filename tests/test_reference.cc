/**
 * @file
 * Tests for the embedded paper tables: internal consistency of Figure 7
 * (the paper's own derived columns), Figure 2 ratios, Figure 6 ranges,
 * and the EXFLOW comparison data.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/reference.h"

namespace
{

using namespace quake::core;
using namespace quake::core::reference;
using quake::common::FatalError;

TEST(Figure2, ValuesAsPublished)
{
    EXPECT_EQ(figure2(PaperMesh::kSf10).nodes, 7'294);
    EXPECT_EQ(figure2(PaperMesh::kSf5).elements, 151'239);
    EXPECT_EQ(figure2(PaperMesh::kSf2).edges, 2'509'064);
    EXPECT_EQ(figure2(PaperMesh::kSf1).nodes, 2'461'694);
}

TEST(Figure2, PeriodHalvingGrowsNodesNearEightfold)
{
    // Paper §2.1: "the number of nodes increases by a factor of nearly
    // eight" per period halving; the published ratios run 4.1-12.6.
    const double r1 = static_cast<double>(figure2(PaperMesh::kSf5).nodes) /
                      figure2(PaperMesh::kSf10).nodes;
    const double r2 = static_cast<double>(figure2(PaperMesh::kSf2).nodes) /
                      figure2(PaperMesh::kSf5).nodes;
    const double r3 = static_cast<double>(figure2(PaperMesh::kSf1).nodes) /
                      figure2(PaperMesh::kSf2).nodes;
    EXPECT_GT(r1, 3.0);
    EXPECT_LT(r1, 14.0);
    EXPECT_GT(r2, 3.0);
    EXPECT_LT(r2, 14.0);
    EXPECT_GT(r3, 3.0);
    EXPECT_LT(r3, 14.0);
}

TEST(Figure2, AverageNodeDegreeNear13)
{
    for (int i = 0; i < kNumMeshes; ++i) {
        const MeshSizes &m = figure2(static_cast<PaperMesh>(i));
        const double degree =
            2.0 * static_cast<double>(m.edges) / m.nodes;
        EXPECT_GT(degree, 12.0);
        EXPECT_LT(degree, 14.0);
    }
}

TEST(Figure7, PublishedDerivedColumnsConsistent)
{
    // F/C_max as printed must equal round(flops / wordsMax).
    for (int m = 0; m < kNumMeshes; ++m) {
        for (int subdomains : kSubdomainCounts) {
            const Figure7Entry &e =
                figure7(static_cast<PaperMesh>(m), subdomains);
            const double ratio = static_cast<double>(e.flops) /
                                 static_cast<double>(e.wordsMax);
            EXPECT_NEAR(ratio, static_cast<double>(e.flopsPerWord),
                        0.51 + 0.01 * ratio)
                << paperMeshName(static_cast<PaperMesh>(m)) << "/"
                << subdomains;
        }
    }
}

TEST(Figure7, InvariantsThePaperCallsOut)
{
    for (int m = 0; m < kNumMeshes; ++m) {
        for (int subdomains : kSubdomainCounts) {
            const Figure7Entry &e =
                figure7(static_cast<PaperMesh>(m), subdomains);
            // "The values of Bmax and Cmax are always even" and Cmax is
            // "divisible by three".
            EXPECT_EQ(e.wordsMax % 6, 0);
            EXPECT_EQ(e.blocksMax % 2, 0);
            // B_max implies at most subdomains-1 peers.
            EXPECT_LE(e.blocksMax / 2, subdomains - 1);
        }
    }
}

TEST(Figure7, FlopsShrinkWithMoreSubdomains)
{
    for (int m = 0; m < kNumMeshes; ++m) {
        for (std::size_t i = 1; i < kSubdomainCounts.size(); ++i) {
            const auto &prev = figure7(static_cast<PaperMesh>(m),
                                       kSubdomainCounts[i - 1]);
            const auto &cur = figure7(static_cast<PaperMesh>(m),
                                      kSubdomainCounts[i]);
            EXPECT_LT(cur.flops, prev.flops);
            // C_max is only *loosely* decreasing in the published data
            // (sf10 rises 2352 -> 2550 from 4 to 8 subdomains).
            EXPECT_LE(cur.wordsMax, prev.wordsMax * 11 / 10);
        }
    }
}

TEST(Figure7, TenfoldProblemGrowthDoublesRatio)
{
    // §4.1's scaling observation: problem size x10 raises F/C_max by
    // roughly 2 (the O(n^{1/3}) law).  Check sf5 -> sf2 (12.6x nodes).
    for (int subdomains : kSubdomainCounts) {
        const auto &small = figure7(PaperMesh::kSf5, subdomains);
        const auto &large = figure7(PaperMesh::kSf2, subdomains);
        const double growth =
            static_cast<double>(large.flopsPerWord) /
            static_cast<double>(small.flopsPerWord);
        EXPECT_GT(growth, 1.4);
        EXPECT_LT(growth, 3.2);
    }
}

TEST(Figure6, RangeMatchesPaper)
{
    for (int m = 0; m < kNumMeshes; ++m) {
        for (int subdomains : kSubdomainCounts) {
            const double beta =
                figure6Beta(static_cast<PaperMesh>(m), subdomains);
            EXPECT_GE(beta, 1.0);
            EXPECT_LE(beta, 1.15); // the largest published value
        }
    }
    EXPECT_DOUBLE_EQ(figure6Beta(PaperMesh::kSf2, 32), 1.15);
    EXPECT_DOUBLE_EQ(figure6Beta(PaperMesh::kSf1, 128), 1.11);
}

TEST(Reference, ShapeForPullsFigure7)
{
    const SmvpShape s = shapeFor(PaperMesh::kSf2, 128);
    EXPECT_DOUBLE_EQ(s.flops, 838'224);
    EXPECT_DOUBLE_EQ(s.wordsMax, 16'260);
    EXPECT_DOUBLE_EQ(s.blocksMax, 50);
}

TEST(Reference, NamesRoundTrip)
{
    for (int m = 0; m < kNumMeshes; ++m) {
        const PaperMesh mesh = static_cast<PaperMesh>(m);
        EXPECT_EQ(paperMeshFromName(paperMeshName(mesh)), mesh);
    }
    EXPECT_THROW(paperMeshFromName("sf99"), FatalError);
}

TEST(Reference, RejectsUntabulatedSubdomains)
{
    EXPECT_THROW(figure7(PaperMesh::kSf2, 5), FatalError);
    EXPECT_THROW(figure6Beta(PaperMesh::kSf2, 256), FatalError);
}

TEST(Exflow, PublishedComparison)
{
    // §1: EXFLOW vs sf2/128 intensity numbers.
    const CommIntensity &exflow = exflowIntensity();
    const CommIntensity &sf2 = quakeSf2Intensity();
    EXPECT_DOUBLE_EQ(exflow.commKBytesPerMflop, 144.0);
    EXPECT_DOUBLE_EQ(sf2.commKBytesPerMflop, 155.0);
    EXPECT_DOUBLE_EQ(exflow.messagesPerMflop, 66.0);
    EXPECT_DOUBLE_EQ(sf2.messagesPerMflop, 60.0);
    // "nearly identical computational properties": within 25%.
    EXPECT_NEAR(exflow.commKBytesPerMflop, sf2.commKBytesPerMflop,
                0.25 * sf2.commKBytesPerMflop);
}

TEST(Exflow, IntensityFromCharacterization)
{
    SmvpCharacterization ch;
    ch.numPes = 2;
    ch.pes = {PeLoad{500'000, 100, 2}, PeLoad{500'000, 100, 2}};
    ch.messageSizes = {100, 100}; // 200 words total
    const CommIntensity intensity = intensityFrom(ch, 2.0);
    // 1 MFLOP total, 1600 bytes => 1.6 KB/MFLOP, 2 msgs/MFLOP.
    EXPECT_NEAR(intensity.commKBytesPerMflop, 1.6, 1e-9);
    EXPECT_NEAR(intensity.messagesPerMflop, 2.0, 1e-9);
    EXPECT_NEAR(intensity.avgMessageKBytes, 0.8, 1e-9);
    EXPECT_DOUBLE_EQ(intensity.memoryPerPeMBytes, 2.0);
}

TEST(Reference, MachineConstantsAsPublished)
{
    EXPECT_DOUBLE_EQ(kCrayT3dTf, 30e-9);
    EXPECT_DOUBLE_EQ(kCrayT3eTf, 14e-9);
    EXPECT_DOUBLE_EQ(kCrayT3eTl, 22e-6);
    EXPECT_DOUBLE_EQ(kCrayT3eTw, 55e-9);
    EXPECT_EQ(kEfficiencyGrid.size(), 3u);
}

} // namespace
