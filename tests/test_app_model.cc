/**
 * @file
 * Tests for the whole-application model: step decomposition, the §2.3
 * SMVP-fraction prediction, speedup behaviour, and validation.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/app_model.h"
#include "core/reference.h"

namespace
{

using namespace quake::core;
using quake::common::FatalError;

AppMachine
t3eMachine()
{
    return AppMachine{reference::kCrayT3eTf, reference::kCrayT3eTl,
                      reference::kCrayT3eTw};
}

TEST(AppModel, StepDecompositionAddsUp)
{
    SmvpShape shape;
    shape.flops = 1'000'000;
    shape.wordsMax = 10'000;
    shape.blocksMax = 20;
    const AppMachine m{10e-9, 1e-6, 50e-9};
    AppModelParams params;
    params.steps = 100;
    params.vectorFlopsPerNode = 18.0;
    params.vectorTfRatio = 0.5;

    const double nodes = 25'000;
    const AppPrediction p = predictRun(shape, nodes, m, params);

    const double t_smvp = 1e6 * 10e-9;
    const double t_comm = 20 * 1e-6 + 1e4 * 50e-9;
    const double t_vec = nodes * 18.0 * 10e-9 * 0.5;
    EXPECT_NEAR(p.stepSeconds, t_smvp + t_comm + t_vec, 1e-12);
    EXPECT_NEAR(p.totalSeconds, 100 * p.stepSeconds, 1e-9);
    EXPECT_NEAR(p.smvpFraction, (t_smvp + t_comm) / p.stepSeconds,
                1e-12);
    EXPECT_NEAR(p.commFraction, t_comm / p.stepSeconds, 1e-12);
}

TEST(AppModel, ReproducesSection23SmvpDominance)
{
    // Sequential sf2: F = p * F_p; ~42 nonzero scalars per node row
    // means the SMVP flops dwarf the ~18-flop pointwise update.  The
    // model must land above the paper's 80% claim.
    const SmvpShape shape_128 =
        reference::shapeFor(reference::PaperMesh::kSf2, 128);
    SmvpShape sequential = shape_128;
    sequential.flops = shape_128.flops * 128;
    sequential.wordsMax = 1;
    sequential.blocksMax = 0;
    AppMachine m = t3eMachine();
    m.tl = 0;
    m.tw = 0;

    const double nodes = 378'747;
    const AppPrediction p = predictRun(sequential, nodes, m);
    EXPECT_GT(p.smvpFraction, 0.8);
    EXPECT_LT(p.smvpFraction, 1.0);
    EXPECT_DOUBLE_EQ(p.commFraction, 0.0);
}

TEST(AppModel, SpeedupMonotoneButSubLinear)
{
    // On the T3E, sf2 speedups grow with p but fall away from ideal.
    const double total_nodes = 378'747;
    double prev = 0.0;
    for (int p : reference::kSubdomainCounts) {
        const SmvpShape shape =
            reference::shapeFor(reference::PaperMesh::kSf2, p);
        const double s = predictedSpeedup(shape, p, total_nodes,
                                          total_nodes / p + 1000,
                                          t3eMachine());
        EXPECT_GT(s, prev);
        EXPECT_LT(s, static_cast<double>(p));
        prev = s;
    }
}

TEST(AppModel, SmallProblemsSaturateEarlier)
{
    // sf10 at 128 PEs is communication-bound: its parallel efficiency
    // (S/p) must be far below sf2's at the same PE count.
    const double eff_sf10 =
        predictedSpeedup(
            reference::shapeFor(reference::PaperMesh::kSf10, 128), 128,
            7'294, 7'294.0 / 128 + 60, t3eMachine()) /
        128.0;
    const double eff_sf2 =
        predictedSpeedup(
            reference::shapeFor(reference::PaperMesh::kSf2, 128), 128,
            378'747, 378'747.0 / 128 + 500, t3eMachine()) /
        128.0;
    EXPECT_LT(eff_sf10, 0.6 * eff_sf2);
}

TEST(AppModel, RejectsBadInputs)
{
    const SmvpShape shape =
        reference::shapeFor(reference::PaperMesh::kSf5, 8);
    EXPECT_THROW(predictRun(shape, 0.0, t3eMachine()), FatalError);
    AppMachine bad = t3eMachine();
    bad.tf = 0;
    EXPECT_THROW(predictRun(shape, 100.0, bad), FatalError);
    AppModelParams params;
    params.steps = 0;
    EXPECT_THROW(predictRun(shape, 100.0, t3eMachine(), params),
                 FatalError);
}

TEST(AppModel, FasterNetworkRaisesSmvpFraction)
{
    const SmvpShape shape =
        reference::shapeFor(reference::PaperMesh::kSf5, 64);
    AppMachine slow_net = t3eMachine();
    AppMachine fast_net = t3eMachine();
    fast_net.tl /= 10;
    fast_net.tw /= 10;
    const AppPrediction a = predictRun(shape, 2'500, slow_net);
    const AppPrediction b = predictRun(shape, 2'500, fast_net);
    EXPECT_LT(b.commFraction, a.commFraction);
    EXPECT_LT(b.stepSeconds, a.stepSeconds);
}

} // namespace
