/**
 * @file
 * Tests for the fused zero-copy time-stepping pipeline (DESIGN.md §8):
 * every fused backend (sequential BCSR3, symmetric BCSR3, the pooled
 * spark kernel, and the distributed two-phase engine) must produce a
 * displacement history bitwise identical to the unfused SMVP + reference
 * triad of the same operator, across thread counts, exchange modes, and
 * damping settings; the fused peak/energy reductions must be bitwise
 * deterministic across thread counts; and the zero-copy multiplyInto
 * path must match multiply() bit for bit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "mesh/generator.h"
#include "parallel/parallel_smvp.h"
#include "partition/geometric_bisection.h"
#include "quake/simulation.h"
#include "quake/time_stepper.h"
#include "sparse/assembly.h"
#include "sparse/bcsr3_sym.h"
#include "spark/kernels.h"

namespace
{

using namespace quake::sim;
using namespace quake::mesh;
using quake::common::FatalError;
namespace sparse = quake::sparse;
namespace parallel = quake::parallel;
namespace spark = quake::spark;

/** A mesh/model pair with its assembled operator and step size. */
struct System
{
    TetMesh mesh;
    sparse::Bcsr3Matrix k;
    std::vector<double> mass;
    double dt = 0.0;
    Vec3 center{0, 0, 0};
};

System
latticeSystem()
{
    const Aabb box{{0, 0, 0}, {4, 4, 4}};
    const UniformModel model(box, 1.0, 1.0);
    System sys;
    sys.mesh = buildKuhnLattice(box, 3, 3, 3);
    sys.k = sparse::assembleStiffness(sys.mesh, model);
    sys.mass = sparse::assembleLumpedMass(sys.mesh, model);
    sys.dt = stableTimeStep(sys.mesh, model);
    sys.center = {2, 2, 2};
    return sys;
}

System
gradedSystem()
{
    // The sf-class generator grades element size with the soil profile,
    // giving an irregular matrix structure (unlike the uniform lattice).
    const LayeredBasinModel model;
    const GeneratedMesh generated =
        generateMesh(model, MeshSpec::forClass(SfClass::kSf20, 1.5));
    System sys;
    sys.mesh = generated.mesh;
    sys.k = sparse::assembleStiffness(sys.mesh, model);
    sys.mass = sparse::assembleLumpedMass(sys.mesh, model);
    sys.dt = stableTimeStep(sys.mesh, model);
    sys.center = {25, 25, 5};
    return sys;
}

/** A stepper driven by the standard test source. */
ExplicitTimeStepper
makeStepper(const System &sys, SmvpFn smvp, double damping)
{
    ExplicitTimeStepper stepper(std::move(smvp), sys.mass, sys.dt);
    if (damping > 0)
        stepper.setDamping(damping);
    RickerWavelet w;
    w.peakFrequencyHz = 0.8;
    w.delaySeconds = 0.3;
    stepper.addSource(
        makePointSource(sys.mesh, sys.center, {0.3, 0.2, 1.0}, w));
    return stepper;
}

/** Every-step displacement history of a stepper run. */
std::vector<std::vector<double>>
runHistory(ExplicitTimeStepper &stepper, int steps)
{
    std::vector<std::vector<double>> history;
    history.reserve(static_cast<std::size_t>(steps));
    for (int s = 0; s < steps; ++s) {
        stepper.step();
        history.push_back(stepper.displacement());
    }
    return history;
}

/** Assert two histories are bitwise identical at every step. */
void
expectBitwiseHistory(const std::vector<std::vector<double>> &a,
                     const std::vector<std::vector<double>> &b,
                     const char *label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t s = 0; s < a.size(); ++s) {
        ASSERT_EQ(a[s].size(), b[s].size()) << label;
        if (std::memcmp(a[s].data(), b[s].data(),
                        a[s].size() * sizeof(double)) == 0)
            continue;
        for (std::size_t i = 0; i < a[s].size(); ++i)
            ASSERT_EQ(a[s][i], b[s][i])
                << label << ": step " << s + 1 << ", dof " << i;
    }
}

// ------------------------------------------------- sequential fused BCSR3

TEST(FusedSequential, BitwiseMatchesUnfusedOnLattice)
{
    const System sys = latticeSystem();
    for (const double damping : {0.0, 0.35}) {
        SmvpFn smvp = [&sys](const std::vector<double> &x,
                             std::vector<double> &y) {
            sys.k.multiply(x.data(), y.data());
        };
        ExplicitTimeStepper unfused = makeStepper(sys, smvp, damping);
        ExplicitTimeStepper fused = makeStepper(sys, smvp, damping);
        fused.setFusedStep([&sys](const sparse::StepUpdate &su) {
            return sys.k.multiplyFusedStep(su);
        });
        ASSERT_TRUE(fused.fusedStep());
        ASSERT_FALSE(unfused.fusedStep());

        const auto a = runHistory(unfused, 300);
        const auto b = runHistory(fused, 300);
        expectBitwiseHistory(a, b, damping > 0 ? "damped" : "undamped");

        // The reductions funnel through the same accumulation order, so
        // they agree exactly too.
        EXPECT_EQ(unfused.peakDisplacement(), fused.peakDisplacement());
        EXPECT_EQ(unfused.kineticEnergy(), fused.kineticEnergy());
    }
}

TEST(FusedSequential, BitwiseMatchesUnfusedOnGradedMesh)
{
    const System sys = gradedSystem();
    SmvpFn smvp = [&sys](const std::vector<double> &x,
                         std::vector<double> &y) {
        sys.k.multiply(x.data(), y.data());
    };
    ExplicitTimeStepper unfused = makeStepper(sys, smvp, 0.0);
    ExplicitTimeStepper fused = makeStepper(sys, smvp, 0.0);
    fused.setFusedStep([&sys](const sparse::StepUpdate &su) {
        return sys.k.multiplyFusedStep(su);
    });
    expectBitwiseHistory(runHistory(unfused, 200), runHistory(fused, 200),
                         "graded");
}

// ---------------------------------------------------- symmetric fused BCSR3

TEST(FusedSymmetric, BitwiseMatchesUnfusedSymmetricKernel)
{
    const System sys = latticeSystem();
    const sparse::SymBcsr3Matrix sym =
        sparse::SymBcsr3Matrix::fromBcsr3(sys.k, 1e-9);

    SmvpFn smvp = [&sym](const std::vector<double> &x,
                         std::vector<double> &y) {
        sym.multiply(x.data(), y.data());
    };
    ExplicitTimeStepper unfused = makeStepper(sys, smvp, 0.2);
    ExplicitTimeStepper fused = makeStepper(sys, smvp, 0.2);
    std::vector<double> scratch(static_cast<std::size_t>(sym.numRows()));
    fused.setFusedStep(
        [&sym, &scratch](const sparse::StepUpdate &su) {
            return sym.multiplyFusedStep(su, scratch.data());
        });
    expectBitwiseHistory(runHistory(unfused, 250), runHistory(fused, 250),
                         "symmetric");
}

// ------------------------------------------------------ pooled spark kernel

TEST(FusedPooledKernel, BitwiseAcrossThreadCounts)
{
    const System sys = latticeSystem();
    SmvpFn smvp = [&sys](const std::vector<double> &x,
                         std::vector<double> &y) {
        sys.k.multiply(x.data(), y.data());
    };
    ExplicitTimeStepper unfused = makeStepper(sys, smvp, 0.0);
    const auto reference = runHistory(unfused, 250);
    const double ref_peak = unfused.peakDisplacement();
    const double ref_energy = unfused.kineticEnergy();

    double pooled_energy = 0.0;
    bool first = true;
    for (const int threads : {1, 2, 4}) {
        parallel::WorkerPool pool(threads);
        const spark::FusedStepKernel kernel(sys.k, pool);
        EXPECT_EQ(kernel.chunks(), 64); // fixed grid, not pool-sized

        ExplicitTimeStepper fused = makeStepper(sys, smvp, 0.0);
        fused.setFusedStep([&kernel](const sparse::StepUpdate &su) {
            return kernel.step(su);
        });
        expectBitwiseHistory(reference, runHistory(fused, 250), "pooled");

        // Peak is an order-independent max of bitwise-identical values,
        // so it matches the serial reference exactly.  Energy sums are
        // associated per chunk, so they are bitwise identical across
        // thread counts (the grid is fixed) but only close to the
        // serial single-chain sum.
        EXPECT_EQ(fused.peakDisplacement(), ref_peak);
        EXPECT_NEAR(fused.kineticEnergy(), ref_energy,
                    1e-12 * (1.0 + ref_energy));
        if (first) {
            pooled_energy = fused.kineticEnergy();
            first = false;
        } else {
            EXPECT_EQ(fused.kineticEnergy(), pooled_energy);
        }
    }
}

// --------------------------------------------------- distributed fused step

/** Shared distributed fixture: one problem, many engines. */
struct DistributedSystem
{
    System sys;
    parallel::DistributedProblem problem;

    explicit DistributedSystem(int pes)
        : sys(latticeSystem()),
          problem([&] {
              const UniformModel model(Aabb{{0, 0, 0}, {4, 4, 4}}, 1.0,
                                       1.0);
              const quake::partition::GeometricBisection partitioner;
              return parallel::distribute(
                  sys.mesh, model, partitioner.partition(sys.mesh, pes));
          }())
    {}
};

TEST(FusedParallel, BitwiseAcrossThreadsModesAndDamping)
{
    DistributedSystem d(4);
    for (const double damping : {0.0, 0.35}) {
        // Reference: the unfused zero-copy engine path.
        parallel::ParallelSmvp ref_engine(d.problem, 2);
        SmvpFn ref_smvp = [&ref_engine](const std::vector<double> &x,
                                        std::vector<double> &y) {
            ref_engine.multiplyInto(x, y);
        };
        ExplicitTimeStepper unfused = makeStepper(d.sys, ref_smvp, damping);
        const auto reference = runHistory(unfused, 250);

        double fused_peak = 0.0, fused_energy = 0.0;
        bool first = true;
        for (const int threads : {1, 2, 4}) {
            for (const parallel::ExchangeMode mode :
                 {parallel::ExchangeMode::kBarrier,
                  parallel::ExchangeMode::kOverlapped}) {
                parallel::ParallelSmvp engine(d.problem, threads, mode);
                SmvpFn smvp = [&engine](const std::vector<double> &x,
                                        std::vector<double> &y) {
                    engine.multiplyInto(x, y);
                };
                ExplicitTimeStepper fused =
                    makeStepper(d.sys, smvp, damping);
                fused.setFusedStep(
                    [&engine](const sparse::StepUpdate &su) {
                        return engine.stepFused(su);
                    });
                expectBitwiseHistory(reference, runHistory(fused, 250),
                                     "parallel fused");

                // Per-PE partials are combined in ascending PE order,
                // so the reductions match bitwise across every thread
                // count and both exchange modes.
                if (first) {
                    fused_peak = fused.peakDisplacement();
                    fused_energy = fused.kineticEnergy();
                    first = false;
                } else {
                    EXPECT_EQ(fused.peakDisplacement(), fused_peak);
                    EXPECT_EQ(fused.kineticEnergy(), fused_energy);
                }
            }
        }

        // Peak is an order-independent max of the same bitwise values.
        EXPECT_EQ(unfused.peakDisplacement(), fused_peak);
    }
}

// -------------------------------------------------------- zero-copy multiply

TEST(MultiplyInto, BitwiseMatchesMultiply)
{
    DistributedSystem d(3);
    parallel::ParallelSmvp engine(d.problem, 2);

    const std::int64_t dof = 3 * d.problem.numGlobalNodes;
    std::vector<double> x(static_cast<std::size_t>(dof));
    for (std::int64_t i = 0; i < dof; ++i)
        x[static_cast<std::size_t>(i)] =
            std::sin(0.37 * static_cast<double>(i) + 0.11);

    const std::vector<double> expect = engine.multiply(x);
    std::vector<double> got(static_cast<std::size_t>(dof), -1.0);
    engine.multiplyInto(x, got);
    for (std::int64_t i = 0; i < dof; ++i)
        ASSERT_EQ(expect[static_cast<std::size_t>(i)],
                  got[static_cast<std::size_t>(i)])
            << "dof " << i;
}

TEST(MultiplyInto, RejectsWrongSizes)
{
    DistributedSystem d(2);
    parallel::ParallelSmvp engine(d.problem, 1);
    const std::size_t dof =
        static_cast<std::size_t>(3 * d.problem.numGlobalNodes);
    std::vector<double> x(dof), y(dof);
    std::vector<double> bad(dof - 1);
    EXPECT_THROW(engine.multiplyInto(bad, y), FatalError);
    EXPECT_THROW(engine.multiplyInto(x, bad), FatalError);
}

// ----------------------------------------------------------- cached stats

TEST(StepperStats, CachedStatsMatchExplicitSweep)
{
    const System sys = latticeSystem();
    SmvpFn smvp = [&sys](const std::vector<double> &x,
                         std::vector<double> &y) {
        sys.k.multiply(x.data(), y.data());
    };
    for (const bool use_fused : {false, true}) {
        ExplicitTimeStepper stepper = makeStepper(sys, smvp, 0.0);
        if (use_fused)
            stepper.setFusedStep([&sys](const sparse::StepUpdate &su) {
                return sys.k.multiplyFusedStep(su);
            });
        for (int s = 0; s < 120; ++s)
            stepper.step();

        double peak = 0.0;
        for (const double v : stepper.displacement())
            peak = std::max(peak, std::fabs(v));
        EXPECT_EQ(stepper.peakDisplacement(), peak);

        double energy = 0.0;
        const std::vector<double> &u = stepper.displacement();
        const std::vector<double> &up = stepper.previousDisplacement();
        for (std::size_t i = 0; i < u.size(); ++i) {
            const double v = (u[i] - up[i]) / sys.dt;
            // Same arithmetic as the stepper: reciprocal mass, divide.
            energy += 0.5 * v * v / (1.0 / sys.mass[i]);
        }
        EXPECT_DOUBLE_EQ(stepper.kineticEnergy(), energy);
    }
}

// ------------------------------------------------- pooled initial conditions

TEST(PooledSetup, InitialConditionsBitwiseMatchSerial)
{
    const System sys = latticeSystem();
    SmvpFn smvp = [&sys](const std::vector<double> &x,
                         std::vector<double> &y) {
        sys.k.multiply(x.data(), y.data());
    };
    const std::size_t dof = sys.mass.size();
    std::vector<double> u0(dof), v0(dof);
    for (std::size_t i = 0; i < dof; ++i) {
        u0[i] = 1e-3 * std::sin(0.13 * static_cast<double>(i));
        v0[i] = 1e-4 * std::cos(0.29 * static_cast<double>(i));
    }

    ExplicitTimeStepper serial = makeStepper(sys, smvp, 0.0);
    serial.setInitialConditions(u0, v0);

    parallel::WorkerPool pool(4);
    ExplicitTimeStepper pooled = makeStepper(sys, smvp, 0.0);
    pooled.setWorkerPool(&pool);
    pooled.setInitialConditions(u0, v0);

    for (std::size_t i = 0; i < dof; ++i) {
        ASSERT_EQ(serial.previousDisplacement()[i],
                  pooled.previousDisplacement()[i])
            << "dof " << i;
    }
}

} // namespace
