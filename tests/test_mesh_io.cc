/**
 * @file
 * Tests for the .node/.ele mesh serialization: round trips, one-based
 * index handling, comments, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "mesh/generator.h"
#include "mesh/mesh_io.h"

namespace
{

using namespace quake::mesh;
using quake::common::FatalError;

TetMesh
sampleMesh()
{
    TetMesh m;
    m.addNode({0, 0, 0});
    m.addNode({1, 0, 0});
    m.addNode({0, 1, 0});
    m.addNode({0, 0, 1});
    m.addNode({1, 1, 1});
    m.addTet(0, 1, 2, 3);
    m.addTet(1, 2, 4, 3);
    return m;
}

void
expectMeshesEqual(const TetMesh &a, const TetMesh &b)
{
    ASSERT_EQ(a.numNodes(), b.numNodes());
    ASSERT_EQ(a.numElements(), b.numElements());
    for (NodeId i = 0; i < a.numNodes(); ++i)
        EXPECT_EQ(a.node(i), b.node(i));
    for (TetId t = 0; t < a.numElements(); ++t)
        EXPECT_EQ(a.tet(t).v, b.tet(t).v);
}

TEST(MeshIo, StreamRoundTrip)
{
    const TetMesh m = sampleMesh();
    std::ostringstream node_os, ele_os;
    writeNodeFile(m, node_os);
    writeEleFile(m, ele_os);

    std::istringstream node_is(node_os.str()), ele_is(ele_os.str());
    const TetMesh back = readMesh(node_is, ele_is);
    expectMeshesEqual(m, back);
}

TEST(MeshIo, CoordinatesSurviveExactly)
{
    TetMesh m;
    m.addNode({0.1234567890123456, -7.77e-13, 3.0e17});
    m.addNode({1, 0, 0});
    m.addNode({0, 1, 0});
    m.addNode({0, 0, 1});
    m.addTet(0, 1, 2, 3);

    std::ostringstream node_os, ele_os;
    writeNodeFile(m, node_os);
    writeEleFile(m, ele_os);
    std::istringstream node_is(node_os.str()), ele_is(ele_os.str());
    const TetMesh back = readMesh(node_is, ele_is);
    // 17 significant digits round-trip doubles exactly.
    EXPECT_EQ(m.node(0), back.node(0));
}

TEST(MeshIo, FileRoundTrip)
{
    const TetMesh m = sampleMesh();
    const std::string prefix = ::testing::TempDir() + "quake_io_test";
    writeMesh(m, prefix);
    const TetMesh back = readMesh(prefix);
    expectMeshesEqual(m, back);
    std::remove((prefix + ".node").c_str());
    std::remove((prefix + ".ele").c_str());
}

TEST(MeshIo, AcceptsOneBasedIndexing)
{
    const std::string node_text = "4 3 0 0\n"
                                  "1 0 0 0\n"
                                  "2 1 0 0\n"
                                  "3 0 1 0\n"
                                  "4 0 0 1\n";
    const std::string ele_text = "1 4 0\n"
                                 "1 1 2 3 4\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    const TetMesh m = readMesh(node_is, ele_is);
    EXPECT_EQ(m.numNodes(), 4);
    EXPECT_EQ(m.tet(0).v, (std::array<NodeId, 4>{0, 1, 2, 3}));
}

TEST(MeshIo, SkipsCommentsAndBlankLines)
{
    const std::string node_text = "# a comment\n\n"
                                  "4 3 0 0\n"
                                  "# another\n"
                                  "0 0 0 0\n"
                                  "1 1 0 0\n"
                                  "2 0 1 0\n"
                                  "3 0 0 1\n";
    const std::string ele_text = "1 4 0\n0 0 1 2 3\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_EQ(readMesh(node_is, ele_is).numNodes(), 4);
}

TEST(MeshIo, RejectsTruncatedNodeFile)
{
    const std::string node_text = "4 3 0 0\n0 0 0 0\n";
    const std::string ele_text = "0 4 0\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
}

TEST(MeshIo, RejectsWrongDimension)
{
    const std::string node_text = "1 2 0 0\n0 0 0\n";
    const std::string ele_text = "0 4 0\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
}

TEST(MeshIo, RejectsNonTetElements)
{
    const std::string node_text = "3 3 0 0\n0 0 0 0\n1 1 0 0\n2 0 1 0\n";
    const std::string ele_text = "1 3 0\n0 0 1 2\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
}

TEST(MeshIo, RejectsVertexIndexOutOfRange)
{
    const std::string node_text = "4 3 0 0\n0 0 0 0\n1 1 0 0\n"
                                  "2 0 1 0\n3 0 0 1\n";
    const std::string ele_text = "1 4 0\n0 0 1 2 7\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
}

TEST(MeshIo, RejectsNonConsecutiveIndices)
{
    const std::string node_text = "2 3 0 0\n0 0 0 0\n5 1 0 0\n";
    const std::string ele_text = "0 4 0\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
}

TEST(MeshIo, RejectsMissingFile)
{
    EXPECT_THROW(readMesh("/nonexistent/path/prefix"), FatalError);
}

TEST(MeshIo, MissingFileDiagnosticCarriesErrnoContext)
{
    // Regression: the IO rejections must name the OS-level cause
    // ("No such file or directory (errno 2)"), not just the path.
    try {
        readMesh("/nonexistent/path/prefix");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("/nonexistent/path/prefix.node"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("(errno "), std::string::npos) << what;
    }
}

TEST(MeshIo, UnwritablePathDiagnosticCarriesErrnoContext)
{
    try {
        writeMesh(sampleMesh(), "/nonexistent/dir/prefix");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("for writing"), std::string::npos) << what;
        EXPECT_NE(what.find("(errno "), std::string::npos) << what;
    }
}

TEST(MeshIo, RejectsNonNumericNodeHeader)
{
    const std::string node_text = "four 3 0 0\n";
    const std::string ele_text = "0 4 0\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
}

TEST(MeshIo, RejectsNonNumericCoordinate)
{
    const std::string node_text = "1 3 0 0\n0 0.0 oops 0.0\n";
    const std::string ele_text = "0 4 0\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
}

TEST(MeshIo, RejectsNonFiniteCoordinate)
{
    // strtod happily parses "nan" and "inf"; the reader must not.
    const std::string node_text = "1 3 0 0\n0 0.0 nan 0.0\n";
    const std::string ele_text = "0 4 0\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
}

TEST(MeshIo, RejectsNegativeCounts)
{
    {
        const std::string node_text = "-4 3 0 0\n";
        const std::string ele_text = "0 4 0\n";
        std::istringstream node_is(node_text), ele_is(ele_text);
        EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
    }
    {
        const std::string node_text = "0 3 0 0\n";
        const std::string ele_text = "-1 4 0\n";
        std::istringstream node_is(node_text), ele_is(ele_text);
        EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
    }
}

TEST(MeshIo, RejectsOverflowingDeclaredCounts)
{
    // A corrupt header must not drive a huge allocation.
    {
        const std::string node_text = "999999999999 3 0 0\n";
        const std::string ele_text = "0 4 0\n";
        std::istringstream node_is(node_text), ele_is(ele_text);
        EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
    }
    {
        const std::string node_text = "0 3 0 0\n";
        const std::string ele_text = "999999999999 4 0\n";
        std::istringstream node_is(node_text), ele_is(ele_text);
        EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
    }
}

TEST(MeshIo, RejectsTruncatedEleFile)
{
    const std::string node_text = "4 3 0 0\n0 0 0 0\n1 1 0 0\n"
                                  "2 0 1 0\n3 0 0 1\n";
    const std::string ele_text = "2 4 0\n0 0 1 2 3\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
}

TEST(MeshIo, RejectsNonNumericEleToken)
{
    const std::string node_text = "4 3 0 0\n0 0 0 0\n1 1 0 0\n"
                                  "2 0 1 0\n3 0 0 1\n";
    const std::string ele_text = "1 4 0\n0 0 1 two 3\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    EXPECT_THROW(readMesh(node_is, ele_is), FatalError);
}

TEST(MeshIo, DiagnosticsCarryFileAndLineContext)
{
    const std::string node_text = "4 3 0 0\n0 0 0 0\n";
    const std::string ele_text = "0 4 0\n";
    std::istringstream node_is(node_text), ele_is(ele_text);
    try {
        readMesh(node_is, ele_is);
        FAIL() << "expected FatalError";
    }
    catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("truncated"), std::string::npos) << what;
        EXPECT_NE(what.find("mesh_io.cc"), std::string::npos) << what;
    }
}

TEST(MeshIo, GeneratedMeshRoundTrip)
{
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {3, 2, 1}}, 3, 2, 1);
    std::ostringstream node_os, ele_os;
    writeNodeFile(m, node_os);
    writeEleFile(m, ele_os);
    std::istringstream node_is(node_os.str()), ele_is(ele_os.str());
    expectMeshesEqual(m, readMesh(node_is, ele_is));
}

} // namespace
