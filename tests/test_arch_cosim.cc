/**
 * @file
 * Tests for the multi-level MESI co-simulator (DESIGN.md §15): config
 * validation with per-field messages, the coherence state machine
 * (true/false sharing, upgrades, miss taxonomy), the partitioned
 * per-format replay, the cross-format byte-footprint differential, and
 * a golden fixed-seed single-tet trace.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "arch/cosim.h"
#include "arch/mesi_hierarchy.h"
#include "common/error.h"
#include "mesh/generator.h"
#include "sparse/access_trace.h"
#include "sparse/assembly.h"
#include "sparse/bcsr3_sym.h"
#include "sparse/sliced_ell3.h"
#include "verify/generators.h"

namespace
{

using namespace quake;
using namespace quake::arch;
using quake::common::FatalError;

sparse::Bcsr3Matrix
latticeStiffness(int n)
{
    const mesh::TetMesh m = mesh::buildKuhnLattice(
        mesh::Aabb{{0, 0, 0}, {1, 1, 1}}, n, n, n);
    const mesh::UniformModel model(mesh::Aabb{{0, 0, 0}, {1, 1, 1}},
                                   1.0, 1.0);
    return sparse::assembleStiffness(m, model);
}

// ------------------------------------------------- config validation

TEST(MesiConfig, PresetsValidate)
{
    EXPECT_NO_THROW(MesiHierarchyConfig::t3e1998().validate());
    EXPECT_NO_THROW(MesiHierarchyConfig::t3e1998(4).validate());
    EXPECT_NO_THROW(MesiHierarchyConfig::nehalemCmp().validate());
    EXPECT_NO_THROW(MesiHierarchyConfig::nehalemCmp(8).validate());
}

std::string
mesiMessage(const MesiHierarchyConfig &c)
{
    try {
        c.validate();
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

TEST(MesiConfig, DistinctRejectionMessages)
{
    MesiHierarchyConfig c = MesiHierarchyConfig::nehalemCmp();

    c.numPes = 0;
    EXPECT_NE(mesiMessage(c).find("PE count must be positive"),
              std::string::npos);
    c.numPes = 33;
    EXPECT_NE(mesiMessage(c).find("PE count must be at most 32"),
              std::string::npos);

    c = MesiHierarchyConfig::nehalemCmp();
    c.l1HitSeconds = 0.0;
    EXPECT_NE(mesiMessage(c).find("L1 hit latency must be positive"),
              std::string::npos);
    c.l1HitSeconds = -1e-9;
    EXPECT_NE(mesiMessage(c).find("L1 hit latency must be positive"),
              std::string::npos);

    c = MesiHierarchyConfig::nehalemCmp();
    c.l2HitSeconds = 0.0;
    EXPECT_NE(mesiMessage(c).find("L2 hit latency must be positive"),
              std::string::npos);

    c = MesiHierarchyConfig::nehalemCmp();
    c.llcHitSeconds = 0.0;
    EXPECT_NE(mesiMessage(c).find("LLC hit latency must be positive"),
              std::string::npos);

    c = MesiHierarchyConfig::nehalemCmp();
    c.dramSeconds = -65e-9;
    EXPECT_NE(mesiMessage(c).find("DRAM latency must be positive"),
              std::string::npos);

    c = MesiHierarchyConfig::nehalemCmp();
    c.coherenceSeconds = -1e-9;
    EXPECT_NE(
        mesiMessage(c).find("coherence service time must be nonnegative"),
        std::string::npos);

    c = MesiHierarchyConfig::nehalemCmp();
    c.l1 = CacheConfig{32 * 1024, 32, 8};
    EXPECT_NE(mesiMessage(c).find("line sizes must match across levels"),
              std::string::npos);

    // Geometry faults surface CacheConfig's own per-field messages.
    c = MesiHierarchyConfig::nehalemCmp();
    c.l2.sizeBytes = 0;
    EXPECT_NE(mesiMessage(c).find("cache size must be positive"),
              std::string::npos);

    // An LLC-less hierarchy ignores the LLC fields entirely.
    c = MesiHierarchyConfig::t3e1998();
    c.llcHitSeconds = 0.0;
    c.llc.sizeBytes = -1;
    EXPECT_NO_THROW(c.validate());
}

// ------------------------------------------------ MESI state machine

TEST(Mesi, TrueSharingPingPong)
{
    MesiHierarchySim sim(MesiHierarchyConfig::nehalemCmp(2));
    const std::uint64_t a = 0x10000;

    sim.write(0, a); // PE0 cold write miss -> Modified
    sim.read(1, a);  // PE1 serviced by PE0's dirty line: true sharing
    sim.write(1, a); // write hit on Shared: upgrade, invalidates PE0
    sim.read(0, a);  // PE0 lost the line to a remote write: true sharing

    const MesiStats &s = sim.stats();
    EXPECT_EQ(s.pe[0].coldMisses, 1);
    EXPECT_EQ(s.pe[0].coherenceMisses, 1);
    EXPECT_EQ(s.pe[0].trueSharingMisses, 1);
    EXPECT_EQ(s.pe[0].invalidationsReceived, 1);
    EXPECT_EQ(s.pe[0].writebacks, 1); // downgraded by PE1's read

    EXPECT_EQ(s.pe[1].coherenceMisses, 1);
    EXPECT_EQ(s.pe[1].trueSharingMisses, 1);
    EXPECT_EQ(s.pe[1].falseSharingMisses, 0);
    EXPECT_EQ(s.pe[1].upgrades, 1);
    EXPECT_EQ(s.pe[1].writebacks, 1); // downgraded by PE0's re-read

    EXPECT_EQ(s.totalCoherenceMisses(), 2);
}

TEST(Mesi, FalseSharingSplitByWrittenWords)
{
    MesiHierarchySim sim(MesiHierarchyConfig::nehalemCmp(2));
    // 64-byte lines: word 0 and word 4 share a line but not a word.
    sim.write(0, 0x10000);
    sim.read(1, 0x10020); // same line, different word: false sharing
    sim.read(1, 0x20000);
    sim.write(0, 0x20000); // write miss invalidates PE1's copy
    sim.read(1, 0x20008);  // lost line, remote wrote word 0: false

    const MesiStats &s = sim.stats();
    EXPECT_EQ(s.pe[1].falseSharingMisses, 2);
    EXPECT_EQ(s.pe[1].trueSharingMisses, 0);
    EXPECT_EQ(s.pe[1].coherenceMisses, 2);
    EXPECT_EQ(s.pe[1].invalidationsReceived, 1);
}

TEST(Mesi, SinglePeColdThenCapacity)
{
    // Stream 256 KB (8192 x 32B lines) twice through the 1998 node:
    // pass one is all cold, pass two all capacity (looping LRU), and a
    // single PE never sees coherence traffic.
    MesiHierarchySim sim(MesiHierarchyConfig::t3e1998(1));
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 256 * 1024; a += 32)
            sim.read(0, a);

    const PeStats &p = sim.stats().pe[0];
    EXPECT_EQ(p.coldMisses, 8192);
    EXPECT_EQ(p.capacityMisses, 8192);
    EXPECT_EQ(p.coherenceMisses, 0);
    EXPECT_EQ(p.coldMisses + p.coherenceMisses + p.capacityMisses,
              p.l2Misses);
    EXPECT_EQ(sim.stats().bytesFromDram, 32 * 16384);
}

TEST(Mesi, RejectsOutOfRangeAccess)
{
    MesiHierarchySim sim(MesiHierarchyConfig::nehalemCmp(2));
    EXPECT_THROW(sim.read(2, 0x0), FatalError);
    EXPECT_THROW(sim.read(-1, 0x0), FatalError);
    EXPECT_THROW(sim.read(0, 0x0, 0), FatalError);
}

// ------------------------------------------------------ cosim replay

TEST(Cosim, PartitionBoundariesCoverAllRows)
{
    const sparse::Bcsr3Matrix k = latticeStiffness(3);
    for (int pes : {1, 2, 4, 7}) {
        const std::vector<std::int64_t> cuts =
            partitionBlockRows(k, pes);
        ASSERT_EQ(cuts.size(), static_cast<std::size_t>(pes) + 1);
        EXPECT_EQ(cuts.front(), 0);
        EXPECT_EQ(cuts.back(), k.numBlockRows());
        for (std::size_t i = 1; i < cuts.size(); ++i)
            EXPECT_LE(cuts[i - 1], cuts[i]);
    }
}

TEST(Cosim, SinglePeSeesNoCoherence)
{
    const sparse::Bcsr3Matrix k = latticeStiffness(3);
    for (TraceFormat f :
         {TraceFormat::kBcsr3, TraceFormat::kSymBcsr3,
          TraceFormat::kSlicedEll3}) {
        CosimOptions opt;
        opt.format = f;
        opt.numPes = 1;
        const CosimResult r =
            runCosim(k, MesiHierarchyConfig::t3e1998(1), opt);
        EXPECT_EQ(r.stats.totalCoherenceMisses(), 0)
            << traceFormatName(f);
        EXPECT_GT(r.tfSeconds, 0.0);
        EXPECT_GT(r.fractionOfPeak, 0.0);
        EXPECT_LE(r.fractionOfPeak, 1.0);
    }
}

TEST(Cosim, PartitionedReplaySurfacesSharing)
{
    const sparse::Bcsr3Matrix k = latticeStiffness(3);

    // The symmetric scatter writes remote y rows within one iteration.
    CosimOptions sym;
    sym.format = TraceFormat::kSymBcsr3;
    sym.numPes = 2;
    sym.iterations = 1;
    const CosimResult rs =
        runCosim(k, MesiHierarchyConfig::nehalemCmp(2), sym);
    EXPECT_GT(rs.stats.totalCoherenceMisses(), 0);

    // BCSR3 needs the ping-pong: iteration 2's boundary x gathers read
    // lines the other PE wrote as y in iteration 1.
    CosimOptions b1 = sym;
    b1.format = TraceFormat::kBcsr3;
    const CosimResult r1 =
        runCosim(k, MesiHierarchyConfig::nehalemCmp(2), b1);
    EXPECT_EQ(r1.stats.totalCoherenceMisses(), 0);

    CosimOptions b2 = b1;
    b2.iterations = 2;
    const CosimResult r2 =
        runCosim(k, MesiHierarchyConfig::nehalemCmp(2), b2);
    EXPECT_GT(r2.stats.totalCoherenceMisses(), 0);
}

TEST(Cosim, UsefulFlopsFormatInvariant)
{
    const sparse::Bcsr3Matrix k = latticeStiffness(3);
    for (TraceFormat f :
         {TraceFormat::kBcsr3, TraceFormat::kSymBcsr3,
          TraceFormat::kSlicedEll3}) {
        CosimOptions opt;
        opt.format = f;
        opt.numPes = 2;
        opt.iterations = 2;
        const CosimResult r =
            runCosim(k, MesiHierarchyConfig::nehalemCmp(2), opt);
        EXPECT_EQ(r.totalFlops, 2 * k.flopsPerMultiply())
            << traceFormatName(f);
    }
}

TEST(Cosim, T3eRunsFarBelowPeakAndModernCloser)
{
    // ~800 KB of block values against the 96 KB Scache: the paper's
    // memory-bound regime.  The bench gates the precise ~12% claim on
    // an sf10-scale matrix; here we pin the ordering and the regime.
    const sparse::Bcsr3Matrix k = latticeStiffness(8);
    CosimOptions opt;
    opt.format = TraceFormat::kBcsr3;
    opt.numPes = 1;
    const CosimResult old98 =
        runCosim(k, MesiHierarchyConfig::t3e1998(1), opt);
    EXPECT_LT(old98.fractionOfPeak, 0.40);
    EXPECT_GT(old98.fractionOfPeak, 0.02);

    const CosimResult modern =
        runCosim(k, MesiHierarchyConfig::nehalemCmp(1), opt);
    EXPECT_LT(modern.tfSeconds, old98.tfSeconds);
}

// --------------------------------------- byte-footprint differential

struct Footprint
{
    std::set<std::uint64_t> matrixBytes; ///< offsets into matrix arrays
    std::set<std::uint64_t> xBytes;      ///< offsets into x
    std::set<std::uint64_t> yBytes;      ///< offsets into y
};

Footprint
footprintOf(const sparse::AccessTrace &t, const sparse::TraceLayout &l,
            std::uint64_t x_bytes, std::uint64_t y_bytes)
{
    Footprint fp;
    for (const sparse::MemRef &r : t.refs) {
        for (std::uint64_t b = r.address; b < r.address + r.bytes; ++b) {
            if (b >= l.x && b < l.x + x_bytes)
                fp.xBytes.insert(b - l.x);
            else if (b >= l.y && b < l.y + y_bytes)
                fp.yBytes.insert(b - l.y);
            else
                fp.matrixBytes.insert(b);
        }
    }
    return fp;
}

TEST(Footprint, FormatsTouchIdenticalVectorBytesAndWholeArrays)
{
    const sparse::Bcsr3Matrix k = latticeStiffness(3);
    const sparse::SymBcsr3Matrix sym =
        sparse::SymBcsr3Matrix::fromBcsr3(k);
    const sparse::SlicedEll3Matrix ell =
        sparse::SlicedEll3Matrix::fromBcsr3(k);

    const std::uint64_t x_base = 0x40000000;
    const std::uint64_t y_base = 0x50000000;
    const std::uint64_t vb =
        24 * static_cast<std::uint64_t>(k.numBlockRows());

    sparse::AccessTrace tb, ts, te;
    const sparse::TraceLayout lb =
        sparse::layoutBcsr3(k, 0x100000, x_base, y_base);
    sparse::traceBcsr3Rows(k, lb, 0, k.numBlockRows(), tb);
    const sparse::TraceLayout lsym =
        sparse::layoutSymBcsr3(sym, 0x100000, x_base, y_base);
    sparse::traceSymBcsr3Rows(sym, lsym, 0, sym.numBlockRows(), ts);
    const sparse::TraceLayout le =
        sparse::layoutSlicedEll3(ell, 0x100000, x_base, y_base);
    sparse::traceSlicedEll3(ell, le, te);

    const Footprint fb = footprintOf(tb, lb, vb, vb);
    const Footprint fs = footprintOf(ts, lsym, vb, vb);
    const Footprint fe = footprintOf(te, le, vb, vb);

    // Same matrix, same x/y byte sets — format changes the ORDER and
    // the matrix-array bytes, never which vector bytes are needed.
    EXPECT_EQ(fb.xBytes, fs.xBytes);
    EXPECT_EQ(fb.xBytes, fe.xBytes);
    EXPECT_EQ(fb.yBytes, fs.yBytes);
    EXPECT_EQ(fb.yBytes, fe.yBytes);
    EXPECT_EQ(fb.xBytes.size(), vb);
    EXPECT_EQ(fb.yBytes.size(), vb);

    // Each format streams its own value/index arrays exactly once per
    // multiply: touched matrix bytes == the arrays it stores.
    const auto matrixBytesOf = [](std::int64_t xadj_entries,
                                  std::int64_t cols, std::int64_t blocks,
                                  std::int64_t extra) {
        return static_cast<std::uint64_t>(8 * xadj_entries + 4 * cols +
                                          72 * blocks + extra);
    };
    EXPECT_EQ(fb.matrixBytes.size(),
              matrixBytesOf(k.numBlockRows() + 1, k.numBlocks(),
                            k.numBlocks(), 0));
    EXPECT_EQ(fs.matrixBytes.size(),
              matrixBytesOf(sym.numBlockRows() + 1, sym.storedBlocks(),
                            sym.storedBlocks(), 0));
    // Sliced-ELL: slice bases + lane map instead of xadj, padded slots
    // included in cols/values.
    EXPECT_EQ(fe.matrixBytes.size(),
              matrixBytesOf(ell.numSlices() + 1, ell.storedBlocks(),
                            ell.storedBlocks(),
                            8 * ell.numSlices() * ell.sliceHeight()));

    // The half-storage format carries roughly half the value bytes.
    EXPECT_LT(fs.matrixBytes.size(), fb.matrixBytes.size());
}

// -------------------------------------------------------- golden trace

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
    }
    return h;
}

void
describeTrace(std::ostringstream &out, const char *name,
              const sparse::AccessTrace &t)
{
    std::int64_t reads = 0;
    std::uint64_t hash = 14695981039346656037ULL;
    for (const sparse::MemRef &r : t.refs) {
        reads += r.write ? 0 : 1;
        hash = fnv1a(hash, r.address);
        hash = fnv1a(hash, (static_cast<std::uint64_t>(r.bytes) << 1) |
                               (r.write ? 1 : 0));
    }
    out << "  {\"format\": \"" << name << "\", \"refs\": " << t.refs.size()
        << ", \"reads\": " << reads
        << ", \"writes\": " << (static_cast<std::int64_t>(t.refs.size()) -
                                reads)
        << ", \"flops\": " << t.flops << ",\n   \"fnv64\": \"0x"
        << std::hex << hash << std::dec << "\",\n   \"head\": [";
    const std::size_t head =
        std::min<std::size_t>(t.refs.size(), 12);
    for (std::size_t i = 0; i < head; ++i) {
        const sparse::MemRef &r = t.refs[i];
        out << (i ? ", " : "") << "\"" << (r.write ? "W" : "R") << "0x"
            << std::hex << r.address << std::dec << ":" << r.bytes
            << "\"";
    }
    out << "]}";
}

// Golden fixed single-tet trace: the exact reference streams of all
// three formats over the one-element stiffness matrix.  Regenerate
// after an INTENTIONAL emitter change with:
//   QUAKE98_REGEN_GOLDEN=1 ./test_arch_cosim --gtest_filter='*Golden*'
TEST(GoldenTrace, SingleTetStreams)
{
    const mesh::TetMesh m = verify::InputGen::singleElementMesh();
    const mesh::UniformModel model(mesh::Aabb{{0, 0, 0}, {1, 1, 1}},
                                   1.0, 1.0);
    const sparse::Bcsr3Matrix k = sparse::assembleStiffness(m, model);
    const sparse::SymBcsr3Matrix sym =
        sparse::SymBcsr3Matrix::fromBcsr3(k);
    const sparse::SlicedEll3Matrix ell =
        sparse::SlicedEll3Matrix::fromBcsr3(k, 4);

    const std::uint64_t x_base = 0x400000;
    const std::uint64_t y_base = 0x500000;
    sparse::AccessTrace tb, ts, te;
    sparse::traceBcsr3Rows(
        k, sparse::layoutBcsr3(k, 0x100000, x_base, y_base), 0,
        k.numBlockRows(), tb);
    sparse::traceSymBcsr3Rows(
        sym, sparse::layoutSymBcsr3(sym, 0x100000, x_base, y_base), 0,
        sym.numBlockRows(), ts);
    sparse::traceSlicedEll3(
        ell, sparse::layoutSlicedEll3(ell, 0x100000, x_base, y_base), te);

    std::ostringstream out;
    out << "{\"traces\": [\n";
    describeTrace(out, "bcsr3", tb);
    out << ",\n";
    describeTrace(out, "sym", ts);
    out << ",\n";
    describeTrace(out, "ell", te);
    out << "\n]}\n";

    const std::string path =
        std::string(QUAKE98_GOLDEN_DIR) + "/arch_trace.json";
    if (std::getenv("QUAKE98_REGEN_GOLDEN") != nullptr) {
        std::ofstream file(path, std::ios::binary);
        ASSERT_TRUE(file.good()) << "cannot write " << path;
        file << out.str();
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream file(path, std::ios::binary);
    ASSERT_TRUE(file.good()) << "missing golden file " << path;
    std::ostringstream golden;
    golden << file.rdbuf();
    EXPECT_EQ(out.str(), golden.str())
        << "trace streams drifted from " << path
        << " (QUAKE98_REGEN_GOLDEN=1 regenerates after an intentional "
           "emitter change)";
}

} // namespace
