/**
 * @file
 * Tests for the CSR matrix: construction validation, products against a
 * dense reference, lookup, and symmetry checking.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "sparse/csr.h"

namespace
{

using quake::common::FatalError;
using quake::common::SplitMix64;
using quake::sparse::CsrMatrix;

/**
 *     | 2 0 1 |
 * A = | 0 3 0 |
 *     | 4 0 5 |
 */
CsrMatrix
sample3x3()
{
    return CsrMatrix(3, 3, {0, 2, 3, 5}, {0, 2, 1, 0, 2},
                     {2, 1, 3, 4, 5});
}

TEST(Csr, BasicAccessors)
{
    const CsrMatrix a = sample3x3();
    EXPECT_EQ(a.numRows(), 3);
    EXPECT_EQ(a.numCols(), 3);
    EXPECT_EQ(a.nnz(), 5);
    EXPECT_EQ(a.flopsPerMultiply(), 10);
}

TEST(Csr, MultiplyKnown)
{
    const CsrMatrix a = sample3x3();
    const std::vector<double> y = a.multiply({1, 2, 3});
    EXPECT_DOUBLE_EQ(y[0], 2 * 1 + 1 * 3);
    EXPECT_DOUBLE_EQ(y[1], 3 * 2);
    EXPECT_DOUBLE_EQ(y[2], 4 * 1 + 5 * 3);
}

TEST(Csr, MultiplyRejectsWrongSize)
{
    const CsrMatrix a = sample3x3();
    EXPECT_THROW(a.multiply({1, 2}), FatalError);
}

TEST(Csr, AtFindsStoredAndMissing)
{
    const CsrMatrix a = sample3x3();
    EXPECT_DOUBLE_EQ(a.at(0, 0), 2);
    EXPECT_DOUBLE_EQ(a.at(0, 1), 0); // not stored
    EXPECT_DOUBLE_EQ(a.at(2, 2), 5);
    EXPECT_THROW(a.at(5, 0), FatalError);
}

TEST(Csr, IsSymmetricDetects)
{
    // Symmetric example.
    const CsrMatrix sym(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {1, 7, 7, 3});
    EXPECT_TRUE(sym.isSymmetric());
    // Asymmetric values on a symmetric pattern.
    const CsrMatrix asym(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {1, 7, 6, 3});
    EXPECT_FALSE(asym.isSymmetric());
    EXPECT_TRUE(asym.isSymmetric(1.5)); // within tolerance
    // Non-square is never symmetric.
    const CsrMatrix rect(1, 2, {0, 1}, {1}, {5});
    EXPECT_FALSE(rect.isSymmetric());
}

TEST(Csr, AsymmetricPatternDetected)
{
    // Entry (0,1) stored, (1,0) absent (value 0 != 7).
    const CsrMatrix a(2, 2, {0, 1, 1}, {1}, {7});
    EXPECT_FALSE(a.isSymmetric());
}

TEST(CsrDeathTest, ValidateCatchesBadXadj)
{
    EXPECT_DEATH(CsrMatrix(2, 2, {0, 2, 1}, {0, 1}, {1, 2}), "xadj");
}

TEST(CsrDeathTest, ValidateCatchesColumnOutOfRange)
{
    EXPECT_DEATH(CsrMatrix(1, 2, {0, 1}, {5}, {1.0}), "out of range");
}

TEST(CsrDeathTest, ValidateCatchesUnsortedColumns)
{
    EXPECT_DEATH(CsrMatrix(1, 3, {0, 2}, {2, 0}, {1.0, 2.0}),
                 "strictly increasing");
}

TEST(CsrDeathTest, ValidateCatchesSizeMismatch)
{
    EXPECT_DEATH(CsrMatrix(1, 2, {0, 2}, {0, 1}, {1.0}), "size mismatch");
}

TEST(Csr, EmptyMatrixWorks)
{
    const CsrMatrix a(0, 0, {0}, {}, {});
    EXPECT_EQ(a.nnz(), 0);
    EXPECT_TRUE(a.multiply(std::vector<double>{}).empty());
}

TEST(Csr, RowOfZerosHandled)
{
    const CsrMatrix a(3, 3, {0, 1, 1, 2}, {0, 2}, {4, 9});
    const std::vector<double> y = a.multiply({1, 1, 1});
    EXPECT_DOUBLE_EQ(y[0], 4);
    EXPECT_DOUBLE_EQ(y[1], 0);
    EXPECT_DOUBLE_EQ(y[2], 9);
}

// Property: CSR multiply equals a dense reference on random matrices.
class CsrRandomProperty : public ::testing::TestWithParam<int>
{};

TEST_P(CsrRandomProperty, MatchesDenseReference)
{
    SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) + 17);
    const int n = 4 + static_cast<int>(rng.nextBounded(20));
    std::vector<std::vector<double>> dense(
        n, std::vector<double>(n, 0.0));

    std::vector<std::int64_t> xadj = {0};
    std::vector<std::int32_t> cols;
    std::vector<double> values;
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            if (rng.nextDouble() < 0.3) {
                const double v = rng.uniform(-5, 5);
                dense[r][c] = v;
                cols.push_back(c);
                values.push_back(v);
            }
        }
        xadj.push_back(static_cast<std::int64_t>(cols.size()));
    }
    const CsrMatrix a(n, n, xadj, cols, values);

    std::vector<double> x(n);
    for (double &v : x)
        v = rng.uniform(-1, 1);

    const std::vector<double> y = a.multiply(x);
    for (int r = 0; r < n; ++r) {
        double expect = 0;
        for (int c = 0; c < n; ++c)
            expect += dense[r][c] * x[c];
        EXPECT_NEAR(y[r], expect, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CsrRandomProperty, ::testing::Range(0, 20));

} // namespace
