/**
 * @file
 * Tests for the seismic source and the explicit central-difference time
 * stepper: wavelet shape, CFL estimation, free oscillation vs. a known
 * closed form, and energy behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "mesh/generator.h"
#include "quake/source.h"
#include "quake/time_stepper.h"
#include "sparse/assembly.h"

namespace
{

using namespace quake::sim;
using namespace quake::mesh;
using quake::common::FatalError;

// ---------------------------------------------------------------- source

TEST(Ricker, PeakAtDelayAndSymmetric)
{
    RickerWavelet w;
    w.peakFrequencyHz = 1.0;
    w.delaySeconds = 3.0;
    w.amplitude = 2.0;
    EXPECT_DOUBLE_EQ(w.value(3.0), 2.0); // maximum = amplitude
    EXPECT_NEAR(w.value(2.5), w.value(3.5), 1e-12);
    EXPECT_GT(w.value(3.0), w.value(3.2));
}

TEST(Ricker, DecaysToZero)
{
    RickerWavelet w;
    w.peakFrequencyHz = 1.0;
    w.delaySeconds = 2.0;
    EXPECT_NEAR(w.value(-10.0), 0.0, 1e-9);
    EXPECT_NEAR(w.value(20.0), 0.0, 1e-9);
}

TEST(Ricker, ZeroCrossingsAtKnownOffsets)
{
    // (1 - 2 a^2) = 0 at a = 1/sqrt(2), i.e. t - t0 = 1/(pi f sqrt(2)).
    RickerWavelet w;
    w.peakFrequencyHz = 0.5;
    w.delaySeconds = 0.0;
    const double t_zero = 1.0 / (M_PI * 0.5 * std::sqrt(2.0));
    EXPECT_NEAR(w.value(t_zero), 0.0, 1e-12);
}

TEST(Source, NearestNodeFindsClosest)
{
    TetMesh m;
    m.addNode({0, 0, 0});
    m.addNode({1, 0, 0});
    m.addNode({0, 2, 0});
    m.addNode({0, 0, 3});
    m.addTet(0, 1, 2, 3);
    EXPECT_EQ(nearestNode(m, {0.9, 0.1, 0.0}), 1);
    EXPECT_EQ(nearestNode(m, {0, 0, 2.9}), 3);
}

TEST(Source, ApplyAddsDirectionalForce)
{
    PointSource s;
    s.node = 1;
    s.direction = {0, 0, 1};
    s.wavelet.peakFrequencyHz = 1.0;
    s.wavelet.delaySeconds = 0.0;
    s.wavelet.amplitude = 4.0;

    std::vector<double> f(9, 0.0);
    s.apply(0.0, f); // wavelet peak
    EXPECT_DOUBLE_EQ(f[3 * 1 + 2], 4.0);
    EXPECT_DOUBLE_EQ(f[3 * 1 + 0], 0.0);
    EXPECT_DOUBLE_EQ(f[3 * 0 + 2], 0.0);
}

TEST(Source, MakePointSourceNormalizesDirection)
{
    TetMesh m;
    m.addNode({0, 0, 0});
    m.addNode({1, 0, 0});
    m.addNode({0, 1, 0});
    m.addNode({0, 0, 1});
    m.addTet(0, 1, 2, 3);
    const PointSource s =
        makePointSource(m, {0, 0, 0.9}, {0, 3, 4}, RickerWavelet{});
    EXPECT_EQ(s.node, 3);
    EXPECT_NEAR(s.direction.norm(), 1.0, 1e-12);
    EXPECT_THROW(makePointSource(m, {0, 0, 0}, {0, 0, 0}, RickerWavelet{}),
                 FatalError);
}

// ------------------------------------------------------------------ CFL

TEST(StableTimeStep, ShrinksWithElementSize)
{
    const UniformModel model(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
    const TetMesh coarse =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 2, 2, 2);
    const TetMesh fine =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 4, 4, 4);
    const double dt_coarse = stableTimeStep(coarse, model);
    const double dt_fine = stableTimeStep(fine, model);
    EXPECT_GT(dt_coarse, 0.0);
    EXPECT_NEAR(dt_fine, dt_coarse / 2.0, 0.1 * dt_coarse);
}

TEST(StableTimeStep, ShrinksWithWaveSpeed)
{
    const TetMesh m = buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 2, 2, 2);
    const UniformModel slow(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
    const UniformModel fast(Aabb{{0, 0, 0}, {1, 1, 1}}, 4.0, 1.0);
    EXPECT_NEAR(stableTimeStep(m, fast), stableTimeStep(m, slow) / 4.0,
                1e-9);
}

// --------------------------------------------------------------- stepper

/**
 * Single-DOF harmonic oscillator embedded in the stepper interface:
 * "K" is the 1x1-block scalar k on each diagonal DOF, M = m.  Central
 * differences reproduce cos(omega t) with second-order accuracy.
 */
TEST(Stepper, ReproducesHarmonicOscillator)
{
    const double k = 4.0, m = 1.0;
    const double dt = 1e-3;

    SmvpFn smvp = [k](const std::vector<double> &x,
                      std::vector<double> &y) {
        for (std::size_t i = 0; i < x.size(); ++i)
            y[i] = k * x[i];
    };
    ExplicitTimeStepper stepper(smvp, std::vector<double>(3, m), dt);

    // Initial displacement u(0) = u0 with zero velocity: seed both u and
    // u_prev.  The stepper starts from zero, so kick it with an initial
    // condition via one artificial state: instead, drive to steady state
    // is complex — here we exploit that u = 0 is a fixed point and test
    // the driven response below; for the free oscillation, use the
    // closed-form second state u(dt) ~ u0 cos(omega dt).
    // (Direct state injection: step once with a delta-function force.)
    // Simplest rigorous check: energy of the driven system stays finite
    // and matches the oscillator period.
    PointSource s;
    s.node = 0;
    s.direction = {1, 0, 0};
    s.wavelet.peakFrequencyHz = 0.3;
    s.wavelet.delaySeconds = 1.0;
    s.wavelet.amplitude = 1.0;
    stepper.addSource(s);

    double peak = 0.0;
    const int steps = static_cast<int>(6.0 / dt);
    for (int i = 0; i < steps; ++i) {
        stepper.step();
        peak = std::max(peak, std::fabs(stepper.displacement()[0]));
    }
    // Static response would be A/k = 0.25; dynamics near resonance can
    // roughly double it.  Bound the response physically.
    EXPECT_GT(peak, 0.05);
    EXPECT_LT(peak, 1.0);
    EXPECT_EQ(stepper.stepCount(), steps);
    EXPECT_NEAR(stepper.time(), 6.0, 1e-9);
}

TEST(Stepper, FreeOscillationMatchesClosedForm)
{
    // u'' = -omega^2 u, u(0) = 1, v(0) = 0  =>  u(t) = cos(omega t).
    const double k = 9.0, m = 1.0;
    const double omega = std::sqrt(k / m);
    const double t_end = 2.0;
    const double dt = 1e-3;

    SmvpFn smvp = [k](const std::vector<double> &x,
                      std::vector<double> &y) {
        for (std::size_t i = 0; i < x.size(); ++i)
            y[i] = k * x[i];
    };
    ExplicitTimeStepper stepper(smvp, std::vector<double>(3, m), dt);
    stepper.setInitialConditions({1.0, 0.0, 0.0}, {0.0, 0.0, 0.0});
    while (stepper.time() < t_end - dt / 2)
        stepper.step();
    EXPECT_NEAR(stepper.displacement()[0],
                std::cos(omega * stepper.time()), 1e-4);
}

TEST(Stepper, SecondOrderConvergence)
{
    // Halving dt must cut the phase error by ~4x (central differences
    // are second-order accurate).
    const double k = 9.0, m = 1.0;
    const double omega = std::sqrt(k / m);
    const double t_end = 2.0;

    auto error_at = [&](double dt) {
        SmvpFn smvp = [k](const std::vector<double> &x,
                          std::vector<double> &y) {
            for (std::size_t i = 0; i < x.size(); ++i)
                y[i] = k * x[i];
        };
        ExplicitTimeStepper stepper(smvp, std::vector<double>(3, m),
                                    dt);
        stepper.setInitialConditions({1.0, 0.0, 0.0},
                                     {0.0, 0.0, 0.0});
        while (stepper.time() < t_end - dt / 2)
            stepper.step();
        return std::fabs(stepper.displacement()[0] -
                         std::cos(omega * stepper.time()));
    };

    const double e1 = error_at(4e-3);
    const double e2 = error_at(2e-3);
    ASSERT_GT(e1, 0.0);
    EXPECT_NEAR(e1 / e2, 4.0, 0.6);
}

TEST(Stepper, InitialConditionsRejectedAfterStepping)
{
    SmvpFn noop = [](const std::vector<double> &x,
                     std::vector<double> &y) {
        for (std::size_t i = 0; i < x.size(); ++i)
            y[i] = 0.0 * x[i];
    };
    ExplicitTimeStepper stepper(noop, std::vector<double>(3, 1.0), 0.1);
    stepper.step();
    EXPECT_THROW(stepper.setInitialConditions({1, 0, 0}, {0, 0, 0}),
                 FatalError);
    // Wrong sizes rejected too.
    ExplicitTimeStepper fresh(noop, std::vector<double>(3, 1.0), 0.1);
    EXPECT_THROW(fresh.setInitialConditions({1, 0}, {0, 0, 0}),
                 FatalError);
}

TEST(Stepper, ZeroForceStaysAtRest)
{
    SmvpFn smvp = [](const std::vector<double> &x,
                     std::vector<double> &y) {
        for (std::size_t i = 0; i < x.size(); ++i)
            y[i] = 2.0 * x[i];
    };
    ExplicitTimeStepper stepper(smvp, std::vector<double>(6, 1.0), 0.01);
    for (int i = 0; i < 100; ++i)
        stepper.step();
    EXPECT_DOUBLE_EQ(stepper.peakDisplacement(), 0.0);
    EXPECT_DOUBLE_EQ(stepper.kineticEnergy(), 0.0);
}

TEST(Stepper, RejectsBadConstruction)
{
    SmvpFn noop = [](const std::vector<double> &,
                     std::vector<double> &) {};
    EXPECT_THROW(
        ExplicitTimeStepper(noop, std::vector<double>(3, 1.0), 0.0),
        FatalError);
    EXPECT_THROW(ExplicitTimeStepper(noop, {}, 0.1), FatalError);
    EXPECT_THROW(
        ExplicitTimeStepper(noop, std::vector<double>{1.0, -1.0, 1.0},
                            0.1),
        FatalError);
}

TEST(Stepper, RejectsSourceOutsideDofRange)
{
    SmvpFn noop = [](const std::vector<double> &,
                     std::vector<double> &) {};
    ExplicitTimeStepper stepper(noop, std::vector<double>(3, 1.0), 0.1);
    PointSource s;
    s.node = 5;
    EXPECT_THROW(stepper.addSource(s), FatalError);
}

TEST(Stepper, TracksSmvpAndTotalTime)
{
    SmvpFn smvp = [](const std::vector<double> &x,
                     std::vector<double> &y) {
        for (std::size_t i = 0; i < x.size(); ++i)
            y[i] = x[i];
    };
    ExplicitTimeStepper stepper(smvp, std::vector<double>(30, 1.0), 0.01);
    for (int i = 0; i < 50; ++i)
        stepper.step();
    EXPECT_GT(stepper.totalSeconds(), 0.0);
    EXPECT_GE(stepper.totalSeconds(), stepper.smvpSeconds());
}

TEST(Stepper, StableOnRealMeshAtCflStep)
{
    // A short run on a small FEM system must not blow up at the CFL-safe
    // step (and must move once the source fires).
    const Aabb box{{0, 0, 0}, {1, 1, 1}};
    const UniformModel model(box, 1.0, 1.0);
    const TetMesh m = buildKuhnLattice(box, 3, 3, 3);
    const auto k = quake::sparse::assembleStiffness(m, model);
    const auto mass = quake::sparse::assembleLumpedMass(m, model);
    const double dt = stableTimeStep(m, model);

    SmvpFn smvp = [&k](const std::vector<double> &x,
                       std::vector<double> &y) {
        k.multiply(x.data(), y.data());
    };
    ExplicitTimeStepper stepper(smvp, mass, dt);
    RickerWavelet w;
    w.peakFrequencyHz = 1.0;
    w.delaySeconds = 0.5;
    stepper.addSource(makePointSource(m, {0.5, 0.5, 0.5}, {0, 0, 1}, w));

    for (int i = 0; i < 400; ++i)
        stepper.step();
    const double peak = stepper.peakDisplacement();
    EXPECT_GT(peak, 0.0);
    EXPECT_TRUE(std::isfinite(peak));
    EXPECT_LT(peak, 1e3); // no instability blow-up
}

} // namespace
