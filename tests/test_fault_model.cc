/**
 * @file
 * Tests for the deterministic fault model: spec validation, hash-stream
 * determinism and order independence, empirical fault rates, and per-PE
 * condition assignment.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "parallel/fault_model.h"

namespace
{

using quake::common::FatalError;
using quake::parallel::FaultModel;
using quake::parallel::FaultSpec;

TEST(FaultSpec, DefaultIsBenign)
{
    const FaultSpec spec;
    EXPECT_FALSE(spec.any());
    EXPECT_NO_THROW(spec.validate());
}

TEST(FaultSpec, RejectsOutOfRangeParameters)
{
    FaultSpec spec;
    spec.dropProbability = -0.1;
    EXPECT_THROW(spec.validate(), FatalError);

    spec = FaultSpec{};
    spec.dropProbability = 1.5;
    EXPECT_THROW(spec.validate(), FatalError);

    spec = FaultSpec{};
    spec.duplicateProbability = 2.0;
    EXPECT_THROW(spec.validate(), FatalError);

    spec = FaultSpec{};
    spec.jitterMeanSeconds = -1e-6;
    EXPECT_THROW(spec.validate(), FatalError);

    spec = FaultSpec{};
    spec.stragglerDelaySeconds = -1.0;
    EXPECT_THROW(spec.validate(), FatalError);

    spec = FaultSpec{};
    spec.degradedBandwidthFactor = 0.5; // < 1 would speed links up
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(FaultSpec, AnyDetectsEachFaultClass)
{
    FaultSpec spec;
    spec.dropProbability = 0.1;
    EXPECT_TRUE(spec.any());

    spec = FaultSpec{};
    spec.jitterMeanSeconds = 1e-6;
    EXPECT_TRUE(spec.any());

    // A straggler probability with zero delay injects nothing.
    spec = FaultSpec{};
    spec.stragglerProbability = 1.0;
    EXPECT_FALSE(spec.any());
    spec.stragglerDelaySeconds = 1e-3;
    EXPECT_TRUE(spec.any());

    // A degraded-link probability with factor 1 injects nothing.
    spec = FaultSpec{};
    spec.degradedLinkProbability = 1.0;
    EXPECT_FALSE(spec.any());
    spec.degradedBandwidthFactor = 4.0;
    EXPECT_TRUE(spec.any());
}

TEST(FaultModel, BenignModelInjectsNothing)
{
    const FaultModel model;
    EXPECT_FALSE(model.enabled());
    EXPECT_FALSE(model.dropData(0, 1, 0));
    EXPECT_FALSE(model.duplicateData(0, 1, 0));
    EXPECT_DOUBLE_EQ(model.deliveryJitter(0, 1, 0, 0), 0.0);
    EXPECT_DOUBLE_EQ(model.startDelay(5), 0.0);
    EXPECT_DOUBLE_EQ(model.bandwidthFactor(5), 1.0);
}

TEST(FaultModel, DecisionsAreDeterministicAndOrderIndependent)
{
    FaultSpec spec;
    spec.seed = 1234;
    spec.dropProbability = 0.3;
    spec.jitterMeanSeconds = 2e-6;

    const FaultModel a(spec, 16);
    const FaultModel b(spec, 16);

    // Query b in reverse order: answers must match a's exactly.
    std::vector<bool> dropsA, dropsB;
    std::vector<double> jitterA, jitterB;
    for (int src = 0; src < 16; ++src)
        for (int attempt = 0; attempt < 4; ++attempt) {
            dropsA.push_back(a.dropData(src, (src + 1) % 16, attempt));
            jitterA.push_back(
                a.deliveryJitter(src, (src + 1) % 16, attempt, 0));
        }
    for (int src = 15; src >= 0; --src)
        for (int attempt = 3; attempt >= 0; --attempt) {
            dropsB.push_back(b.dropData(src, (src + 1) % 16, attempt));
            jitterB.push_back(
                b.deliveryJitter(src, (src + 1) % 16, attempt, 0));
        }
    std::reverse(dropsB.begin(), dropsB.end());
    std::reverse(jitterB.begin(), jitterB.end());
    EXPECT_EQ(dropsA, dropsB);
    EXPECT_EQ(jitterA, jitterB);
}

TEST(FaultModel, DifferentSeedsGiveDifferentFaults)
{
    FaultSpec spec;
    spec.dropProbability = 0.5;
    spec.seed = 1;
    const FaultModel a(spec, 8);
    spec.seed = 2;
    const FaultModel b(spec, 8);

    int differing = 0;
    for (int src = 0; src < 8; ++src)
        for (int dst = 0; dst < 8; ++dst)
            for (int attempt = 0; attempt < 8; ++attempt)
                if (src != dst && a.dropData(src, dst, attempt) !=
                                      b.dropData(src, dst, attempt))
                    ++differing;
    EXPECT_GT(differing, 0);
}

TEST(FaultModel, EmpiricalDropRateMatchesSpec)
{
    FaultSpec spec;
    spec.seed = 42;
    spec.dropProbability = 0.25;
    const FaultModel model(spec, 128);

    std::int64_t drops = 0, total = 0;
    for (int src = 0; src < 128; ++src)
        for (int dst = 0; dst < 128; ++dst) {
            if (src == dst)
                continue;
            for (int attempt = 0; attempt < 2; ++attempt) {
                ++total;
                drops += model.dropData(src, dst, attempt) ? 1 : 0;
            }
        }
    const double rate =
        static_cast<double>(drops) / static_cast<double>(total);
    EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultModel, JitterIsNonnegativeWithRoughlyTheRequestedMean)
{
    FaultSpec spec;
    spec.seed = 7;
    spec.jitterMeanSeconds = 5e-6;
    const FaultModel model(spec, 64);

    double sum = 0;
    int n = 0;
    for (int src = 0; src < 64; ++src)
        for (int attempt = 0; attempt < 16; ++attempt) {
            const double j =
                model.deliveryJitter(src, (src + 1) % 64, attempt, 0);
            EXPECT_GE(j, 0.0);
            sum += j;
            ++n;
        }
    EXPECT_NEAR(sum / n, 5e-6, 1e-6);
}

TEST(FaultModel, StragglerAssignmentFollowsProbability)
{
    FaultSpec spec;
    spec.seed = 99;
    spec.stragglerProbability = 0.5;
    spec.stragglerDelaySeconds = 1e-3;
    const FaultModel model(spec, 1000);

    EXPECT_GT(model.numStragglers(), 400);
    EXPECT_LT(model.numStragglers(), 600);
    for (int pe = 0; pe < 1000; ++pe) {
        const double d = model.startDelay(pe);
        EXPECT_TRUE(d == 0.0 || d == 1e-3);
    }
}

TEST(FaultModel, DegradedLinkAssignmentFollowsProbability)
{
    FaultSpec spec;
    spec.seed = 99;
    spec.degradedLinkProbability = 0.25;
    spec.degradedBandwidthFactor = 4.0;
    const FaultModel model(spec, 1000);

    EXPECT_GT(model.numDegradedLinks(), 180);
    EXPECT_LT(model.numDegradedLinks(), 320);
    for (int pe = 0; pe < 1000; ++pe) {
        const double f = model.bandwidthFactor(pe);
        EXPECT_TRUE(f == 1.0 || f == 4.0);
    }
}

TEST(FaultModel, OutOfRangePeQueriesAreRejected)
{
    FaultSpec spec;
    spec.stragglerProbability = 0.5;
    spec.stragglerDelaySeconds = 1.0;
    const FaultModel model(spec, 4);
    EXPECT_THROW(model.startDelay(4), FatalError);
    EXPECT_THROW(model.bandwidthFactor(-1), FatalError);
}

} // namespace
