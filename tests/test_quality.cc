/**
 * @file
 * Tests for the dihedral-angle and quality-report metrics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "mesh/generator.h"
#include "mesh/quality.h"

namespace
{

using namespace quake::mesh;
using quake::common::FatalError;

TEST(Dihedral, RegularTetAngles)
{
    // All six dihedral angles of the regular tetrahedron equal
    // arccos(1/3) ~ 70.53 degrees.
    const Vec3 a{0, 0, 0};
    const Vec3 b{1, 0, 0};
    const Vec3 c{0.5, std::sqrt(3.0) / 2.0, 0};
    const Vec3 d{0.5, std::sqrt(3.0) / 6.0, std::sqrt(6.0) / 3.0};
    const auto angles = tetDihedralAngles(a, b, c, d);
    const double expected = std::acos(1.0 / 3.0);
    for (double angle : angles)
        EXPECT_NEAR(angle, expected, 1e-9);
}

TEST(Dihedral, UnitCornerTetHasRightAngles)
{
    // The corner tet's three coordinate-plane faces meet pairwise at
    // 90 degrees along the axes.
    const auto angles = tetDihedralAngles(
        Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1});
    int right = 0;
    for (double angle : angles)
        if (std::fabs(angle - M_PI / 2.0) < 1e-9)
            ++right;
    EXPECT_EQ(right, 3);
}

TEST(Dihedral, SumIdentityHolds)
{
    // For any tet the six dihedrals satisfy sum > 2*pi (polyhedral
    // Gauss-Bonnet lower bound) and each lies in (0, pi).
    const GeneratedMesh g = generateSfMesh(SfClass::kSf20, 2.0);
    for (TetId t = 0; t < std::min<TetId>(200, g.mesh.numElements());
         ++t) {
        const Tet &e = g.mesh.tet(t);
        const auto angles = tetDihedralAngles(
            g.mesh.node(e.v[0]), g.mesh.node(e.v[1]),
            g.mesh.node(e.v[2]), g.mesh.node(e.v[3]));
        const double sum =
            std::accumulate(angles.begin(), angles.end(), 0.0);
        EXPECT_GT(sum, 2.0 * M_PI);
        for (double angle : angles) {
            EXPECT_GT(angle, 0.0);
            EXPECT_LT(angle, M_PI);
        }
    }
}

TEST(Dihedral, RejectsDegenerateFaces)
{
    EXPECT_THROW(tetDihedralAngles(Vec3{0, 0, 0}, Vec3{0, 0, 0},
                                   Vec3{0, 1, 0}, Vec3{0, 0, 1}),
                 FatalError);
}

TEST(QualityReport, HistogramCountsAllElements)
{
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 3, 3, 3);
    const QualityReport report = computeQualityReport(m, 10);
    std::int64_t total = 0;
    for (std::int64_t count : report.buckets)
        total += count;
    EXPECT_EQ(total, m.numElements());
    EXPECT_GT(report.minQuality, 0.0);
    EXPECT_GE(report.meanQuality, report.minQuality);
    EXPECT_GT(report.minDihedralRad, 0.0);
    EXPECT_LT(report.maxDihedralRad, M_PI);
}

TEST(QualityReport, GeneratedMeshHasSaneAngles)
{
    const GeneratedMesh g = generateSfMesh(SfClass::kSf20);
    const QualityReport report = computeQualityReport(g.mesh, 10);
    // Longest-edge bisection with Rivara propagation: no total
    // degeneracies — angles bounded away from 0 and pi.
    EXPECT_GT(report.minDihedralRad, 1.0 * M_PI / 180.0);
    EXPECT_LT(report.maxDihedralRad, 179.0 * M_PI / 180.0);
}

TEST(QualityReport, RejectsBadArguments)
{
    const TetMesh empty;
    EXPECT_THROW(computeQualityReport(empty), FatalError);
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 1, 1, 1);
    EXPECT_THROW(computeQualityReport(m, 0), FatalError);
}

} // namespace
