/**
 * @file
 * Tests for .part partition serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "mesh/generator.h"
#include "partition/geometric_bisection.h"
#include "partition/partition_io.h"

namespace
{

using namespace quake::partition;
using namespace quake::mesh;
using quake::common::FatalError;

Partition
samplePartition()
{
    Partition p;
    p.numParts = 3;
    p.elementPart = {0, 2, 1, 1, 0, 2};
    return p;
}

TEST(PartitionIo, StreamRoundTrip)
{
    const Partition p = samplePartition();
    std::ostringstream os;
    writePartition(p, os);
    std::istringstream is(os.str());
    const Partition back = readPartition(is);
    EXPECT_EQ(back.numParts, p.numParts);
    EXPECT_EQ(back.elementPart, p.elementPart);
}

TEST(PartitionIo, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "quake_io.part";
    const Partition p = samplePartition();
    writePartition(p, path);
    const Partition back = readPartition(path);
    EXPECT_EQ(back.elementPart, p.elementPart);
    std::remove(path.c_str());
}

TEST(PartitionIo, AcceptsOneBasedIndices)
{
    std::istringstream is("3 2\n1 0\n2 1\n3 0\n");
    const Partition p = readPartition(is);
    EXPECT_EQ(p.elementPart, (std::vector<PartId>{0, 1, 0}));
}

TEST(PartitionIo, SkipsComments)
{
    std::istringstream is("# comment\n2 2\n0 0\n# another\n1 1\n");
    EXPECT_EQ(readPartition(is).elementPart,
              (std::vector<PartId>{0, 1}));
}

TEST(PartitionIo, RejectsTruncated)
{
    std::istringstream is("3 2\n0 0\n");
    EXPECT_THROW(readPartition(is), FatalError);
}

TEST(PartitionIo, RejectsPartOutOfRange)
{
    std::istringstream is("2 2\n0 0\n1 5\n");
    EXPECT_THROW(readPartition(is), FatalError);
}

TEST(PartitionIo, RejectsNonConsecutiveIndices)
{
    std::istringstream is("2 2\n0 0\n5 1\n");
    EXPECT_THROW(readPartition(is), FatalError);
}

TEST(PartitionIo, RejectsMissingFile)
{
    EXPECT_THROW(readPartition("/no/such/file.part"), FatalError);
}

TEST(PartitionIo, MissingFileDiagnosticCarriesErrnoContext)
{
    // Regression: IO rejections must name the OS-level cause
    // ("No such file or directory (errno 2)"), not just the path.
    try {
        readPartition("/no/such/file.part");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("/no/such/file.part"), std::string::npos)
            << what;
        EXPECT_NE(what.find("(errno "), std::string::npos) << what;
    }
}

TEST(PartitionIo, UnwritablePathDiagnosticCarriesErrnoContext)
{
    try {
        writePartition(samplePartition(), "/no/such/dir/out.part");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("for writing"), std::string::npos) << what;
        EXPECT_NE(what.find("(errno "), std::string::npos) << what;
    }
}

TEST(PartitionIo, RejectsEmptyStream)
{
    std::istringstream is("");
    EXPECT_THROW(readPartition(is), FatalError);
}

TEST(PartitionIo, RejectsNonNumericHeader)
{
    std::istringstream is("three 2\n");
    EXPECT_THROW(readPartition(is), FatalError);
}

TEST(PartitionIo, RejectsNonNumericRecordToken)
{
    std::istringstream is("2 2\n0 0\n1 one\n");
    EXPECT_THROW(readPartition(is), FatalError);
}

TEST(PartitionIo, RejectsNegativeElementCount)
{
    std::istringstream is("-3 2\n");
    EXPECT_THROW(readPartition(is), FatalError);
}

TEST(PartitionIo, RejectsNonPositivePartCount)
{
    std::istringstream is("2 0\n0 0\n1 0\n");
    EXPECT_THROW(readPartition(is), FatalError);
}

TEST(PartitionIo, RejectsOverflowingDeclaredCounts)
{
    {
        std::istringstream is("999999999999 2\n");
        EXPECT_THROW(readPartition(is), FatalError);
    }
    {
        std::istringstream is("1 999999999999\n0 0\n");
        EXPECT_THROW(readPartition(is), FatalError);
    }
}

TEST(PartitionIo, RejectsNegativePartId)
{
    std::istringstream is("2 2\n0 0\n1 -1\n");
    EXPECT_THROW(readPartition(is), FatalError);
}

TEST(PartitionIo, DiagnosticsCarryFileAndLineContext)
{
    std::istringstream is("3 2\n0 0\n");
    try {
        readPartition(is);
        FAIL() << "expected FatalError";
    }
    catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("truncated"), std::string::npos) << what;
        EXPECT_NE(what.find("partition_io.cc"), std::string::npos)
            << what;
    }
}

TEST(PartitionIo, RealPartitionSurvives)
{
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 3, 3, 3);
    const Partition p = GeometricBisection().partition(m, 8);
    std::ostringstream os;
    writePartition(p, os);
    std::istringstream is(os.str());
    const Partition back = readPartition(is);
    EXPECT_EQ(back.elementPart, p.elementPart);
    back.validate(m);
}

} // namespace
