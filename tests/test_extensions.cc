/**
 * @file
 * Tests for the extension features: the full-duplex NI mode of the
 * phase simulator (Figure 5), Rayleigh damping in the time stepper,
 * and the threaded Spark kernel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "mesh/generator.h"
#include "parallel/phase_simulator.h"
#include "quake/simulation.h"
#include "spark/kernels.h"

namespace
{

using namespace quake;
using quake::common::FatalError;

// ------------------------------------------------------- full-duplex NI

core::SmvpCharacterization
handChar()
{
    core::SmvpCharacterization ch;
    ch.numPes = 2;
    ch.pes = {core::PeLoad{1000, 60, 2}, core::PeLoad{800, 100, 4}};
    return ch;
}

TEST(NiDuplex, HalvesCommTimeExactly)
{
    const parallel::MachineModel m{"t", 1e-9, 1e-6, 10e-9};
    const parallel::PhaseTimes half = parallel::simulateSmvp(
        handChar(), m, parallel::OverlapMode::kNone,
        parallel::NiMode::kHalfDuplex);
    const parallel::PhaseTimes full = parallel::simulateSmvp(
        handChar(), m, parallel::OverlapMode::kNone,
        parallel::NiMode::kFullDuplex);
    // The exchange schedule is symmetric, so concurrent in/out links
    // carry exactly half each.
    EXPECT_NEAR(full.tComm, half.tComm / 2.0, 1e-18);
    EXPECT_GT(full.efficiency, half.efficiency);
}

TEST(NiDuplex, ComposesWithOverlap)
{
    const parallel::MachineModel m{"t", 1e-9, 1e-6, 10e-9};
    const parallel::PhaseTimes t = parallel::simulateSmvp(
        handChar(), m, parallel::OverlapMode::kPerfect,
        parallel::NiMode::kFullDuplex);
    EXPECT_NEAR(t.tSmvp, std::max(t.tComp, t.tComm), 1e-18);
}

// ---------------------------------------------------------- damping

sim::SmvpFn
scalarSpring(double k)
{
    return [k](const std::vector<double> &x, std::vector<double> &y) {
        for (std::size_t i = 0; i < x.size(); ++i)
            y[i] = k * x[i];
    };
}

TEST(Damping, DecaysDrivenOscillation)
{
    // Same driven oscillator, with and without damping: the damped
    // late-time amplitude must be strictly smaller.
    auto run = [&](double a0) {
        sim::ExplicitTimeStepper stepper(scalarSpring(4.0),
                                         std::vector<double>(3, 1.0),
                                         1e-3);
        if (a0 > 0)
            stepper.setDamping(a0);
        sim::PointSource s;
        s.node = 0;
        s.direction = {1, 0, 0};
        s.wavelet.peakFrequencyHz = 0.4;
        s.wavelet.delaySeconds = 1.0;
        stepper.addSource(s);
        // Drive for 4 s, then ring down for 6 s.
        double late_peak = 0;
        for (int i = 0; i < 10'000; ++i) {
            stepper.step();
            if (i > 8'000)
                late_peak = std::max(
                    late_peak, std::fabs(stepper.displacement()[0]));
        }
        return late_peak;
    };
    const double undamped = run(0.0);
    const double damped = run(1.5);
    EXPECT_GT(undamped, 0.0);
    EXPECT_LT(damped, 0.25 * undamped);
}

TEST(Damping, ExponentialRateMatchesTheory)
{
    // Free ring-down of a mass-proportionally damped mode decays as
    // exp(-a0 t / 2).  Drive briefly, measure successive peaks.
    sim::ExplicitTimeStepper stepper(scalarSpring(400.0),
                                     std::vector<double>(3, 1.0), 1e-4);
    const double a0 = 0.8;
    stepper.setDamping(a0);
    sim::PointSource s;
    s.node = 0;
    s.direction = {1, 0, 0};
    s.wavelet.peakFrequencyHz = 3.0;
    s.wavelet.delaySeconds = 0.3;
    stepper.addSource(s);

    // Past t = 1.5 the source is dead; sample envelope over windows.
    double peak_a = 0, peak_b = 0;
    const double window = 2.0;
    while (stepper.time() < 1.5)
        stepper.step();
    while (stepper.time() < 1.5 + window) {
        stepper.step();
        peak_a = std::max(peak_a, std::fabs(stepper.displacement()[0]));
    }
    while (stepper.time() < 1.5 + 2 * window) {
        stepper.step();
        peak_b = std::max(peak_b, std::fabs(stepper.displacement()[0]));
    }
    ASSERT_GT(peak_a, 0.0);
    const double measured_rate = std::log(peak_a / peak_b) / window;
    EXPECT_NEAR(measured_rate, a0 / 2.0, 0.15 * a0);
}

TEST(Damping, RejectsBadCoefficients)
{
    sim::ExplicitTimeStepper stepper(scalarSpring(1.0),
                                     std::vector<double>(3, 1.0), 0.1);
    EXPECT_THROW(stepper.setDamping(-0.1), FatalError);
    EXPECT_THROW(stepper.setDamping(100.0), FatalError); // a0 dt >= 2
}

TEST(Damping, WiredThroughSimulationConfig)
{
    const mesh::TetMesh m = mesh::buildKuhnLattice(
        mesh::Aabb{{0, 0, 0}, {4, 4, 4}}, 3, 3, 3);
    const mesh::UniformModel model(mesh::Aabb{{0, 0, 0}, {4, 4, 4}},
                                   1.0, 1.0);
    sim::SimulationConfig config;
    config.durationSeconds = 1e9;
    config.maxSteps = 250;
    config.sampleInterval = 25;
    config.wavelet.peakFrequencyHz = 0.5;
    config.wavelet.delaySeconds = 0.2;

    const sim::SimulationReport undamped =
        sim::runSimulation(m, model, config);
    config.dampingA0 = 2.0;
    const sim::SimulationReport damped =
        sim::runSimulation(m, model, config);
    ASSERT_FALSE(undamped.samples.empty());
    EXPECT_LT(damped.samples.back().kineticEnergy,
              undamped.samples.back().kineticEnergy);
}

// ------------------------------------------------------ threaded kernel

TEST(ThreadedKernel, AgreesWithSequentialAcrossThreadCounts)
{
    const mesh::TetMesh m = mesh::buildKuhnLattice(
        mesh::Aabb{{0, 0, 0}, {1, 1, 1}}, 4, 4, 4);
    const mesh::UniformModel model(mesh::Aabb{{0, 0, 0}, {1, 1, 1}},
                                   1.0, 1.0);
    const spark::KernelSuite suite(m, model);

    std::vector<double> x(static_cast<std::size_t>(suite.dof()));
    common::SplitMix64 rng(5150);
    for (double &v : x)
        v = rng.uniform(-1, 1);
    std::vector<double> y_seq(x.size());
    sparse::smvpBcsr3(suite.bcsr(), x.data(), y_seq.data());

    for (int threads : {1, 2, 3, 4, 7}) {
        parallel::WorkerPool pool(threads);
        std::vector<double> y_par(x.size(), -1.0);
        spark::smvpThreaded(suite.bcsr(), x.data(), y_par.data(), pool);
        // Row partitioning makes the result bitwise identical.
        EXPECT_EQ(y_par, y_seq) << threads << " threads";
    }
}

TEST(ThreadedKernel, MoreThreadsThanRowsIsSafe)
{
    sparse::Bcsr3Matrix a(2, {0, 1, 2}, {0, 1});
    sparse::Block3 b{};
    b[0] = b[4] = b[8] = 2.0;
    a.addToBlock(0, 0, b);
    a.addToBlock(1, 1, b);
    std::vector<double> x(6, 1.0), y(6, 0.0);
    parallel::WorkerPool pool(64);
    spark::smvpThreaded(a, x.data(), y.data(), pool);
    for (int d : {0, 1, 2, 3, 4, 5})
        EXPECT_DOUBLE_EQ(y[d], 2.0);
}

TEST(ThreadedKernel, InTheSuiteDispatch)
{
    const mesh::TetMesh m = mesh::buildKuhnLattice(
        mesh::Aabb{{0, 0, 0}, {1, 1, 1}}, 3, 3, 3);
    const mesh::UniformModel model(mesh::Aabb{{0, 0, 0}, {1, 1, 1}},
                                   1.0, 1.0);
    spark::KernelSuite suite(m, model);
    suite.setThreads(2);
    EXPECT_EQ(suite.threads(), 2);

    std::vector<double> x(static_cast<std::size_t>(suite.dof()), 0.5);
    EXPECT_EQ(suite.run(spark::Kernel::kThreaded, x),
              suite.run(spark::Kernel::kBcsr3, x));
    EXPECT_THROW(suite.setThreads(-1), FatalError);

    const spark::KernelTiming t =
        suite.measure(spark::Kernel::kThreaded, 2);
    EXPECT_GT(t.mflops, 0.0);
}

TEST(ThreadedKernel, HasAName)
{
    EXPECT_EQ(spark::kernelName(spark::Kernel::kThreaded),
              "smv-threaded");
}

} // namespace
