/**
 * @file
 * Tests for the greedy boundary-refinement pass: the replica objective
 * strictly improves, balance holds, no part empties, and the decorator
 * composes with any base partitioner.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "mesh/generator.h"
#include "partition/baselines.h"
#include "partition/geometric_bisection.h"
#include "partition/partition_stats.h"
#include "parallel/comm_schedule.h"
#include "partition/refine_boundary.h"

namespace
{

using namespace quake::partition;
using namespace quake::mesh;
using quake::common::FatalError;

TetMesh
lattice(int n)
{
    return buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, n, n, n);
}

std::int64_t
totalReplicas(const TetMesh &m, const Partition &p)
{
    return computePartitionStats(m, p).totalReplicas;
}

TEST(RefineBoundary, NeverIncreasesReplicas)
{
    const TetMesh m = lattice(4);
    for (int parts : {2, 4, 8}) {
        Partition p = GeometricBisection().partition(m, parts);
        const std::int64_t before = totalReplicas(m, p);
        const BoundaryRefineReport report = refineBoundary(m, p);
        EXPECT_LE(report.replicasAfter, report.replicasBefore);
        EXPECT_EQ(report.replicasBefore, before);
        EXPECT_EQ(report.replicasAfter, totalReplicas(m, p));
    }
}

TEST(RefineBoundary, DramaticallyImprovesRandomPartition)
{
    const TetMesh m = lattice(4);
    Partition p = RandomPartitioner().partition(m, 4);
    const BoundaryRefineReport report = refineBoundary(m, p);
    EXPECT_GT(report.moves, 0);
    // Random partitions have near-total replication; even a greedy
    // pass must reclaim a large fraction.
    EXPECT_LT(report.replicasAfter, report.replicasBefore * 3 / 4);
}

TEST(RefineBoundary, RespectsBalanceCap)
{
    const TetMesh m = lattice(4);
    BoundaryRefineOptions options;
    options.maxImbalance = 1.05;
    Partition p = RandomPartitioner().partition(m, 8);
    refineBoundary(m, p, options);
    const PartitionStats stats = computePartitionStats(m, p);
    // size_cap = floor(1.05 * mean); allow the rounding margin.
    EXPECT_LE(stats.elementImbalance, 1.06);
}

TEST(RefineBoundary, NeverEmptiesAPart)
{
    const TetMesh m = lattice(3);
    // An adversarial start: part 0 holds a single element.
    Partition p;
    p.numParts = 2;
    p.elementPart.assign(static_cast<std::size_t>(m.numElements()), 1);
    p.elementPart[0] = 0;
    BoundaryRefineOptions options;
    options.maxImbalance = 10.0; // balance never blocks a move
    refineBoundary(m, p, options);
    p.validate(m); // would panic if part 0 were emptied
}

TEST(RefineBoundary, IdempotentAtFixpoint)
{
    const TetMesh m = lattice(4);
    Partition p = GeometricBisection().partition(m, 4);
    refineBoundary(m, p);
    const BoundaryRefineReport second = refineBoundary(m, p);
    EXPECT_EQ(second.moves, 0);
    EXPECT_EQ(second.passes, 1);
}

TEST(RefineBoundary, StopsAtPassCap)
{
    const TetMesh m = lattice(4);
    BoundaryRefineOptions options;
    options.maxPasses = 1;
    Partition p = RandomPartitioner().partition(m, 8);
    const BoundaryRefineReport report = refineBoundary(m, p, options);
    EXPECT_EQ(report.passes, 1);
}

TEST(RefineBoundary, RejectsBadImbalance)
{
    const TetMesh m = lattice(2);
    Partition p = GeometricBisection().partition(m, 2);
    BoundaryRefineOptions options;
    options.maxImbalance = 0.9;
    EXPECT_THROW(refineBoundary(m, p, options), FatalError);
}

TEST(RefinedPartitioner, ComposesAndImproves)
{
    const TetMesh m = lattice(4);
    const SlabPartitioner slab;
    const RefinedPartitioner refined(slab);
    EXPECT_EQ(refined.name(), "slab-x+refine");

    const Partition base = slab.partition(m, 8);
    const Partition polished = refined.partition(m, 8);
    EXPECT_LE(totalReplicas(m, polished), totalReplicas(m, base));
    polished.validate(m);
}

TEST(RefineBoundary, LowersCommunicationWords)
{
    // The replica objective is the global comm volume / 6, so C totals
    // must fall accordingly.
    const TetMesh m = lattice(4);
    const SlabPartitioner slab;
    Partition p = slab.partition(m, 8);
    const quake::parallel::CommSchedule before =
        quake::parallel::CommSchedule::build(m, p);
    refineBoundary(m, p);
    const quake::parallel::CommSchedule after =
        quake::parallel::CommSchedule::build(m, p);
    // The objective is replicas, not pairwise words, so allow a small
    // slack: individual moves can trade a replica for higher-multiplicity
    // pairings, but the aggregate must not regress materially.
    EXPECT_LE(after.totalWords(),
              before.totalWords() + before.totalWords() / 50);
}

} // namespace
