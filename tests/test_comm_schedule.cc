/**
 * @file
 * Tests for the communication schedule: hand-checked exchange lists,
 * symmetry, word/block accounting (maximal and fixed-size), message
 * sizes, and bisection volume.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "mesh/generator.h"
#include "parallel/comm_schedule.h"
#include "partition/baselines.h"
#include "partition/geometric_bisection.h"

namespace
{

using namespace quake::parallel;
using namespace quake::partition;
using namespace quake::mesh;

/** Two tets sharing face (1,2,3), one per part. */
struct TwoTetCase
{
    TetMesh mesh;
    Partition partition;

    TwoTetCase()
    {
        mesh.addNode({0, 0, 0});
        mesh.addNode({1, 0, 0});
        mesh.addNode({0, 1, 0});
        mesh.addNode({0, 0, 1});
        mesh.addNode({1, 1, 1});
        mesh.addTet(0, 1, 2, 3);
        mesh.addTet(1, 2, 4, 3);
        partition.numParts = 2;
        partition.elementPart = {0, 1};
    }
};

TEST(CommSchedule, TwoTetExchangeByHand)
{
    const TwoTetCase c;
    const CommSchedule s = CommSchedule::build(c.mesh, c.partition);
    ASSERT_EQ(s.numPes(), 2);

    // PE 0 exchanges the three face nodes {1, 2, 3} with PE 1.
    ASSERT_EQ(s.pe(0).exchanges.size(), 1u);
    const Exchange &ex = s.pe(0).exchanges[0];
    EXPECT_EQ(ex.peer, 1);
    EXPECT_EQ(ex.nodes, (std::vector<NodeId>{1, 2, 3}));
    EXPECT_EQ(ex.words(), 9); // 3 nodes x 3 DOF

    // C_i counts both directions: 2 x 9 = 18 words, 2 blocks.
    EXPECT_EQ(s.pe(0).words(), 18);
    EXPECT_EQ(s.pe(0).blocksMaximal(), 2);
    EXPECT_EQ(s.pe(1).words(), 18);
}

TEST(CommSchedule, FixedBlocksUseCeiling)
{
    const TwoTetCase c;
    const CommSchedule s = CommSchedule::build(c.mesh, c.partition);
    // One 9-word message each way; with 4-word blocks: ceil(9/4) = 3
    // blocks per direction, 6 total.
    EXPECT_EQ(s.pe(0).blocksFixed(4), 6);
    // With 1-word blocks, blocks == words.
    EXPECT_EQ(s.pe(0).blocksFixed(1), s.pe(0).words());
    // Oversized blocks degenerate to the maximal case.
    EXPECT_EQ(s.pe(0).blocksFixed(1000), s.pe(0).blocksMaximal());
}

TEST(CommSchedule, FixedBlocksRejectNonPositive)
{
    const TwoTetCase c;
    const CommSchedule s = CommSchedule::build(c.mesh, c.partition);
    EXPECT_THROW(s.pe(0).blocksFixed(0), quake::common::FatalError);
}

TEST(CommSchedule, MessageSizesBothDirections)
{
    const TwoTetCase c;
    const CommSchedule s = CommSchedule::build(c.mesh, c.partition);
    const std::vector<std::int64_t> sizes = s.messageSizes();
    ASSERT_EQ(sizes.size(), 2u); // one directed message each way
    EXPECT_EQ(sizes[0], 9);
    EXPECT_EQ(sizes[1], 9);
    EXPECT_EQ(s.totalWords(), 18);
}

TEST(CommSchedule, BisectionCountsCrossPairs)
{
    const TwoTetCase c;
    const CommSchedule s = CommSchedule::build(c.mesh, c.partition);
    // PEs {0} | {1}: the single pair crosses; both directions counted.
    EXPECT_EQ(s.bisectionWords(), 18);
}

TEST(CommSchedule, InteriorOnlyPartitionHasNoComm)
{
    // One part: nothing is shared.
    TwoTetCase c;
    c.partition.numParts = 1;
    c.partition.elementPart = {0, 0};
    const CommSchedule s = CommSchedule::build(c.mesh, c.partition);
    EXPECT_EQ(s.pe(0).words(), 0);
    EXPECT_EQ(s.totalWords(), 0);
    EXPECT_EQ(s.bisectionWords(), 0);
}

TEST(CommSchedule, ThreeWaySharedNodeAllPairs)
{
    // Three tets around the shared edge (0, 1): every pair of parts
    // exchanges at least nodes 0 and 1.
    TetMesh m;
    m.addNode({0, 0, 0});  // 0 (shared by all)
    m.addNode({0, 0, 1});  // 1 (shared by all)
    m.addNode({1, 0, 0});  // 2
    m.addNode({0.5, 1, 0}); // 3
    m.addNode({-1, 0.5, 0}); // 4
    m.addTet(0, 1, 2, 3);
    m.addTet(0, 1, 3, 4);
    m.addTet(0, 1, 4, 2);

    Partition p;
    p.numParts = 3;
    p.elementPart = {0, 1, 2};
    const CommSchedule s = CommSchedule::build(m, p);

    for (int pe = 0; pe < 3; ++pe) {
        EXPECT_EQ(s.pe(pe).exchanges.size(), 2u);
        for (const Exchange &ex : s.pe(pe).exchanges) {
            EXPECT_GE(ex.nodes.size(), 2u);
            EXPECT_TRUE(std::find(ex.nodes.begin(), ex.nodes.end(), 0) !=
                        ex.nodes.end());
        }
    }
}

class LatticeScheduleTest : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        mesh_ = buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 5, 5, 5);
        const GeometricBisection partitioner;
        partition_ = partitioner.partition(mesh_, GetParam());
        schedule_ = CommSchedule::build(mesh_, partition_);
    }

    TetMesh mesh_;
    Partition partition_;
    CommSchedule schedule_;
};

TEST_P(LatticeScheduleTest, WordsDivisibleBySix)
{
    // Paper: C values are even (matched messages) and divisible by 3
    // (three DOFs) — so divisible by 6.
    for (int pe = 0; pe < schedule_.numPes(); ++pe)
        EXPECT_EQ(schedule_.pe(pe).words() % 6, 0);
}

TEST_P(LatticeScheduleTest, BlocksEven)
{
    for (int pe = 0; pe < schedule_.numPes(); ++pe)
        EXPECT_EQ(schedule_.pe(pe).blocksMaximal() % 2, 0);
}

TEST_P(LatticeScheduleTest, ValidatePasses)
{
    EXPECT_NO_THROW(schedule_.validate());
}

TEST_P(LatticeScheduleTest, TotalWordsMatchSumOfMessages)
{
    std::int64_t sum = 0;
    for (std::int64_t m : schedule_.messageSizes())
        sum += m;
    EXPECT_EQ(sum, schedule_.totalWords());

    std::int64_t per_pe_sum = 0;
    for (int pe = 0; pe < schedule_.numPes(); ++pe)
        per_pe_sum += schedule_.pe(pe).words();
    EXPECT_EQ(per_pe_sum, 2 * schedule_.totalWords());
}

TEST_P(LatticeScheduleTest, BisectionBoundedByTotal)
{
    EXPECT_LE(schedule_.bisectionWords(), 2 * schedule_.totalWords());
    if (schedule_.numPes() > 1) {
        EXPECT_GT(schedule_.bisectionWords(), 0);
    }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, LatticeScheduleTest,
                         ::testing::Values(2, 3, 4, 8, 16));

} // namespace
