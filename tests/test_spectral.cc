/**
 * @file
 * Tests for recursive spectral bisection: the element-dual graph, the
 * Fiedler-vector split's spatial coherence, balance, determinism, and
 * competitiveness with geometric bisection (the paper's §2.2 framing).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "mesh/generator.h"
#include "partition/geometric_bisection.h"
#include "partition/partition_stats.h"
#include "partition/spectral.h"

namespace
{

using namespace quake::partition;
using namespace quake::mesh;
using quake::common::FatalError;

TetMesh
lattice(int nx, int ny, int nz, double sx = 1, double sy = 1,
        double sz = 1)
{
    return buildKuhnLattice(Aabb{{0, 0, 0}, {sx, sy, sz}}, nx, ny, nz);
}

// ------------------------------------------------------------ dual graph

TEST(DualGraph, SingleTetHasNoEdges)
{
    TetMesh m;
    m.addNode({0, 0, 0});
    m.addNode({1, 0, 0});
    m.addNode({0, 1, 0});
    m.addNode({0, 0, 1});
    m.addTet(0, 1, 2, 3);
    const DualGraph g = buildDualGraph(m);
    EXPECT_EQ(g.numVertices(), 1);
    EXPECT_TRUE(g.adjncy.empty());
}

TEST(DualGraph, TwoTetsShareOneFace)
{
    TetMesh m;
    m.addNode({0, 0, 0});
    m.addNode({1, 0, 0});
    m.addNode({0, 1, 0});
    m.addNode({0, 0, 1});
    m.addNode({1, 1, 1});
    m.addTet(0, 1, 2, 3);
    m.addTet(1, 2, 4, 3);
    const DualGraph g = buildDualGraph(m);
    EXPECT_EQ(g.numVertices(), 2);
    ASSERT_EQ(g.adjncy.size(), 2u);
    EXPECT_EQ(g.adjncy[g.xadj[0]], 1);
    EXPECT_EQ(g.adjncy[g.xadj[1]], 0);
}

TEST(DualGraph, DegreesBoundedByFour)
{
    const TetMesh m = lattice(3, 3, 3);
    const DualGraph g = buildDualGraph(m);
    EXPECT_EQ(g.numVertices(), m.numElements());
    for (std::int64_t v = 0; v < g.numVertices(); ++v) {
        const std::int64_t degree = g.xadj[v + 1] - g.xadj[v];
        EXPECT_GE(degree, 1);
        EXPECT_LE(degree, 4);
    }
}

TEST(DualGraph, SymmetricAdjacency)
{
    const TetMesh m = lattice(2, 2, 2);
    const DualGraph g = buildDualGraph(m);
    for (std::int64_t v = 0; v < g.numVertices(); ++v) {
        for (std::int64_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
            const std::int32_t peer = g.adjncy[k];
            bool mirrored = false;
            for (std::int64_t j = g.xadj[peer]; j < g.xadj[peer + 1];
                 ++j)
                mirrored |= g.adjncy[j] == v;
            EXPECT_TRUE(mirrored);
        }
    }
}

// -------------------------------------------------------------- spectral

class SpectralPartCount : public ::testing::TestWithParam<int>
{};

TEST_P(SpectralPartCount, BalancedAndValid)
{
    const TetMesh m = lattice(4, 4, 4);
    const Partition p = SpectralBisection().partition(m, GetParam());
    const auto sizes = p.partSizes();
    EXPECT_LE(*std::max_element(sizes.begin(), sizes.end()) -
                  *std::min_element(sizes.begin(), sizes.end()),
              2);
}

INSTANTIATE_TEST_SUITE_P(Counts, SpectralPartCount,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Spectral, Deterministic)
{
    const TetMesh m = lattice(3, 3, 3);
    const SpectralBisection partitioner;
    EXPECT_EQ(partitioner.partition(m, 8).elementPart,
              partitioner.partition(m, 8).elementPart);
}

TEST(Spectral, FiedlerCutsAcrossLongAxis)
{
    // On a 4:1:1 bar, the minimal cut separates the two long halves;
    // the Fiedler vector is monotone along the bar, so a 2-part split
    // must produce spatially coherent halves with a small interface.
    const TetMesh m = lattice(12, 3, 3, 4, 1, 1);
    const Partition p = SpectralBisection().partition(m, 2);

    double mean_x0 = 0, mean_x1 = 0;
    std::int64_t n0 = 0, n1 = 0;
    for (TetId t = 0; t < m.numElements(); ++t) {
        const double x = m.tetCentroidOf(t).x;
        if (p.elementPart[t] == 0) {
            mean_x0 += x;
            ++n0;
        } else {
            mean_x1 += x;
            ++n1;
        }
    }
    mean_x0 /= static_cast<double>(n0);
    mean_x1 /= static_cast<double>(n1);
    EXPECT_GT(std::fabs(mean_x0 - mean_x1), 1.2); // halves ~2 apart

    // The interface must be close to one cross-section's worth.
    const PartitionStats stats = computePartitionStats(m, p);
    EXPECT_LT(stats.sharedNodes, 2 * 4 * 4 * 3);
}

TEST(Spectral, CompetitiveWithGeometricOnCut)
{
    // §2.2: the geometric partitioner is "competitive with other
    // modern partitioning algorithms" — verify both directions: the
    // two methods' shared-node counts are within 2x of each other.
    const TetMesh m = lattice(5, 5, 5);
    for (int parts : {2, 4, 8}) {
        const auto spectral = computePartitionStats(
            m, SpectralBisection().partition(m, parts));
        const auto geometric = computePartitionStats(
            m, GeometricBisection().partition(m, parts));
        EXPECT_LT(spectral.sharedNodes, 2 * geometric.sharedNodes);
        EXPECT_LT(geometric.sharedNodes, 2 * spectral.sharedNodes);
    }
}

TEST(Spectral, WorksOnGradedMesh)
{
    const GeneratedMesh g = generateSfMesh(SfClass::kSf20, 1.6);
    const Partition p = SpectralBisection().partition(g.mesh, 4);
    const PartitionStats stats = computePartitionStats(g.mesh, p);
    EXPECT_LT(stats.elementImbalance, 1.01);
    EXPECT_GT(stats.sharedNodes, 0);
    EXPECT_LT(stats.sharedNodes, g.mesh.numNodes() / 3);
}

TEST(Spectral, RejectsTooManyParts)
{
    TetMesh m;
    m.addNode({0, 0, 0});
    m.addNode({1, 0, 0});
    m.addNode({0, 1, 0});
    m.addNode({0, 0, 1});
    m.addTet(0, 1, 2, 3);
    EXPECT_THROW(SpectralBisection().partition(m, 2), FatalError);
}

TEST(Spectral, Name)
{
    EXPECT_EQ(SpectralBisection().name(), "spectral");
}

} // namespace
