/**
 * @file
 * Tests for the discrete-event exchange simulator: hand-checked
 * two/three-PE timelines, consistency bounds against the closed-form
 * model (full duplex <= Eq.(2) <= beta * event-sim half-duplex), wire
 * latency, and determinism.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/characterization.h"
#include "mesh/generator.h"
#include "parallel/characterize.h"
#include "parallel/event_sim.h"
#include "parallel/phase_simulator.h"
#include "partition/baselines.h"
#include "partition/geometric_bisection.h"

namespace
{

using namespace quake::parallel;
using namespace quake::mesh;
using namespace quake::partition;

/** Two tets sharing a face, one per PE: one 9-word exchange each way. */
struct PairCase
{
    TetMesh mesh;
    Partition partition;
    CommSchedule schedule;

    PairCase()
    {
        mesh.addNode({0, 0, 0});
        mesh.addNode({1, 0, 0});
        mesh.addNode({0, 1, 0});
        mesh.addNode({0, 0, 1});
        mesh.addNode({1, 1, 1});
        mesh.addTet(0, 1, 2, 3);
        mesh.addTet(1, 2, 4, 3);
        partition.numParts = 2;
        partition.elementPart = {0, 1};
        schedule = CommSchedule::build(mesh, partition);
    }
};

MachineModel
unitMachine()
{
    // tl = 1 us, tw = 100 ns: one 9-word message takes 1.9 us.
    return MachineModel{"unit", 1e-9, 1e-6, 100e-9};
}

TEST(EventSim, TwoPeFullDuplexByHand)
{
    const PairCase c;
    const EventSimResult r =
        simulateExchange(c.schedule, unitMachine(),
                         EventSimOptions{0.0, true});
    // Each PE: send finishes at 1.9 us; the peer's message arrives at
    // 1.9 us and is received by 3.8 us (in-link idle 0..1.9).
    EXPECT_NEAR(r.tComm, 3.8e-6, 1e-12);
    EXPECT_NEAR(r.peFinishTime[0], 3.8e-6, 1e-12);
    EXPECT_NEAR(r.peFinishTime[1], 3.8e-6, 1e-12);
    // In-link idle: 1.9 us on each PE.
    EXPECT_NEAR(r.totalIdle, 2 * 1.9e-6, 1e-12);
}

TEST(EventSim, TwoPeHalfDuplexByHand)
{
    const PairCase c;
    const EventSimResult r =
        simulateExchange(c.schedule, unitMachine(),
                         EventSimOptions{0.0, false});
    // Send 0..1.9, then receive 1.9..3.8 on the shared link: the same
    // finish as duplex here because the send fully precedes the
    // arrival.
    EXPECT_NEAR(r.tComm, 3.8e-6, 1e-12);
}

TEST(EventSim, WireLatencyShiftsArrivals)
{
    const PairCase c;
    const double wire = 5e-6;
    const EventSimResult r = simulateExchange(
        c.schedule, unitMachine(), EventSimOptions{wire, true});
    // Arrival at 1.9 + 5 us; reception done 1.9 us later.
    EXPECT_NEAR(r.tComm, 1.9e-6 + wire + 1.9e-6, 1e-12);
}

TEST(EventSim, Deterministic)
{
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 4, 4, 4);
    const CommSchedule s = CommSchedule::build(
        m, GeometricBisection().partition(m, 8));
    const EventSimResult a = simulateExchange(s, crayT3e());
    const EventSimResult b = simulateExchange(s, crayT3e());
    EXPECT_EQ(a.peFinishTime, b.peFinishTime);
    EXPECT_EQ(a.criticalPe, b.criticalPe);
}

TEST(EventSim, NoCommFinishesAtZero)
{
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 2, 2, 2);
    Partition p;
    p.numParts = 1;
    p.elementPart.assign(static_cast<std::size_t>(m.numElements()), 0);
    const CommSchedule s = CommSchedule::build(m, p);
    const EventSimResult r = simulateExchange(s, crayT3e());
    EXPECT_DOUBLE_EQ(r.tComm, 0.0);
}

class EventSimLattice : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        mesh_ = buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 5, 5, 5);
        const GeometricBisection partitioner;
        partition_ = partitioner.partition(mesh_, GetParam());
        schedule_ = CommSchedule::build(mesh_, partition_);
        problem_ = distributeTopology(mesh_, partition_);
        ch_ = characterize(problem_, "event-sim");
    }

    TetMesh mesh_;
    Partition partition_;
    CommSchedule schedule_;
    DistributedProblem problem_;
    quake::core::SmvpCharacterization ch_;
};

TEST_P(EventSimLattice, HalfDuplexBoundedByClosedFormModel)
{
    // The closed-form per-PE bound B_i*tl + C_i*tw counts each PE's
    // total link work; a half-duplex event simulation adds only *idle*
    // (waiting) on top of the busiest PE's work, and the paper's model
    // (max B, max C possibly from different PEs) bounds the work term.
    for (const MachineModel &m :
         {crayT3e(), MachineModel{"lat", 1e-9, 1e-4, 1e-10},
          MachineModel{"bw", 1e-9, 1e-8, 1e-6}}) {
        const EventSimResult sim = simulateExchange(
            schedule_, m, EventSimOptions{0.0, false});
        const PhaseTimes model = simulateSmvp(ch_, m);
        // Work conservation: the sim can exceed pure work only through
        // waiting, and waiting is bounded by the slowest peer's work.
        EXPECT_GE(sim.tComm, model.tComm / 2 - 1e-15);
        EXPECT_LE(sim.tComm, 2.5 * model.tComm) << m.name;
    }
}

TEST_P(EventSimLattice, FullDuplexBeatsHalfDuplex)
{
    const EventSimResult full = simulateExchange(
        schedule_, crayT3e(), EventSimOptions{0.0, true});
    const EventSimResult half = simulateExchange(
        schedule_, crayT3e(), EventSimOptions{0.0, false});
    EXPECT_LE(full.tComm, half.tComm + 1e-15);
}

TEST_P(EventSimLattice, EveryPeFinishes)
{
    const EventSimResult r = simulateExchange(schedule_, crayT3e());
    for (int pe = 0; pe < schedule_.numPes(); ++pe) {
        if (!schedule_.pe(pe).exchanges.empty()) {
            EXPECT_GT(r.peFinishTime[pe], 0.0);
        }
    }
    EXPECT_GE(r.totalIdle, 0.0);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, EventSimLattice,
                         ::testing::Values(2, 4, 8, 16));

TEST(EventSimEdgeCases, EmptyScheduleIsTrivial)
{
    const CommSchedule s;
    const EventSimResult r = simulateExchange(s, crayT3e());
    EXPECT_DOUBLE_EQ(r.tComm, 0.0);
    EXPECT_DOUBLE_EQ(r.totalIdle, 0.0);
    EXPECT_TRUE(r.peFinishTime.empty());
    EXPECT_EQ(r.messagesSent, 0);
}

TEST(EventSimEdgeCases, SinglePeNeverCommunicates)
{
    const CommSchedule s = CommSchedule::fromPeSchedules({PeSchedule{}});
    const EventSimResult r = simulateExchange(s, crayT3e());
    EXPECT_DOUBLE_EQ(r.tComm, 0.0);
    ASSERT_EQ(r.peFinishTime.size(), 1u);
    EXPECT_DOUBLE_EQ(r.peFinishTime[0], 0.0);
}

TEST(EventSimEdgeCases, ZeroWordMessageCostsOneBlockLatency)
{
    // An exchange with an empty node set is a legal zero-word message:
    // it still occupies the link for one block latency tl each way.
    PeSchedule pe0, pe1;
    Exchange fwd, bwd;
    fwd.peer = 1;
    bwd.peer = 0;
    pe0.exchanges.push_back(fwd);
    pe1.exchanges.push_back(bwd);
    const CommSchedule s = CommSchedule::fromPeSchedules({pe0, pe1});
    EXPECT_EQ(s.totalWords(), 0);

    const EventSimResult r =
        simulateExchange(s, unitMachine(), EventSimOptions{0.0, true});
    // Send 0..tl, arrival at tl, reception tl..2tl.
    EXPECT_NEAR(r.tComm, 2e-6, 1e-12);
    EXPECT_EQ(r.messagesSent, 2);
    EXPECT_EQ(r.messagesDelivered, 2);
}

TEST(EventSimEdgeCases, HalfDuplexNeverBeatsFullDuplexOnRandomSchedules)
{
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 4, 4, 4);
    for (std::uint64_t seed : {1ULL, 17ULL, 404ULL, 90210ULL}) {
        const RandomPartitioner partitioner(seed);
        const CommSchedule s =
            CommSchedule::build(m, partitioner.partition(m, 8));
        const EventSimResult full = simulateExchange(
            s, crayT3e(), EventSimOptions{0.0, true});
        const EventSimResult half = simulateExchange(
            s, crayT3e(), EventSimOptions{0.0, false});
        EXPECT_LE(full.tComm, half.tComm + 1e-15) << "seed " << seed;
    }
}

} // namespace
