/**
 * @file
 * Tests for the one-call Section 4 analysis report.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "core/report.h"

namespace
{

using namespace quake::core;
using quake::common::FatalError;

SmvpCharacterization
sampleChar()
{
    SmvpCharacterization ch;
    ch.name = "sample/4";
    ch.numPes = 4;
    ch.pes.assign(4, PeLoad{838'224, 16'260, 50});
    ch.messageSizes.assign(100, 459);
    ch.bisectionWords = 10'000;
    return ch;
}

TEST(Analyze, GridOrderAndSize)
{
    AnalysisRequest request;
    request.mflopsGrid = {100.0, 200.0};
    request.efficiencyGrid = {0.5, 0.9};
    const AnalysisReport report = analyze(sampleChar(), request);
    ASSERT_EQ(report.entries.size(), 4u);
    EXPECT_DOUBLE_EQ(report.entries[0].mflops, 100.0);
    EXPECT_DOUBLE_EQ(report.entries[0].efficiency, 0.5);
    EXPECT_DOUBLE_EQ(report.entries[3].mflops, 200.0);
    EXPECT_DOUBLE_EQ(report.entries[3].efficiency, 0.9);
    EXPECT_EQ(report.name, "sample/4");
}

TEST(Analyze, EntriesMatchPrimitives)
{
    const AnalysisReport report = analyze(sampleChar());
    const SmvpShape shape =
        SmvpShape::fromSummary(report.summary);
    for (const AnalysisEntry &entry : report.entries) {
        const double tf = tfFromMflops(entry.mflops);
        const double tc = requiredTc(shape, entry.efficiency, tf);
        EXPECT_NEAR(entry.sustainedBandwidthBytes, bandwidthFromTc(tc),
                    1e-3);
        EXPECT_NEAR(entry.infiniteBurstLatency,
                    latencyBudget(shape, tc, 0.0), 1e-15);
        EXPECT_NEAR(entry.maximalBlocks.latency,
                    halfBandwidthPoint(shape, tc).latency, 1e-15);
        EXPECT_GT(entry.bisectionBandwidthBytes, 0.0);
        // Four-word blocks admit far less latency than maximal blocks.
        EXPECT_LT(entry.fixedBlocks.latency,
                  entry.maximalBlocks.latency);
    }
}

TEST(Analyze, RejectsBadRequest)
{
    AnalysisRequest request;
    request.mflopsGrid = {};
    EXPECT_THROW(analyze(sampleChar(), request), FatalError);
    request = AnalysisRequest{};
    request.fixedBlockWords = 0;
    EXPECT_THROW(analyze(sampleChar(), request), FatalError);
}

TEST(PrintReport, ContainsKeyNumbers)
{
    std::ostringstream os;
    printReport(analyze(sampleChar()), os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sample/4"), std::string::npos);
    EXPECT_NE(text.find("838,224"), std::string::npos);
    EXPECT_NE(text.find("16,260"), std::string::npos);
    // The 200-MFLOPS / E=0.9 headline: ~279 MB/s.
    EXPECT_NE(text.find("279.3 MB/s"), std::string::npos);
}

} // namespace
