/**
 * @file
 * Tests for the BSP phase simulator and the empirical validation of the
 * paper's §3.4 model-accuracy bound.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "mesh/generator.h"
#include "parallel/characterize.h"
#include "parallel/phase_simulator.h"
#include "partition/geometric_bisection.h"

namespace
{

using namespace quake::core;
using namespace quake::parallel;

SmvpCharacterization
handChar()
{
    SmvpCharacterization ch;
    ch.name = "hand";
    ch.numPes = 2;
    ch.pes = {PeLoad{1000, 60, 2}, PeLoad{800, 100, 4}};
    return ch;
}

MachineModel
simpleMachine()
{
    // tf = 1ns, tl = 1us, tw = 10ns.
    return MachineModel{"unit-test", 1e-9, 1e-6, 10e-9};
}

TEST(PhaseSimulator, ComputesPerPeMaxima)
{
    const PhaseTimes t = simulateSmvp(handChar(), simpleMachine());
    // tComp = max(1000, 800) * 1ns = 1us.
    EXPECT_NEAR(t.tComp, 1e-6, 1e-15);
    // PE0 comm: 2*1us + 60*10ns = 2.6us; PE1: 4*1us + 100*10ns = 5us.
    EXPECT_NEAR(t.tComm, 5e-6, 1e-15);
    EXPECT_NEAR(t.tSmvp, 6e-6, 1e-15);
    EXPECT_NEAR(t.efficiency, 1.0 / 6.0, 1e-12);
}

TEST(PhaseSimulator, OverlapTakesMax)
{
    const PhaseTimes t =
        simulateSmvp(handChar(), simpleMachine(), OverlapMode::kPerfect);
    EXPECT_NEAR(t.tSmvp, 5e-6, 1e-15);
    EXPECT_NEAR(t.efficiency, 1e-6 / 5e-6, 1e-12);
}

TEST(PhaseSimulator, OverlapNeverSlower)
{
    const PhaseTimes none = simulateSmvp(handChar(), simpleMachine());
    const PhaseTimes overlap =
        simulateSmvp(handChar(), simpleMachine(), OverlapMode::kPerfect);
    EXPECT_LE(overlap.tSmvp, none.tSmvp);
    // Overlap can at best halve the time (paper footnote 1's rationale
    // for the conservative non-overlapped model).
    EXPECT_GE(overlap.tSmvp, none.tSmvp / 2.0);
}

TEST(PhaseSimulator, ZeroCommMeansFullEfficiency)
{
    SmvpCharacterization ch;
    ch.numPes = 1;
    ch.pes = {PeLoad{500, 0, 0}};
    const PhaseTimes t = simulateSmvp(ch, simpleMachine());
    EXPECT_DOUBLE_EQ(t.tComm, 0.0);
    EXPECT_DOUBLE_EQ(t.efficiency, 1.0);
}

TEST(PhaseSimulator, RejectsEmptyAndBadMachine)
{
    EXPECT_THROW(simulateSmvp(SmvpCharacterization{}, simpleMachine()),
                 quake::common::FatalError);
    MachineModel bad{"bad", 0.0, 0.0, 0.0};
    EXPECT_THROW(simulateSmvp(handChar(), bad),
                 quake::common::FatalError);
}

TEST(PhaseSimulator, RejectsMalformedPeLoads)
{
    // Negative work counts.
    SmvpCharacterization ch = handChar();
    ch.pes[1].flops = -1;
    EXPECT_THROW(simulateSmvp(ch, simpleMachine()),
                 quake::common::FatalError);

    ch = handChar();
    ch.pes[0].words = -60;
    EXPECT_THROW(simulateSmvp(ch, simpleMachine()),
                 quake::common::FatalError);

    ch = handChar();
    ch.pes[0].blocks = -2;
    EXPECT_THROW(simulateSmvp(ch, simpleMachine()),
                 quake::common::FatalError);

    // Words without any block to carry them.
    ch = handChar();
    ch.pes[1].blocks = 0;
    EXPECT_THROW(simulateSmvp(ch, simpleMachine()),
                 quake::common::FatalError);
}

TEST(ModelAccuracy, PessimisticModelBoundedByBeta)
{
    const ModelAccuracy acc =
        evaluateModelAccuracy(handChar(), simpleMachine());
    // model = Bmax*tl + Cmax*tw = 4us + 1us = 5us; true = 5us.
    EXPECT_NEAR(acc.modelTcomm, 5e-6, 1e-15);
    EXPECT_NEAR(acc.trueTcomm, 5e-6, 1e-15);
    EXPECT_GE(acc.ratio, 1.0 - 1e-12);
    EXPECT_LE(acc.ratio, acc.beta + 1e-12);
}

TEST(ModelAccuracy, SplitMaximaOverestimateWithinBeta)
{
    // C_max and B_max on different PEs: the model overestimates, but
    // within the beta bound — the paper's §3.4 claim, checked end to
    // end on an adversarial machine (latency-dominated).
    SmvpCharacterization ch;
    ch.numPes = 2;
    ch.pes = {PeLoad{1, 100, 2}, PeLoad{1, 50, 10}};
    const MachineModel machine{"adversarial", 1e-9, 1e-5, 1e-9};
    const ModelAccuracy acc = evaluateModelAccuracy(ch, machine);
    EXPECT_GT(acc.ratio, 1.0);
    EXPECT_LE(acc.ratio, acc.beta + 1e-12);
}

class ModelAccuracyLattice : public ::testing::TestWithParam<int>
{};

TEST_P(ModelAccuracyLattice, BoundHoldsOnRealSchedules)
{
    using namespace quake::mesh;
    const TetMesh mesh =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 5, 5, 5);
    const quake::partition::GeometricBisection partitioner;
    const DistributedProblem problem = distributeTopology(
        mesh, partitioner.partition(mesh, GetParam()));
    const SmvpCharacterization ch = characterize(problem, "acc");

    // Sweep machines from latency-dominated to bandwidth-dominated.
    for (const MachineModel &m :
         {MachineModel{"lat", 1e-9, 1e-4, 1e-10},
          MachineModel{"bal", 1e-9, 1e-6, 1e-8},
          MachineModel{"bw", 1e-9, 1e-8, 1e-6}}) {
        const ModelAccuracy acc = evaluateModelAccuracy(ch, m);
        EXPECT_GE(acc.ratio, 1.0 - 1e-12) << m.name;
        EXPECT_LE(acc.ratio, acc.beta + 1e-12) << m.name;
    }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, ModelAccuracyLattice,
                         ::testing::Values(2, 4, 8, 16));

} // namespace
