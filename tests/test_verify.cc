/**
 * @file
 * Unit tier of the verification subsystem (DESIGN.md §10): ULP metric
 * closed forms, generator validity on fixed seeds, every catalogue
 * property on one small fixed trial, the shrinker and its reproducer
 * line on a synthetic failing property, the FatalError rejection
 * regressions, and the golden Chrome trace of a fixed-seed fuzz trial.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>

#include "common/error.h"
#include "mesh/generator.h"
#include "parallel/fault_model.h"
#include "parallel/parallel_smvp.h"
#include "quake/simulation.h"
#include "sparse/bcsr3_sym.h"
#include "telemetry/collector.h"
#include "telemetry/export.h"
#include "verify/fuzz.h"
#include "verify/generators.h"
#include "verify/oracles.h"
#include "verify/properties.h"
#include "verify/ulp.h"

// ---------------------------------------------------------------------
// Global allocation hook (same pattern as test_telemetry.cc): counts
// every operator-new so the telemetry-transparency property can assert
// its traced steady state allocates nothing.
// ---------------------------------------------------------------------

namespace
{
std::atomic<std::int64_t> g_allocations{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace quake;
using namespace quake::verify;

// ---------------------------------------------------------------------
// ULP metric closed forms.
// ---------------------------------------------------------------------

TEST(Ulp, ClosedForms)
{
    EXPECT_EQ(ulpDistance(1.0, 1.0), 0);
    EXPECT_EQ(ulpDistance(0.0, -0.0), 0);
    EXPECT_EQ(ulpDistance(1.0, std::nextafter(1.0, 2.0)), 1);
    EXPECT_EQ(ulpDistance(-1.0, std::nextafter(-1.0, -2.0)), 1);
    // One step across the sign boundary: -min_denormal to +min_denormal
    // is exactly two representable steps apart (through both zeros).
    const double dmin = std::numeric_limits<double>::denorm_min();
    EXPECT_EQ(ulpDistance(-dmin, dmin), 2);
    EXPECT_EQ(ulpDistance(std::nan(""), 1.0),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(ulpDistance(1.0, std::nan("")),
              std::numeric_limits<std::int64_t>::max());
    // Far-apart values saturate instead of overflowing.
    EXPECT_EQ(ulpDistance(-std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::max()),
              std::numeric_limits<std::int64_t>::max());
    // Symmetry.
    EXPECT_EQ(ulpDistance(3.25, 3.5), ulpDistance(3.5, 3.25));
}

TEST(Oracles, MixedToleranceAndBitwise)
{
    const std::vector<double> a = {1.0, 2.0, 3.0};
    std::vector<double> b = a;
    EXPECT_TRUE(bitwiseEqual(a, b));
    b[1] = std::nextafter(b[1], 10.0);
    EXPECT_FALSE(bitwiseEqual(a, b));
    std::string why;
    EXPECT_TRUE(withinMixedTolerance(a, b, 4, 0.0, &why));
    // Tiny absolute noise on a tiny element passes via the relative
    // branch even though it is millions of ULPs away.
    std::vector<double> c = a;
    c.push_back(1e-18);
    std::vector<double> d = c;
    d[3] = 3e-18;
    EXPECT_TRUE(withinMixedTolerance(c, d, 4, 1e-11, &why));
    // A genuine error fails and names the element.
    d[2] = 3.001;
    EXPECT_FALSE(withinMixedTolerance(c, d, 4, 1e-11, &why));
    EXPECT_NE(why.find("element 2"), std::string::npos);
}

// ---------------------------------------------------------------------
// Generators: validity on fixed seeds (every artifact passes its own
// validator; shapes hit their documented element counts).
// ---------------------------------------------------------------------

TEST(Generators, RandomSystemIsValid)
{
    for (int size = 0; size <= 2; ++size)
    {
        InputGen gen(0x1234 + size, size);
        GeneratedSystem sys = gen.randomSystem();
        EXPECT_GT(sys.mesh.numElements(), 0) << "size " << size;
        EXPECT_EQ(sys.stiffness.numRows(), 3 * sys.mesh.numNodes());
        EXPECT_GT(sys.dt, 0.0);
        for (double m : sys.lumpedMass)
            EXPECT_GT(m, 0.0);
    }
}

TEST(Generators, SpdMatrixIsBlockSymmetric)
{
    InputGen gen(99, 2);
    const sparse::Bcsr3Matrix a = gen.randomSpdBcsr3(17);
    // Zero-tolerance symmetric compression throws unless block(j,i) is
    // the exact transpose of block(i,j).
    EXPECT_NO_THROW(sparse::SymBcsr3Matrix::fromBcsr3(a, 0.0));
}

TEST(Generators, AdversarialShapes)
{
    EXPECT_EQ(InputGen::singleElementMesh().numElements(), 1);
    const mesh::TetMesh sliver = InputGen::sliverMesh(5, 1e-4);
    EXPECT_EQ(sliver.numElements(), 5);
    const mesh::TetMesh islands = InputGen::disconnectedMesh(3);
    EXPECT_EQ(islands.numElements(), 3 * 6); // 6 Kuhn tets per island
    InputGen gen(7, 1);
    EXPECT_GT(gen.pathologicalGradedMesh().numElements(), 6);
}

TEST(Generators, PartitionHasNoEmptyParts)
{
    InputGen gen(0xfeed, 2);
    GeneratedSystem sys = gen.randomSystem();
    const auto parts = static_cast<int>(
        std::min<std::int64_t>(sys.mesh.numElements(), 7));
    const partition::Partition part = gen.randomPartition(sys.mesh, parts);
    for (std::int64_t s : part.partSizes())
        EXPECT_GT(s, 0);
}

// ---------------------------------------------------------------------
// Every catalogue property passes one small fixed trial.  (The fuzz
// executable runs the deep sweeps; this catches a property that cannot
// even run.)
// ---------------------------------------------------------------------

TEST(Properties, CatalogueOnFixedSeed)
{
    quake::verify::setAllocationCounter(&g_allocations);
    TrialConfig cfg;
    cfg.seed = 0x5eed;
    cfg.size = 1;
    cfg.threads = {1, 2};
    for (const Property &p : allProperties())
    {
        const PropertyResult r = runProperty(p, cfg);
        EXPECT_TRUE(r.pass) << p.name << ": " << r.message;
    }
    quake::verify::setAllocationCounter(nullptr);
}

TEST(Properties, LookupByName)
{
    ASSERT_NE(findProperty("kernel_differential"), nullptr);
    EXPECT_EQ(findProperty("no_such_property"), nullptr);
}

// ---------------------------------------------------------------------
// The fuzz driver: shrinking and the reproducer line, on a synthetic
// property that fails at size >= 1 (so the minimal failure is size 1).
// ---------------------------------------------------------------------

TEST(Fuzz, ShrinksAndPrintsReproducer)
{
    Property synthetic;
    synthetic.name = "synthetic_fail";
    synthetic.summary = "fails whenever size >= 1";
    synthetic.run = [](const TrialConfig &cfg) {
        return cfg.size >= 1
                   ? PropertyResult::fail("size was " +
                                          std::to_string(cfg.size))
                   : PropertyResult::ok();
    };

    FuzzOptions options;
    options.trials = 8;
    std::ostringstream log;
    options.out = &log;
    const FuzzReport report = runFuzz({synthetic}, options);
    ASSERT_EQ(report.failures.size(), 1u);
    const FuzzFailure &f = report.failures.front();
    EXPECT_EQ(f.property, "synthetic_fail");
    EXPECT_EQ(f.size, 1) << "shrinker did not find the minimal size";
    EXPECT_EQ(f.message, "size was 1");
    EXPECT_EQ(f.reproducer,
              reproducerLine("synthetic_fail", f.seed, 1));
    EXPECT_NE(log.str().find("reproduce: verify_fuzz --property "
                             "synthetic_fail --seed 0x"),
              std::string::npos);

    // The reproducer replays deterministically: an explicit-seed run of
    // the same property fails with the same diagnostic.
    FuzzOptions replay;
    replay.explicitSeed = static_cast<std::int64_t>(f.seed);
    replay.explicitSize = f.size;
    const FuzzReport again = runFuzz({synthetic}, replay);
    ASSERT_EQ(again.failures.size(), 1u);
    EXPECT_EQ(again.failures.front().message, "size was 1");
}

TEST(Fuzz, PassingPropertyRunsAllTrials)
{
    Property always;
    always.name = "always_pass";
    always.summary = "";
    always.run = [](const TrialConfig &) { return PropertyResult::ok(); };
    FuzzOptions options;
    options.trials = 16;
    const FuzzReport report = runFuzz({always}, options);
    EXPECT_TRUE(report.passed());
    EXPECT_EQ(report.trialsRun, 16);
}

TEST(Fuzz, UnknownPropertyNameFails)
{
    FuzzOptions options;
    options.properties = {"no_such_property"};
    const FuzzReport report = runFuzz(options);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_NE(report.failures.front().message.find("unknown"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Rejection regressions (the satellite of the mesh-generator and
// simulation-config validation): FatalError, never UB.
// ---------------------------------------------------------------------

TEST(Reject, MeshSpecCombinations)
{
    const mesh::UniformModel model(
        mesh::Aabb{{0.0, 0.0, 0.0}, {4.0, 4.0, 4.0}}, 1.0);
    mesh::MeshSpec spec;
    spec.coarseNx = spec.coarseNy = spec.coarseNz = 1;

    auto expectReject = [&](auto mutate) {
        mesh::MeshSpec s = spec;
        mutate(s);
        EXPECT_THROW(mesh::generateMesh(model, s), common::FatalError);
    };
    expectReject([](mesh::MeshSpec &s) { s.periodSeconds = 0.0; });
    expectReject([](mesh::MeshSpec &s) { s.periodSeconds = -2.0; });
    expectReject([](mesh::MeshSpec &s) { s.pointsPerWavelength = 0.0; });
    expectReject([](mesh::MeshSpec &s) { s.hScale = std::nan(""); });
    expectReject([](mesh::MeshSpec &s) { s.hMin = 0.0; });
    expectReject([](mesh::MeshSpec &s) { s.coarseNx = 0; });
    expectReject([](mesh::MeshSpec &s) { s.coarseNy = -3; });
    expectReject([](mesh::MeshSpec &s) { s.coarseNz = 4096; });
    expectReject([](mesh::MeshSpec &s) { s.jitterFraction = 1.0; });
    expectReject([](mesh::MeshSpec &s) { s.jitterFraction = -0.1; });
    expectReject([](mesh::MeshSpec &s) { s.refine.maxElements = 0; });
    expectReject([](mesh::MeshSpec &s) { s.refine.maxPasses = -1; });

    // The baseline spec itself is fine.
    EXPECT_NO_THROW(mesh::generateMesh(model, spec));
}

TEST(Reject, ZeroExtentDomainMeansZeroElements)
{
    // A flat (zero-thickness) domain would produce zero-volume cubes
    // and therefore zero usable elements; the generator must refuse it
    // rather than emit a degenerate mesh.
    const mesh::UniformModel flat(
        mesh::Aabb{{0.0, 0.0, 0.0}, {4.0, 4.0, 0.0}}, 1.0);
    mesh::MeshSpec spec;
    spec.coarseNx = spec.coarseNy = spec.coarseNz = 1;
    EXPECT_THROW(mesh::generateMesh(flat, spec), common::FatalError);
}

TEST(Reject, LatticeNodeIdOverflow)
{
    EXPECT_THROW(mesh::buildKuhnLattice(
                     mesh::Aabb{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}}, 1300,
                     1300, 1300),
                 common::FatalError);
}

TEST(Reject, SimulationConfig)
{
    const auto reject = [](auto mutate) {
        sim::SimulationConfig config;
        mutate(config);
        EXPECT_THROW(config.validate(), common::FatalError);
    };
    reject([](sim::SimulationConfig &c) { c.durationSeconds = -5.0; });
    reject([](sim::SimulationConfig &c) { c.durationSeconds = 0.0; });
    reject([](sim::SimulationConfig &c) {
        c.durationSeconds = std::numeric_limits<double>::infinity();
    });
    reject([](sim::SimulationConfig &c) { c.cflSafety = 0.0; });
    reject([](sim::SimulationConfig &c) { c.poisson = 0.5; });
    reject([](sim::SimulationConfig &c) { c.poisson = -0.1; });
    reject([](sim::SimulationConfig &c) { c.dampingA0 = -1.0; });
    reject([](sim::SimulationConfig &c) { c.numPes = 0; });
    reject([](sim::SimulationConfig &c) { c.numPes = -4; });
    reject([](sim::SimulationConfig &c) { c.smvpThreads = -1; });
    reject([](sim::SimulationConfig &c) { c.sampleInterval = -1; });
    reject([](sim::SimulationConfig &c) { c.maxSteps = -1; });
    EXPECT_NO_THROW(sim::SimulationConfig{}.validate());
}

TEST(Reject, FaultSpec)
{
    parallel::FaultSpec spec;
    spec.dropProbability = 1.5;
    EXPECT_THROW(spec.validate(), common::FatalError);
    spec.dropProbability = std::nan("");
    EXPECT_THROW(spec.validate(), common::FatalError);
    spec.dropProbability = 0.1;
    EXPECT_NO_THROW(spec.validate());
}

// ---------------------------------------------------------------------
// Golden Chrome trace of a fixed-seed fuzz trial: a generated system,
// a 1-thread engine (inline, so span order is scheduling-free), a fake
// clock, and three traced steps must export exactly the committed JSON.
// Regenerate after an intentional exporter change with:
//   QUAKE98_REGEN_GOLDEN=1 ./test_verify --gtest_filter='*GoldenTrace*'
// ---------------------------------------------------------------------

std::uint64_t g_fake_now = 0;

std::uint64_t
fakeNow()
{
    return g_fake_now += 1000;
}

TEST(GoldenTrace, FixedSeedFuzzTrial)
{
    g_fake_now = 0;
    InputGen gen(42, 1);
    GeneratedSystem sys = gen.randomSystem();
    const partition::Partition part = gen.randomPartition(
        sys.mesh,
        static_cast<int>(std::min<std::int64_t>(sys.mesh.numElements(), 2)));
    const parallel::DistributedProblem problem =
        parallel::distribute(sys.mesh, *sys.model, part);

    telemetry::CollectorConfig cc;
    cc.enabled = true;
    cc.sampleEvery = 1;
    cc.now = &fakeNow;
    telemetry::Collector collector(cc);

    parallel::ParallelSmvp engine(problem, 1);
    engine.setCollector(&collector);

    const std::int64_t n = 3 * problem.numGlobalNodes;
    std::vector<double> u = gen.randomVector(n);
    std::vector<double> up(static_cast<std::size_t>(n), 0.0);
    std::vector<double> f(static_cast<std::size_t>(n), 0.0);
    std::vector<double> inv_mass(static_cast<std::size_t>(n), 1.0);
    sparse::StepUpdate su;
    su.f = f.data();
    su.invMass = inv_mass.data();
    su.dt = sys.dt;
    su.dt2 = sys.dt * sys.dt;
    su.prevCoeff = 1.0;
    su.denom = 1.0;
    for (int step = 0; step < 3; ++step)
    {
        collector.setStep(step);
        su.u = u.data();
        su.up = up.data();
        engine.stepFused(su);
        std::swap(u, up);
    }

    std::ostringstream out;
    telemetry::writeChromeTrace(collector, out);
    ASSERT_FALSE(out.str().empty());

    const std::string path =
        std::string(QUAKE98_GOLDEN_DIR) + "/verify_trace.json";
    if (std::getenv("QUAKE98_REGEN_GOLDEN") != nullptr)
    {
        std::ofstream file(path, std::ios::binary);
        ASSERT_TRUE(file.good()) << "cannot write " << path;
        file << out.str();
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream file(path, std::ios::binary);
    ASSERT_TRUE(file.good()) << "missing golden file " << path;
    std::ostringstream golden;
    golden << file.rdbuf();
    EXPECT_EQ(out.str(), golden.str())
        << "Chrome trace drifted from " << path
        << " (QUAKE98_REGEN_GOLDEN=1 regenerates after an intentional "
           "exporter change)";
}

} // namespace
