/**
 * @file
 * Tests for the distributor: element coverage, local numbering, node
 * ownership, replication consistency, and — the crucial one — that the
 * scatter-sum of local stiffness matrices reproduces the global matrix.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "mesh/generator.h"
#include "parallel/distributor.h"
#include "partition/geometric_bisection.h"
#include "sparse/assembly.h"

namespace
{

using namespace quake::parallel;
using namespace quake::mesh;
using namespace quake::partition;

class DistributorTest : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        mesh_ = buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 4, 4, 4);
        model_ = std::make_unique<UniformModel>(
            Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
        const GeometricBisection partitioner;
        problem_ = distribute(mesh_, *model_,
                              partitioner.partition(mesh_, GetParam()));
    }

    TetMesh mesh_;
    std::unique_ptr<UniformModel> model_;
    DistributedProblem problem_;
};

TEST_P(DistributorTest, ElementsCoverMeshExactlyOnce)
{
    std::vector<int> seen(static_cast<std::size_t>(mesh_.numElements()),
                          0);
    for (const Subdomain &sub : problem_.subdomains)
        for (TetId t : sub.elements)
            ++seen[t];
    for (int count : seen)
        EXPECT_EQ(count, 1);
}

TEST_P(DistributorTest, GlobalNodesSortedUnique)
{
    for (const Subdomain &sub : problem_.subdomains) {
        for (std::size_t i = 1; i < sub.globalNodes.size(); ++i)
            EXPECT_LT(sub.globalNodes[i - 1], sub.globalNodes[i]);
    }
}

TEST_P(DistributorTest, LocalMeshGeometryMatchesGlobal)
{
    for (const Subdomain &sub : problem_.subdomains) {
        ASSERT_EQ(sub.localMesh.numNodes(), sub.numLocalNodes());
        ASSERT_EQ(sub.localMesh.numElements(),
                  static_cast<std::int64_t>(sub.elements.size()));
        for (std::int64_t v = 0; v < sub.numLocalNodes(); ++v)
            EXPECT_EQ(sub.localMesh.node(static_cast<NodeId>(v)),
                      mesh_.node(sub.globalNodes[v]));
        sub.localMesh.validate();
    }
}

TEST_P(DistributorTest, EveryNodeHasExactlyOneOwner)
{
    std::vector<int> owners(static_cast<std::size_t>(mesh_.numNodes()),
                            0);
    for (const Subdomain &sub : problem_.subdomains)
        for (std::int64_t v = 0; v < sub.numLocalNodes(); ++v)
            if (sub.ownsNode[v])
                ++owners[sub.globalNodes[v]];
    for (int count : owners)
        EXPECT_EQ(count, 1);
}

TEST_P(DistributorTest, LocalNodeLookupRoundTrips)
{
    const Subdomain &sub = problem_.subdomains[0];
    for (std::int64_t v = 0; v < sub.numLocalNodes(); ++v)
        EXPECT_EQ(sub.localNodeOf(sub.globalNodes[v]), v);
}

TEST_P(DistributorTest, LocalStiffnessSumsToGlobal)
{
    // The paper's data distribution: K_ij is the sum over PEs holding
    // both i and j of their local element contributions.  Scatter-add
    // all local matrices into dense-ish storage keyed by the global
    // matrix's own pattern, and compare.
    const quake::sparse::Bcsr3Matrix global_k =
        quake::sparse::assembleStiffness(mesh_, *model_);

    quake::sparse::Bcsr3Matrix sum(
        global_k.numBlockRows(),
        std::vector<std::int64_t>(global_k.xadj()),
        std::vector<std::int32_t>(global_k.blockCols()));

    for (const Subdomain &sub : problem_.subdomains) {
        const auto &lk = sub.stiffness;
        ASSERT_GT(lk.numBlockRows(), 0);
        for (std::int64_t br = 0; br < lk.numBlockRows(); ++br) {
            for (std::int64_t k = lk.xadj()[br]; k < lk.xadj()[br + 1];
                 ++k) {
                const std::int32_t bc = lk.blockCols()[k];
                quake::sparse::Block3 blk;
                const double *src = lk.blockAt(k);
                std::copy(src, src + 9, blk.begin());
                sum.addToBlock(
                    sub.globalNodes[br],
                    static_cast<std::int32_t>(sub.globalNodes[bc]), blk);
            }
        }
    }

    for (std::int64_t k = 0; k < global_k.numBlocks(); ++k) {
        const double *expect = global_k.blockAt(k);
        const double *got = sum.blockAt(k);
        for (int i = 0; i < 9; ++i)
            EXPECT_NEAR(got[i], expect[i],
                        1e-9 * (1.0 + std::fabs(expect[i])));
    }
}

TEST_P(DistributorTest, TopologyOnlySkipsMatrices)
{
    const DistributedProblem topo =
        distributeTopology(mesh_, problem_.partition);
    for (const Subdomain &sub : topo.subdomains)
        EXPECT_EQ(sub.stiffness.numBlockRows(), 0);
    EXPECT_EQ(topo.schedule.totalWords(),
              problem_.schedule.totalWords());
}

TEST_P(DistributorTest, BoundaryAndInteriorRowsPartitionLocalNodes)
{
    // The overlap engine relies on this split: boundary rows feed the
    // message buffers, interior rows are everything else, and together
    // they cover every local node exactly once (both sorted ascending).
    for (const Subdomain &sub : problem_.subdomains) {
        std::vector<char> seen(
            static_cast<std::size_t>(sub.numLocalNodes()), 0);
        EXPECT_TRUE(std::is_sorted(sub.boundaryRows.begin(),
                                   sub.boundaryRows.end()));
        EXPECT_TRUE(std::is_sorted(sub.interiorRows.begin(),
                                   sub.interiorRows.end()));
        for (std::int64_t v : sub.boundaryRows)
            ++seen[static_cast<std::size_t>(v)];
        for (std::int64_t v : sub.interiorRows)
            ++seen[static_cast<std::size_t>(v)];
        for (char c : seen)
            EXPECT_EQ(c, 1);
    }
}

TEST_P(DistributorTest, BoundaryRowsAreExactlyTheExchangedNodes)
{
    // A node is a boundary row iff it appears in some exchange of its
    // PE (replicated on >= 2 subdomains).
    for (std::size_t p = 0; p < problem_.subdomains.size(); ++p) {
        const Subdomain &sub = problem_.subdomains[p];
        std::set<std::int64_t> exchanged;
        for (const Exchange &ex :
             problem_.schedule.pe(static_cast<int>(p)).exchanges)
            for (quake::mesh::NodeId g : ex.nodes)
                exchanged.insert(sub.localNodeOf(g));
        const std::set<std::int64_t> boundary(sub.boundaryRows.begin(),
                                              sub.boundaryRows.end());
        EXPECT_EQ(boundary, exchanged);
    }
}

TEST_P(DistributorTest, SharedNodesAppearInMultipleSubdomains)
{
    const NodeParts np = buildNodeParts(mesh_, problem_.partition);
    std::vector<int> copies(static_cast<std::size_t>(mesh_.numNodes()),
                            0);
    for (const Subdomain &sub : problem_.subdomains)
        for (NodeId g : sub.globalNodes)
            ++copies[g];
    for (NodeId n = 0; n < mesh_.numNodes(); ++n)
        EXPECT_EQ(copies[n], np.multiplicity(n));
}

INSTANTIATE_TEST_SUITE_P(PartCounts, DistributorTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Subdomain, LocalNodeOfMissingPanics)
{
    Subdomain sub;
    sub.globalNodes = {1, 5, 9};
    EXPECT_EQ(sub.localNodeOf(5), 1);
    EXPECT_DEATH(sub.localNodeOf(4), "is not on PE");
}

} // namespace
