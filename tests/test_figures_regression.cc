/**
 * @file
 * Golden-number regression tests for the derived figures.
 *
 * These pin the reproduction numerically: every sustained-bandwidth
 * value behind Figure 9 and every latency bound behind Figures 10/11
 * (sf2, reference data) is asserted against independently computed
 * constants.  If a future change moves any of these numbers, a test
 * fails — the reproduction cannot drift silently.
 */

#include <gtest/gtest.h>

#include "core/reference.h"
#include "core/requirements.h"

namespace
{

using namespace quake::core;
namespace ref = quake::core::reference;

/** Golden Figure 9 values (MB/s), computed as 8 bytes / T_c with
 * T_c = (F / C_max) ((1-E)/E) T_f over the published Figure 7 column
 * for sf2.  Rows: (MFLOPS, E); columns: subdomains 4..128. */
struct GoldenRow
{
    double mflops;
    double efficiency;
    std::array<double, 6> mbytesPerSecond;
};

constexpr GoldenRow kFigure9Golden[] = {
    {100, 0.5, {1.80, 2.27, 3.63, 6.02, 10.05, 15.52}},
    {100, 0.8, {7.19, 9.06, 14.52, 24.08, 40.22, 62.07}},
    {100, 0.9, {16.17, 20.39, 32.66, 54.19, 90.49, 139.67}},
    {200, 0.5, {3.59, 4.53, 7.26, 12.04, 20.11, 31.04}},
    {200, 0.8, {14.37, 18.12, 29.04, 48.16, 80.44, 124.15}},
    {200, 0.9, {32.34, 40.77, 65.33, 108.37, 180.98, 279.33}},
};

TEST(Figure9Regression, EveryGridPointMatchesGolden)
{
    for (const GoldenRow &row : kFigure9Golden) {
        const double tf = tfFromMflops(row.mflops);
        for (std::size_t i = 0; i < ref::kSubdomainCounts.size(); ++i) {
            const SmvpShape shape = ref::shapeFor(
                ref::PaperMesh::kSf2, ref::kSubdomainCounts[i]);
            const double bw =
                requiredSustainedBandwidth(shape, row.efficiency, tf) /
                1e6;
            EXPECT_NEAR(bw, row.mbytesPerSecond[i],
                        0.01 * row.mbytesPerSecond[i])
                << "sf2/" << ref::kSubdomainCounts[i] << " @ "
                << row.mflops << " MFLOPS, E = " << row.efficiency;
        }
    }
}

/** Golden Figure 10(a)/11 latencies (microseconds) at 200 MFLOPS,
 * E = 0.9: infinite-burst bound and half-bandwidth latency. */
struct GoldenLatency
{
    int subdomains;
    double infBurstUs;
    double halfBwUs;
};

constexpr GoldenLatency kLatencyGolden[] = {
    {4, 2281.492, 1140.746}, {8, 689.667, 344.834},
    {16, 217.989, 108.994},  {32, 68.193, 34.097},
    {64, 25.196, 12.598},    {128, 9.314, 4.657},
};

TEST(Figure10And11Regression, LatencyBoundsMatchGolden)
{
    const double tf = tfFromMflops(200);
    for (const GoldenLatency &golden : kLatencyGolden) {
        const SmvpShape shape =
            ref::shapeFor(ref::PaperMesh::kSf2, golden.subdomains);
        const double tc = requiredTc(shape, 0.9, tf);
        EXPECT_NEAR(latencyBudget(shape, tc, 0.0) * 1e6,
                    golden.infBurstUs, 0.01 * golden.infBurstUs)
            << "sf2/" << golden.subdomains;
        EXPECT_NEAR(halfBandwidthPoint(shape, tc).latency * 1e6,
                    golden.halfBwUs, 0.01 * golden.halfBwUs)
            << "sf2/" << golden.subdomains;
    }
}

TEST(Figure11Regression, FourWordBlockHardestCase)
{
    // The §4.4 four-word cache-line corner: 57.3 ns at sf2/128,
    // 200 MFLOPS, E = 0.9 (the paper quotes ~70 ns off the graph).
    const SmvpShape shape = withFixedBlockSize(
        ref::shapeFor(ref::PaperMesh::kSf2, 128), 4.0);
    const double tc = requiredTc(shape, 0.9, tfFromMflops(200));
    EXPECT_NEAR(halfBandwidthPoint(shape, tc).latency, 57.3e-9,
                0.5e-9);
    EXPECT_NEAR(halfBandwidthPoint(shape, tc).burstBandwidthBytes,
                558.7e6, 1e6);
}

TEST(HeadlineRegression, The300And600MBsNumbers)
{
    const SmvpShape shape = ref::shapeFor(ref::PaperMesh::kSf2, 128);
    const Headline h = computeHeadline(shape, 200.0, 0.9);
    EXPECT_NEAR(h.sustainedBandwidthBytes, 279.33e6, 0.1e6);
    EXPECT_NEAR(h.halfPoint.burstBandwidthBytes, 558.66e6, 0.2e6);
}

} // namespace
