/**
 * @file
 * Tests for the Spark98-style kernel suite: all storage formats compute
 * the same product, symmetric storage halves the stored entries, and the
 * T_f measurement harness returns sane numbers.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "mesh/generator.h"
#include "spark/kernels.h"

namespace
{

using namespace quake::spark;
using namespace quake::mesh;
using quake::common::FatalError;

class SuiteTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        mesh_ = new TetMesh(
            buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 3, 3, 3));
        model_ = new UniformModel(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
        suite_ = new KernelSuite(*mesh_, *model_);
    }

    static void
    TearDownTestSuite()
    {
        delete suite_;
        delete model_;
        delete mesh_;
    }

    static TetMesh *mesh_;
    static UniformModel *model_;
    static KernelSuite *suite_;
};

TetMesh *SuiteTest::mesh_ = nullptr;
UniformModel *SuiteTest::model_ = nullptr;
KernelSuite *SuiteTest::suite_ = nullptr;

TEST_F(SuiteTest, DofMatchesMesh)
{
    EXPECT_EQ(suite_->dof(), 3 * mesh_->numNodes());
}

TEST_F(SuiteTest, KernelNamesDistinct)
{
    EXPECT_NE(kernelName(Kernel::kCsr), kernelName(Kernel::kBcsr3));
    EXPECT_NE(kernelName(Kernel::kCsr), kernelName(Kernel::kSym));
}

TEST_F(SuiteTest, AllKernelsAgree)
{
    std::vector<double> x(static_cast<std::size_t>(suite_->dof()));
    quake::common::SplitMix64 rng(77);
    for (double &v : x)
        v = rng.uniform(-1, 1);

    const std::vector<double> y_csr = suite_->run(Kernel::kCsr, x);
    const std::vector<double> y_bcsr = suite_->run(Kernel::kBcsr3, x);
    const std::vector<double> y_sym = suite_->run(Kernel::kSym, x);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(y_csr[i], y_bcsr[i], 1e-9);
        EXPECT_NEAR(y_csr[i], y_sym[i], 1e-9);
    }
}

TEST_F(SuiteTest, RunRejectsWrongSize)
{
    EXPECT_THROW(suite_->run(Kernel::kCsr, std::vector<double>(3, 0.0)),
                 FatalError);
}

TEST_F(SuiteTest, SymStorageRoughlyHalves)
{
    const std::int64_t full = suite_->csr().nnz();
    const std::int64_t half = suite_->sym().storedEntries();
    EXPECT_LT(half, full * 6 / 10);
    EXPECT_GT(half, full * 4 / 10);
}

TEST_F(SuiteTest, SymFlopCountMatchesFull)
{
    // Same arithmetic as full CSR on a structurally symmetric matrix
    // with every diagonal entry stored: 2 flops per logical nonzero.
    EXPECT_EQ(suite_->sym().flopsPerMultiply(), 2 * suite_->csr().nnz());
}

TEST_F(SuiteTest, MeasureReturnsSaneTiming)
{
    const KernelTiming t = suite_->measure(Kernel::kBcsr3, 3);
    EXPECT_GT(t.secondsPerSmvp, 0.0);
    EXPECT_EQ(t.flops, 2 * suite_->nnz());
    EXPECT_GT(t.mflops, 1.0);     // any machine manages > 1 MFLOPS
    EXPECT_LT(t.mflops, 100000.0); // and < 100 GFLOPS scalar
    EXPECT_NEAR(t.tf * t.mflops * 1e6, 1.0, 1e-9);
}

TEST_F(SuiteTest, MeasureRejectsZeroReps)
{
    EXPECT_THROW(suite_->measure(Kernel::kCsr, 0), FatalError);
}

TEST(SymCsr, RejectsAsymmetric)
{
    using quake::sparse::CsrMatrix;
    using quake::sparse::SymCsrMatrix;
    const CsrMatrix asym(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {1, 7, 6, 3});
    EXPECT_THROW(SymCsrMatrix::fromCsr(asym), FatalError);
}

TEST(SymCsr, KnownProduct)
{
    using quake::sparse::CsrMatrix;
    using quake::sparse::SymCsrMatrix;
    // | 2 1 |
    // | 1 3 |
    const CsrMatrix full(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {2, 1, 1, 3});
    const SymCsrMatrix sym = SymCsrMatrix::fromCsr(full);
    EXPECT_EQ(sym.storedEntries(), 3);
    const std::vector<double> y = sym.multiply({1.0, 2.0});
    EXPECT_DOUBLE_EQ(y[0], 4.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

} // namespace
