/**
 * @file
 * Tests for the Spark98-style kernel suite: all storage formats compute
 * the same product, symmetric storage halves the stored entries, and the
 * T_f measurement harness returns sane numbers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/error.h"
#include "common/rng.h"
#include "mesh/generator.h"
#include "spark/kernels.h"
#include "sparse/bcsr3_sym.h"

namespace
{

using namespace quake::spark;
using namespace quake::mesh;
using quake::common::FatalError;

class SuiteTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        mesh_ = new TetMesh(
            buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 3, 3, 3));
        model_ = new UniformModel(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
        suite_ = new KernelSuite(*mesh_, *model_);
    }

    static void
    TearDownTestSuite()
    {
        delete suite_;
        delete model_;
        delete mesh_;
    }

    static TetMesh *mesh_;
    static UniformModel *model_;
    static KernelSuite *suite_;
};

TetMesh *SuiteTest::mesh_ = nullptr;
UniformModel *SuiteTest::model_ = nullptr;
KernelSuite *SuiteTest::suite_ = nullptr;

TEST_F(SuiteTest, DofMatchesMesh)
{
    EXPECT_EQ(suite_->dof(), 3 * mesh_->numNodes());
}

TEST_F(SuiteTest, KernelNamesDistinct)
{
    EXPECT_NE(kernelName(Kernel::kCsr), kernelName(Kernel::kBcsr3));
    EXPECT_NE(kernelName(Kernel::kCsr), kernelName(Kernel::kSym));
}

TEST_F(SuiteTest, AllKernelsAgree)
{
    std::vector<double> x(static_cast<std::size_t>(suite_->dof()));
    quake::common::SplitMix64 rng(77);
    for (double &v : x)
        v = rng.uniform(-1, 1);

    const std::vector<double> y_csr = suite_->run(Kernel::kCsr, x);
    const std::vector<double> y_bcsr = suite_->run(Kernel::kBcsr3, x);
    const std::vector<double> y_sym = suite_->run(Kernel::kSym, x);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(y_csr[i], y_bcsr[i], 1e-9);
        EXPECT_NEAR(y_csr[i], y_sym[i], 1e-9);
    }
}

TEST_F(SuiteTest, RunRejectsWrongSize)
{
    EXPECT_THROW(suite_->run(Kernel::kCsr, std::vector<double>(3, 0.0)),
                 FatalError);
}

TEST_F(SuiteTest, SymStorageRoughlyHalves)
{
    const std::int64_t full = suite_->csr().nnz();
    const std::int64_t half = suite_->sym().storedEntries();
    EXPECT_LT(half, full * 6 / 10);
    EXPECT_GT(half, full * 4 / 10);
}

TEST_F(SuiteTest, SymFlopCountMatchesFull)
{
    // Same arithmetic as full CSR on a structurally symmetric matrix
    // with every diagonal entry stored: 2 flops per logical nonzero.
    EXPECT_EQ(suite_->sym().flopsPerMultiply(), 2 * suite_->csr().nnz());
}

TEST_F(SuiteTest, MeasureReturnsSaneTiming)
{
    const KernelTiming t = suite_->measure(Kernel::kBcsr3, 3);
    EXPECT_GT(t.secondsPerSmvp, 0.0);
    EXPECT_EQ(t.flops, 2 * suite_->nnz());
    EXPECT_GT(t.mflops, 1.0);     // any machine manages > 1 MFLOPS
    EXPECT_LT(t.mflops, 100000.0); // and < 100 GFLOPS scalar
    EXPECT_NEAR(t.tf * t.mflops * 1e6, 1.0, 1e-9);
}

TEST_F(SuiteTest, MeasureRejectsZeroReps)
{
    EXPECT_THROW(suite_->measure(Kernel::kCsr, 0), FatalError);
}

TEST_F(SuiteTest, EveryKernelVariantAgreesWithCsr)
{
    std::vector<double> x(static_cast<std::size_t>(suite_->dof()));
    quake::common::SplitMix64 rng(4242);
    for (double &v : x)
        v = rng.uniform(-1, 1);

    const std::vector<double> y_ref = suite_->run(Kernel::kCsr, x);
    for (Kernel k : kAllKernels) {
        const std::vector<double> y = suite_->run(k, x);
        ASSERT_EQ(y.size(), y_ref.size()) << kernelName(k);
        for (std::size_t i = 0; i < y.size(); ++i)
            EXPECT_NEAR(y[i], y_ref[i],
                        1e-9 * (1.0 + std::fabs(y_ref[i])))
                << kernelName(k) << " dof " << i;
    }
}

TEST(KernelEquivalence, AllVariantsAgreeOnGradedSfMesh)
{
    // A graded (non-uniform) mesh: node degrees vary, which exercises
    // the nnz-balanced chunking and the symmetric scatter paths harder
    // than a lattice does.
    const GeneratedMesh generated = generateSfMesh(SfClass::kSf20);
    const LayeredBasinModel model;
    KernelSuite suite(generated.mesh, model);
    suite.setThreads(3);

    std::vector<double> x(static_cast<std::size_t>(suite.dof()));
    quake::common::SplitMix64 rng(90210);
    for (double &v : x)
        v = rng.uniform(-1, 1);

    const std::vector<double> y_ref = suite.run(Kernel::kCsr, x);
    for (Kernel k : kAllKernels) {
        const std::vector<double> y = suite.run(k, x);
        for (std::size_t i = 0; i < y.size(); ++i)
            ASSERT_NEAR(y[i], y_ref[i],
                        1e-9 * (1.0 + std::fabs(y_ref[i])))
                << kernelName(k) << " dof " << i;
    }
}

TEST(KernelEquivalence, ThreadedVariantsAreBitwiseStable)
{
    // The padded-scratch scatter and the row-split kernel must be
    // bitwise reproducible call over call (fixed reduction order),
    // and the row-split kernel must equal its sequential twin exactly.
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 4, 4, 4);
    const UniformModel model(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
    KernelSuite suite(m, model);
    suite.setThreads(4);

    std::vector<double> x(static_cast<std::size_t>(suite.dof()));
    quake::common::SplitMix64 rng(1234);
    for (double &v : x)
        v = rng.uniform(-1, 1);

    EXPECT_EQ(suite.run(Kernel::kThreaded, x),
              suite.run(Kernel::kBcsr3, x));
    const std::vector<double> y_mt = suite.run(Kernel::kSymBcsr3Mt, x);
    for (int rep = 0; rep < 5; ++rep)
        EXPECT_EQ(suite.run(Kernel::kSymBcsr3Mt, x), y_mt);
}

TEST_F(SuiteTest, AutotunePicksAMeasuredKernel)
{
    const AutotuneResult r = suite_->autotune(2);
    EXPECT_EQ(r.entries.size(), std::size(kAllKernels));
    EXPECT_GT(r.bestTiming.secondsPerSmvp, 0.0);
    bool best_in_entries = false;
    for (const AutotuneEntry &e : r.entries) {
        EXPECT_GT(e.timing.secondsPerSmvp, 0.0);
        EXPECT_GE(e.timing.secondsPerSmvp,
                  r.bestTiming.secondsPerSmvp);
        if (e.kernel == r.best)
            best_in_entries = true;
    }
    EXPECT_TRUE(best_in_entries);
}

// Deterministic fake measurement: the verdict must be a pure function
// of the kernel SET, never of the order the kernels are measured in
// (regression for the missing-warm-up bug, where the first-measured
// kernel paid the cold-start cost alone and could lose unfairly).
TEST(Autotune, VerdictIndependentOfMeasurementOrder)
{
    const auto measure = [](Kernel k, int) {
        KernelTiming t;
        switch (k) {
        case Kernel::kCsr: t.secondsPerSmvp = 5e-6; break;
        case Kernel::kBcsr3: t.secondsPerSmvp = 2e-6; break;
        case Kernel::kSym: t.secondsPerSmvp = 3e-6; break;
        case Kernel::kSlicedEll3: t.secondsPerSmvp = 1e-6; break;
        default: t.secondsPerSmvp = 9e-6; break;
        }
        return t;
    };

    std::vector<Kernel> order = {Kernel::kCsr, Kernel::kBcsr3,
                                 Kernel::kSym, Kernel::kSlicedEll3,
                                 Kernel::kSymBcsr3Mt};
    std::sort(order.begin(), order.end());
    do {
        const AutotuneResult r =
            KernelSuite::selectBest(order, 3, measure);
        EXPECT_EQ(r.best, Kernel::kSlicedEll3);
        EXPECT_DOUBLE_EQ(r.bestTiming.secondsPerSmvp, 1e-6);
        // Entries stay in call order, one per contender.
        ASSERT_EQ(r.entries.size(), order.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            EXPECT_EQ(r.entries[i].kernel, order[i]);
    } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Autotune, ExactTiesBreakByEnumOrderNotMeasurementOrder)
{
    const auto measure = [](Kernel, int) {
        KernelTiming t;
        t.secondsPerSmvp = 4e-6; // everyone identical
        return t;
    };
    const std::vector<Kernel> fwd = {Kernel::kCsr, Kernel::kSlicedEll3};
    const std::vector<Kernel> rev = {Kernel::kSlicedEll3, Kernel::kCsr};
    EXPECT_EQ(KernelSuite::selectBest(fwd, 1, measure).best, Kernel::kCsr);
    EXPECT_EQ(KernelSuite::selectBest(rev, 1, measure).best, Kernel::kCsr);
}

TEST(Autotune, SubsetOverloadWarmsUpEveryContender)
{
    // The real autotune must produce a verdict drawn from the requested
    // subset and measure each contender (warm-up + timed); this is the
    // integration-level check that the subset overload works end to end.
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, 2, 2, 2);
    const UniformModel model(Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0);
    KernelSuite suite(m, model);
    const std::vector<Kernel> subset = {Kernel::kBcsr3,
                                        Kernel::kSlicedEll3};
    const AutotuneResult r = suite.autotune(subset, 1);
    ASSERT_EQ(r.entries.size(), 2u);
    EXPECT_TRUE(r.best == Kernel::kBcsr3 ||
                r.best == Kernel::kSlicedEll3);
    for (const AutotuneEntry &e : r.entries)
        EXPECT_GT(e.timing.secondsPerSmvp, 0.0);
}

TEST(Autotune, RejectsEmptyKernelList)
{
    const auto measure = [](Kernel, int) { return KernelTiming{}; };
    EXPECT_THROW(KernelSuite::selectBest({}, 1, measure), FatalError);
}

TEST(SymBcsr3, KnownProduct)
{
    using quake::sparse::Bcsr3Matrix;
    using quake::sparse::Block3;
    using quake::sparse::SymBcsr3Matrix;

    // Two block rows: diagonal blocks D0, D1 and symmetric coupling
    // B on (0,1) / B^T on (1,0).
    Bcsr3Matrix full(2, {0, 2, 4}, {0, 1, 0, 1});
    Block3 d0{}, d1{}, b{}, bt{};
    for (int i = 0; i < 3; ++i) {
        d0[4 * i] = 2.0 + i;
        d1[4 * i] = 5.0 + i;
    }
    // b row-major; bt = b^T.  Off-diagonal within-block entries make
    // the transposed scatter observable.
    b[1] = 1.5;
    b[3] = -0.5;
    b[8] = 2.0;
    bt[3] = 1.5;
    bt[1] = -0.5;
    bt[8] = 2.0;
    full.addToBlock(0, 0, d0);
    full.addToBlock(1, 1, d1);
    full.addToBlock(0, 1, b);
    full.addToBlock(1, 0, bt);

    const SymBcsr3Matrix sym = SymBcsr3Matrix::fromBcsr3(full);
    EXPECT_EQ(sym.storedBlocks(), 3); // 2 diagonal + 1 upper

    std::vector<double> x = {1, 2, 3, 4, 5, 6};
    std::vector<double> y_full(6), y_sym(6);
    full.multiply(x.data(), y_full.data());
    sym.multiply(x.data(), y_sym.data());
    for (int i = 0; i < 6; ++i)
        EXPECT_DOUBLE_EQ(y_sym[i], y_full[i]) << "dof " << i;
}

TEST(SymBcsr3, RejectsAsymmetric)
{
    using quake::sparse::Bcsr3Matrix;
    using quake::sparse::Block3;
    using quake::sparse::SymBcsr3Matrix;

    Bcsr3Matrix full(2, {0, 2, 4}, {0, 1, 0, 1});
    Block3 d{}, b{}, not_bt{};
    d[0] = d[4] = d[8] = 1.0;
    b[1] = 1.0;
    not_bt[3] = 2.0; // should be 1.0 to mirror b
    full.addToBlock(0, 0, d);
    full.addToBlock(1, 1, d);
    full.addToBlock(0, 1, b);
    full.addToBlock(1, 0, not_bt);
    EXPECT_THROW(SymBcsr3Matrix::fromBcsr3(full), FatalError);
}

TEST(SymCsr, RejectsAsymmetric)
{
    using quake::sparse::CsrMatrix;
    using quake::sparse::SymCsrMatrix;
    const CsrMatrix asym(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {1, 7, 6, 3});
    EXPECT_THROW(SymCsrMatrix::fromCsr(asym), FatalError);
}

TEST(SymCsr, KnownProduct)
{
    using quake::sparse::CsrMatrix;
    using quake::sparse::SymCsrMatrix;
    // | 2 1 |
    // | 1 3 |
    const CsrMatrix full(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {2, 1, 1, 3});
    const SymCsrMatrix sym = SymCsrMatrix::fromCsr(full);
    EXPECT_EQ(sym.storedEntries(), 3);
    const std::vector<double> y = sym.multiply({1.0, 2.0});
    EXPECT_DOUBLE_EQ(y[0], 4.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

} // namespace
