/**
 * @file
 * Tests for the TetMesh container: construction, adjacency extraction,
 * statistics, and invariant validation.
 */

#include <gtest/gtest.h>

#include "mesh/generator.h"
#include "mesh/tet_mesh.h"

namespace
{

using namespace quake::mesh;

/** One unit corner tet. */
TetMesh
singleTet()
{
    TetMesh m;
    m.addNode({0, 0, 0});
    m.addNode({1, 0, 0});
    m.addNode({0, 1, 0});
    m.addNode({0, 0, 1});
    m.addTet(0, 1, 2, 3);
    return m;
}

/** Two tets sharing the face (1, 2, 3). */
TetMesh
twoTets()
{
    TetMesh m = singleTet();
    m.addNode({1, 1, 1});
    m.addTet(1, 2, 4, 3);
    return m;
}

TEST(TetMesh, Counts)
{
    const TetMesh m = twoTets();
    EXPECT_EQ(m.numNodes(), 5);
    EXPECT_EQ(m.numElements(), 2);
}

TEST(TetMesh, NodeAndTetAccessors)
{
    const TetMesh m = singleTet();
    EXPECT_EQ(m.node(1), (Vec3{1, 0, 0}));
    EXPECT_EQ(m.tet(0).v[3], 3);
}

TEST(TetMesh, CentroidVolumeQuality)
{
    const TetMesh m = singleTet();
    EXPECT_EQ(m.tetCentroidOf(0), (Vec3{0.25, 0.25, 0.25}));
    EXPECT_DOUBLE_EQ(m.tetVolumeOf(0), 1.0 / 6.0);
    EXPECT_GT(m.tetQualityOf(0), 0.5);
}

TEST(TetMesh, Bounds)
{
    const TetMesh m = twoTets();
    const Aabb box = m.bounds();
    EXPECT_EQ(box.lo, (Vec3{0, 0, 0}));
    EXPECT_EQ(box.hi, (Vec3{1, 1, 1}));
}

TEST(TetMesh, EmptyMeshBounds)
{
    const TetMesh m;
    const Aabb box = m.bounds();
    EXPECT_EQ(box.lo, (Vec3{0, 0, 0}));
    EXPECT_EQ(box.hi, (Vec3{0, 0, 0}));
}

TEST(TetMesh, AdjacencySingleTet)
{
    const NodeAdjacency adj = singleTet().buildNodeAdjacency();
    // Complete graph on four nodes: every node has the other three.
    EXPECT_EQ(adj.numEdges(), 6);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(adj.degree(n), 3);
}

TEST(TetMesh, AdjacencySharedFaceDeduplicates)
{
    const NodeAdjacency adj = twoTets().buildNodeAdjacency();
    // 6 + 6 edges with the face triangle (1,2,3) shared: 9 unique.
    EXPECT_EQ(adj.numEdges(), 9);
    EXPECT_EQ(adj.degree(0), 3); // 0 sees 1, 2, 3
    EXPECT_EQ(adj.degree(4), 3); // 4 sees 1, 2, 3
    EXPECT_EQ(adj.degree(1), 4); // 1 sees 0, 2, 3, 4
}

TEST(TetMesh, AdjacencyListsSortedAndSelfFree)
{
    const NodeAdjacency adj = twoTets().buildNodeAdjacency();
    for (NodeId n = 0; n < 5; ++n) {
        for (std::int64_t k = adj.xadj[n]; k < adj.xadj[n + 1]; ++k) {
            EXPECT_NE(adj.adjncy[k], n);
            if (k > adj.xadj[n]) {
                EXPECT_LT(adj.adjncy[k - 1], adj.adjncy[k]);
            }
        }
    }
}

TEST(TetMesh, AdjacencySymmetric)
{
    const NodeAdjacency adj = twoTets().buildNodeAdjacency();
    for (NodeId n = 0; n < 5; ++n) {
        for (std::int64_t k = adj.xadj[n]; k < adj.xadj[n + 1]; ++k) {
            const NodeId peer = adj.adjncy[k];
            bool mirrored = false;
            for (std::int64_t j = adj.xadj[peer]; j < adj.xadj[peer + 1];
                 ++j)
                mirrored |= adj.adjncy[j] == n;
            EXPECT_TRUE(mirrored);
        }
    }
}

TEST(TetMesh, KuhnLatticeInteriorDegreeIs14)
{
    // In the Kuhn subdivision of a cubic lattice, interior vertices have
    // exactly 14 neighbours — the paper's "average of 13 neighbours plus
    // itself" for real meshes is the same regime.
    const TetMesh m = buildKuhnLattice(Aabb{{0, 0, 0}, {4, 4, 4}}, 4, 4, 4);
    const NodeAdjacency adj = m.buildNodeAdjacency();
    // Node at lattice position (2,2,2) is interior: id = (2*5+2)*5+2.
    const NodeId interior = (2 * 5 + 2) * 5 + 2;
    EXPECT_EQ(adj.degree(interior), 14);
}

TEST(TetMesh, Stats)
{
    const MeshStats s = twoTets().computeStats();
    EXPECT_EQ(s.numNodes, 5);
    EXPECT_EQ(s.numElements, 2);
    EXPECT_EQ(s.numEdges, 9);
    EXPECT_NEAR(s.avgDegree, 2.0 * 9 / 5, 1e-12);
    EXPECT_GT(s.minQuality, 0.0);
    EXPECT_LE(s.minQuality, s.meanQuality);
    EXPECT_NEAR(s.totalVolume, 0.5, 1e-12); // 1/6 + 1/3
}

TEST(TetMesh, ValidatePassesOnGoodMesh)
{
    EXPECT_NO_THROW(twoTets().validate());
}

TEST(TetMeshDeathTest, ValidateCatchesOutOfRangeIndex)
{
    TetMesh m = singleTet();
    m.addTet(0, 1, 2, 9);
    EXPECT_DEATH(m.validate(), "out of range");
}

TEST(TetMeshDeathTest, ValidateCatchesRepeatedVertex)
{
    TetMesh m = singleTet();
    m.addTet(0, 1, 1, 3);
    EXPECT_DEATH(m.validate(), "repeated vertex");
}

TEST(TetMeshDeathTest, ValidateCatchesDegenerateElement)
{
    TetMesh m = singleTet();
    m.addNode({0.5, 0.5, 0.0});
    m.addTet(0, 1, 2, 4); // coplanar with z = 0
    EXPECT_DEATH(m.validate(), "non-positive volume");
}

TEST(TetMesh, AssignTetsReplacesElements)
{
    TetMesh m = twoTets();
    std::vector<Tet> only_first = {m.tet(0)};
    m.assignTets(std::move(only_first));
    EXPECT_EQ(m.numElements(), 1);
    EXPECT_EQ(m.numNodes(), 5); // nodes untouched
}

TEST(TetMesh, ReserveDoesNotChangeCounts)
{
    TetMesh m;
    m.reserve(100, 500);
    EXPECT_EQ(m.numNodes(), 0);
    EXPECT_EQ(m.numElements(), 0);
}

} // namespace
