/**
 * @file
 * Tests for the telemetry subsystem (DESIGN.md §9): histogram bin
 * edges and percentile math against closed-form cases, deterministic
 * merging, the Chrome-trace golden export under a fake clock, trace
 * coverage, the metrics JSON, the Eq. (1) model-validation math, and
 * the two contracts instrumentation must not break — bitwise-identical
 * simulation results and zero steady-state allocations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "mesh/generator.h"
#include "parallel/parallel_smvp.h"
#include "partition/geometric_bisection.h"
#include "quake/time_stepper.h"
#include "sparse/assembly.h"
#include "telemetry/collector.h"
#include "telemetry/export.h"
#include "telemetry/report.h"

// ---------------------------------------------------------------------
// Global allocation hook: counts every heap allocation in the binary so
// the steady-state test can assert the instrumented fused loop (with
// telemetry recording enabled) allocates nothing.
// ---------------------------------------------------------------------

namespace
{
std::atomic<std::int64_t> g_allocations{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace quake::telemetry;
using quake::common::FatalError;
namespace mesh = quake::mesh;
namespace sparse = quake::sparse;
namespace parallel = quake::parallel;
namespace partition = quake::partition;
namespace core = quake::core;
namespace sim = quake::sim;

// ---------------------------------------------------------------------
// Histogram: bin edges and percentiles, closed form.
// ---------------------------------------------------------------------

TEST(Histogram, BinIndexClosedForm)
{
    // Bin 0 = {0}; bin b >= 1 = [2^(b-1), 2^b).
    EXPECT_EQ(Histogram::binIndex(0), 0);
    EXPECT_EQ(Histogram::binIndex(1), 1);
    EXPECT_EQ(Histogram::binIndex(2), 2);
    EXPECT_EQ(Histogram::binIndex(3), 2);
    EXPECT_EQ(Histogram::binIndex(4), 3);
    EXPECT_EQ(Histogram::binIndex(7), 3);
    EXPECT_EQ(Histogram::binIndex(8), 4);
    EXPECT_EQ(Histogram::binIndex(1023), 10);
    EXPECT_EQ(Histogram::binIndex(1024), 11);
    EXPECT_EQ(Histogram::binIndex(~std::uint64_t{0}),
              Histogram::kBins - 1);
}

TEST(Histogram, BinEdgesClosedForm)
{
    EXPECT_EQ(Histogram::binLowerEdge(0), 0u);
    EXPECT_EQ(Histogram::binUpperEdge(0), 0u);
    EXPECT_EQ(Histogram::binLowerEdge(1), 1u);
    EXPECT_EQ(Histogram::binUpperEdge(1), 1u);
    EXPECT_EQ(Histogram::binLowerEdge(2), 2u);
    EXPECT_EQ(Histogram::binUpperEdge(2), 3u);
    EXPECT_EQ(Histogram::binLowerEdge(10), 512u);
    EXPECT_EQ(Histogram::binUpperEdge(10), 1023u);

    // Every value lands in the bin whose edges bracket it.
    for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull,
                                  65535ull, 65536ull, 1ull << 40}) {
        const int b = Histogram::binIndex(v);
        EXPECT_GE(v, Histogram::binLowerEdge(b)) << v;
        EXPECT_LE(v, Histogram::binUpperEdge(b)) << v;
    }
}

TEST(Histogram, PercentileClosedForm)
{
    Histogram h;
    EXPECT_EQ(h.percentile(50.0), 0.0); // empty

    // Four values: 0, 1, 5, 100 — one per distinct bin (0, 1, 3, 7).
    h.record(0);
    h.record(1);
    h.record(5);
    h.record(100);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 106u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 26.5);

    // p0 -> rank max(1, 0) = 1 -> bin 0 -> upper edge 0.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    // p50 -> rank 2 -> bin 1 -> upper edge 1.
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 1.0);
    // p75 -> rank 3 -> bin 3 -> upper edge 7.
    EXPECT_DOUBLE_EQ(h.percentile(75.0), 7.0);
    // p95/p100 -> rank 4 -> bin 7, upper edge 127 clamped to max 100.
    EXPECT_DOUBLE_EQ(h.percentile(95.0), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);

    EXPECT_THROW(h.percentile(-1.0), FatalError);
    EXPECT_THROW(h.percentile(101.0), FatalError);
}

TEST(Histogram, MergeAccumulatesBinwise)
{
    Histogram a, b;
    a.record(1);
    a.record(1000);
    b.record(1);
    b.record(7);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.sum(), 1009u);
    EXPECT_EQ(a.max(), 1000u);
    EXPECT_EQ(a.binCount(Histogram::binIndex(1)), 2u);
    EXPECT_EQ(a.binCount(Histogram::binIndex(7)), 1u);
}

// ---------------------------------------------------------------------
// Collector basics: disabled no-op, slots, sampling, drop accounting.
// ---------------------------------------------------------------------

TEST(Collector, DisabledCollectorRecordsNothing)
{
    CollectorConfig cfg;
    cfg.enabled = false;
    Collector c(cfg);
    EXPECT_FALSE(c.enabled());

    c.ensureSlots(4); // no-op when disabled
    EXPECT_EQ(c.numSlots(), 0);

    // All record paths must be safe single-branch no-ops.
    c.setStep(3);
    EXPECT_FALSE(c.sampledStep());
    c.recordSpan(0, Span::kStep, -1, 0, 1);
    c.add(0, Counter::kSmvpCalls, 1);
    c.observe(0, Hist::kStepNanos, 42);
    { ScopedSpan s(&c, 0, Span::kSmvp); }
    EXPECT_EQ(c.spansRecorded(), 0u);
    EXPECT_EQ(c.counterTotal(Counter::kSmvpCalls), 0u);
}

TEST(Collector, StepSamplingEveryN)
{
    CollectorConfig cfg;
    cfg.sampleEvery = 4;
    Collector c(cfg);
    c.ensureSlots(1);

    int sampled = 0;
    for (int step = 0; step < 9; ++step) {
        c.setStep(step);
        EXPECT_EQ(c.sampledStep(), step % 4 == 0) << "step " << step;
        if (c.sampledStep())
            ++sampled;
    }
    EXPECT_EQ(sampled, 3); // steps 0, 4, 8
    EXPECT_EQ(c.counterTotal(Counter::kStepsSampled), 3u);
    EXPECT_EQ(c.step(), 8);
}

TEST(Collector, SpanBufferDropsWhenFullAndCountsDrops)
{
    CollectorConfig cfg;
    cfg.spanCapacity = 2;
    Collector c(cfg);
    c.ensureSlots(1);

    c.recordSpan(0, Span::kStep, 0, 0, 1);
    c.recordSpan(0, Span::kStep, 1, 1, 2);
    c.recordSpan(0, Span::kStep, 2, 2, 3); // buffer full: dropped
    EXPECT_EQ(c.spansRecorded(), 2u);
    EXPECT_EQ(c.spansDropped(), 1u);
    EXPECT_EQ(c.slot(0).spanCount, 2u);
    EXPECT_EQ(c.slot(0).spans[1].arg, 1);
}

TEST(Collector, EnsureSlotsGrowsAndPreservesExistingSlots)
{
    Collector c;
    c.ensureSlots(1);
    c.add(0, Counter::kPoolRuns, 7);
    c.ensureSlots(3);
    EXPECT_EQ(c.numSlots(), 3);
    c.ensureSlots(2); // never shrinks
    EXPECT_EQ(c.numSlots(), 3);
    EXPECT_EQ(c.counterTotal(Counter::kPoolRuns), 7u);
}

TEST(Collector, MergesCountersAndHistogramsAcrossSlots)
{
    Collector c;
    c.ensureSlots(3);
    c.add(0, Counter::kSmvpCalls, 1);
    c.add(1, Counter::kSmvpCalls, 10);
    c.add(2, Counter::kSmvpCalls, 100);
    EXPECT_EQ(c.counterTotal(Counter::kSmvpCalls), 111u);

    c.observe(0, Hist::kLocalPhaseNanos, 5);
    c.observe(1, Hist::kLocalPhaseNanos, 50);
    c.observe(2, Hist::kLocalPhaseNanos, 500);
    const Histogram merged = c.mergedHistogram(Hist::kLocalPhaseNanos);
    EXPECT_EQ(merged.count(), 3u);
    EXPECT_EQ(merged.sum(), 555u);
    EXPECT_EQ(merged.max(), 500u);
}

// ---------------------------------------------------------------------
// Fake clock + ScopedSpan.
// ---------------------------------------------------------------------

std::uint64_t g_fake_now = 0;

std::uint64_t
fakeNow()
{
    return g_fake_now += 100;
}

TEST(Collector, ScopedSpanUsesConfiguredClock)
{
    g_fake_now = 0;
    CollectorConfig cfg;
    cfg.now = &fakeNow;
    Collector c(cfg);
    c.ensureSlots(1);

    { ScopedSpan span(&c, 0, Span::kSmvp, 9); }
    ASSERT_EQ(c.slot(0).spanCount, 1u);
    const SpanEvent &ev = c.slot(0).spans[0];
    EXPECT_EQ(ev.begin, 100u);
    EXPECT_EQ(ev.end, 200u);
    EXPECT_EQ(ev.arg, 9);
    EXPECT_EQ(ev.cat, Span::kSmvp);

    // Null collector: no clock reads, no records.
    const std::uint64_t before = g_fake_now;
    { ScopedSpan span(nullptr, 0, Span::kSmvp); }
    EXPECT_EQ(g_fake_now, before);
}

// ---------------------------------------------------------------------
// Chrome trace export: golden test with known timestamps.
// ---------------------------------------------------------------------

TEST(TraceExport, GoldenChromeTraceJson)
{
    Collector c;
    c.ensureSlots(2);
    c.recordSpan(0, Span::kStep, 3, 1000, 5000);
    c.recordSpan(0, Span::kSmvp, -1, 1500, 3500);
    c.recordSpan(1, Span::kExchange, 2, 2000, 2250);

    std::ostringstream out;
    writeChromeTrace(c, out);

    const std::string golden =
        "{\n"
        "\"displayTimeUnit\": \"ms\",\n"
        "\"traceEvents\": [\n"
        "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
        "\"thread_name\", \"args\": {\"name\": \"control\"}},\n"
        "{\"ph\": \"M\", \"pid\": 0, \"tid\": 1, \"name\": "
        "\"thread_name\", \"args\": {\"name\": \"worker-0\"}},\n"
        "{\"name\": \"step\", \"cat\": \"quake\", \"ph\": \"X\", "
        "\"pid\": 0, \"tid\": 0, \"ts\": 1, \"dur\": 4, "
        "\"args\": {\"arg\": 3}},\n"
        "{\"name\": \"smvp\", \"cat\": \"quake\", \"ph\": \"X\", "
        "\"pid\": 0, \"tid\": 0, \"ts\": 1.5, \"dur\": 2},\n"
        "{\"name\": \"exchange\", \"cat\": \"quake\", \"ph\": \"X\", "
        "\"pid\": 0, \"tid\": 1, \"ts\": 2, \"dur\": 0.25, "
        "\"args\": {\"arg\": 2}}\n"
        "]\n"
        "}\n";
    EXPECT_EQ(out.str(), golden);
}

TEST(TraceExport, OrderingIsAscendingSlotThenRecordingOrder)
{
    // Record out of "natural" time order; the export must follow slot
    // then recording order, not timestamps.
    Collector c;
    c.ensureSlots(2);
    c.recordSpan(1, Span::kExchange, 0, 777000, 800000);
    c.recordSpan(0, Span::kStep, 1, 500000, 600000);
    c.recordSpan(0, Span::kStep, 0, 100000, 200000);

    std::ostringstream out;
    writeChromeTrace(c, out);
    const std::string s = out.str();
    const std::size_t step_late = s.find("\"ts\": 500,");
    const std::size_t step_early = s.find("\"ts\": 100,");
    const std::size_t exch = s.find("\"ts\": 777,");
    ASSERT_NE(step_late, std::string::npos);
    ASSERT_NE(step_early, std::string::npos);
    ASSERT_NE(exch, std::string::npos);
    EXPECT_LT(step_late, step_early); // slot 0 keeps recording order
    EXPECT_LT(step_early, exch);      // slot 0 before slot 1
}

TEST(TraceExport, CoverageIsStepSpanShareOfWindow)
{
    Collector c;
    c.ensureSlots(2);
    EXPECT_EQ(traceCoverage(c), 0.0); // nothing recorded

    c.recordSpan(0, Span::kStep, 0, 0, 80);
    c.recordSpan(0, Span::kStep, 1, 80, 100);
    EXPECT_DOUBLE_EQ(traceCoverage(c), 1.0);

    // A worker span stretching the window dilutes coverage; non-step
    // control spans never count as covered.
    c.recordSpan(1, Span::kExchange, 0, 0, 200);
    EXPECT_DOUBLE_EQ(traceCoverage(c), 0.5);
    c.recordSpan(0, Span::kSmvp, -1, 100, 200);
    EXPECT_DOUBLE_EQ(traceCoverage(c), 0.5);
}

// ---------------------------------------------------------------------
// Metrics JSON export.
// ---------------------------------------------------------------------

TEST(MetricsExport, WritesHistogramAndCounterRecords)
{
    Collector c;
    c.ensureSlots(2);
    c.add(0, Counter::kSmvpCalls, 12);
    c.add(1, Counter::kRetransmissions, 3);
    c.observe(0, Hist::kSmvpNanos, 1000);
    c.observe(1, Hist::kSmvpNanos, 3000);
    c.recordSpan(0, Span::kStep, 0, 0, 1);

    const std::string path = "test_telemetry_metrics.json";
    writeMetricsBenchJson(c, "telemetry_unit", {{"mesh", "none"}}, path);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string json = buf.str();

    EXPECT_NE(json.find("\"bench\": \"telemetry_unit\""),
              std::string::npos);
    EXPECT_NE(json.find("\"mesh\": \"none\""), std::string::npos);
    EXPECT_NE(json.find("hist:smvp_nanos"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"sum_ns\": 4000"), std::string::npos);
    EXPECT_NE(json.find("\"p95_ns\":"), std::string::npos);
    EXPECT_NE(json.find("counter:smvp_calls"), std::string::npos);
    EXPECT_NE(json.find("counter:retransmissions"), std::string::npos);
    EXPECT_NE(json.find("counter:spans_recorded"), std::string::npos);
    EXPECT_NE(json.find("counter:spans_dropped"), std::string::npos);
    // Zero counters other than smvp_calls are suppressed.
    EXPECT_EQ(json.find("counter:timeouts_fired"), std::string::npos);
    // Balanced braces (cheap well-formedness check on top of the
    // substring asserts; the trace golden covers exact syntax).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Model validation: Eq. (1) math on synthetic histograms.
// ---------------------------------------------------------------------

TEST(ModelValidation, ClosedFormOnSyntheticPhaseSplit)
{
    Collector c;
    c.ensureSlots(1);
    c.add(0, Counter::kSmvpCalls, 10);
    // 10 SMVPs: 0.9 s compute each, 0.1 s exchange each (sums are
    // exact; binning only affects percentiles, not sums).
    for (int i = 0; i < 10; ++i) {
        c.observe(0, Hist::kLocalPhaseNanos, 900000000ull);
        c.observe(0, Hist::kExchangeNanos, 100000000ull);
    }

    ModelReportInputs in;
    in.shape.flops = 1000.0;
    in.shape.wordsMax = 50.0;
    in.shape.blocksMax = 5.0;
    in.totalFlops = 2000.0;
    in.totalWords = 100.0;
    in.assumedE = 0.75;

    const ModelValidation v = validateModel(c, in);
    EXPECT_EQ(v.smvpCalls, 10);
    EXPECT_DOUBLE_EQ(v.computeSecondsPerSmvp, 0.9);
    EXPECT_DOUBLE_EQ(v.exchangeSecondsPerSmvp, 0.1);
    EXPECT_DOUBLE_EQ(v.measuredE, 0.9);
    EXPECT_DOUBLE_EQ(v.measuredTf, 0.9 / 2000.0);
    EXPECT_DOUBLE_EQ(v.measuredTc, 0.1 / 100.0);

    // Eq. (1): T_c = (F / C_max) * ((1 - E) / E) * T_f.
    const double tf = 0.9 / 2000.0;
    const double required = (1000.0 / 50.0) * (0.25 / 0.75) * tf;
    EXPECT_NEAR(v.requiredTc, required, 1e-15);
    EXPECT_NEAR(v.predictedExchangeSecondsPerSmvp, 50.0 * required,
                1e-12);
    // E implied by the measured pair: F*tf / (F*tf + C_max*tc).
    const double tcomp = 1000.0 * tf;
    const double tcomm = 50.0 * (0.1 / 100.0);
    EXPECT_NEAR(v.modelImpliedE, tcomp / (tcomp + tcomm), 1e-12);

    std::ostringstream out;
    printModelValidation(v, out);
    EXPECT_NE(out.str().find("measured E = 0.900"), std::string::npos);
    EXPECT_NE(out.str().find("Eq. (1)"), std::string::npos);
}

TEST(ModelValidation, RejectsEmptyOrDegenerateInputs)
{
    Collector c;
    c.ensureSlots(1);
    ModelReportInputs in;
    in.shape.flops = 1.0;
    in.shape.wordsMax = 1.0;
    in.totalFlops = 1.0;
    in.totalWords = 1.0;
    EXPECT_THROW(validateModel(c, in), FatalError); // no SMVPs

    c.add(0, Counter::kSmvpCalls, 1);
    EXPECT_THROW(validateModel(c, in), FatalError); // no phase time

    c.observe(0, Hist::kLocalPhaseNanos, 1000);
    in.totalFlops = 0.0;
    EXPECT_THROW(validateModel(c, in), FatalError); // zero totals
    in.totalFlops = 1.0;
    in.assumedE = 1.0;
    EXPECT_THROW(validateModel(c, in), FatalError); // E out of (0, 1)
}

// ---------------------------------------------------------------------
// Instrumented engine: telemetry must not change a single bit, and the
// steady-state loop must not allocate.
// ---------------------------------------------------------------------

struct EngineFixture
{
    mesh::TetMesh tet;
    sparse::Bcsr3Matrix k;
    std::vector<double> mass;
    double dt;
    parallel::DistributedProblem problem;
    std::vector<double> x;

    EngineFixture()
        : tet(mesh::buildKuhnLattice(mesh::Aabb{{0, 0, 0}, {4, 4, 4}}, 3,
                                     3, 3)),
          k([this] {
              const mesh::UniformModel model(
                  mesh::Aabb{{0, 0, 0}, {4, 4, 4}}, 1.0, 1.0);
              return sparse::assembleStiffness(tet, model);
          }()),
          mass([this] {
              const mesh::UniformModel model(
                  mesh::Aabb{{0, 0, 0}, {4, 4, 4}}, 1.0, 1.0);
              return sparse::assembleLumpedMass(tet, model);
          }()),
          dt([this] {
              const mesh::UniformModel model(
                  mesh::Aabb{{0, 0, 0}, {4, 4, 4}}, 1.0, 1.0);
              return sim::stableTimeStep(tet, model);
          }()),
          problem([this] {
              const mesh::UniformModel model(
                  mesh::Aabb{{0, 0, 0}, {4, 4, 4}}, 1.0, 1.0);
              const partition::GeometricBisection partitioner;
              return parallel::distribute(
                  tet, model, partitioner.partition(tet, 4));
          }())
    {
        x.resize(mass.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = std::sin(0.37 * static_cast<double>(i) + 0.11);
    }

    sim::ExplicitTimeStepper
    makeFused(parallel::ParallelSmvp &engine) const
    {
        sim::SmvpFn smvp = [&engine](const std::vector<double> &in,
                                     std::vector<double> &out) {
            engine.multiplyInto(in, out);
        };
        sim::ExplicitTimeStepper stepper(std::move(smvp), mass, dt);
        sim::RickerWavelet w;
        w.peakFrequencyHz = 0.8;
        w.delaySeconds = 0.3;
        stepper.addSource(
            sim::makePointSource(tet, {2, 2, 2}, {0.3, 0.2, 1.0}, w));
        stepper.setFusedStep([&engine](const sparse::StepUpdate &su) {
            return engine.stepFused(su);
        });
        return stepper;
    }
};

TEST(TelemetryDeterminism, SmvpResultBitwiseIdenticalWithTelemetry)
{
    const EngineFixture f;
    const parallel::ParallelSmvp plain(f.problem, 2);
    const std::vector<double> y_ref = plain.multiply(f.x);

    CollectorConfig cfg;
    cfg.sampleEvery = 1; // record fine-grained spans on every call
    Collector collector(cfg);
    parallel::ParallelSmvp traced(f.problem, 2);
    traced.setCollector(&collector);
    collector.setStep(0);

    const std::vector<double> y = traced.multiply(f.x);
    ASSERT_EQ(y.size(), y_ref.size());
    EXPECT_EQ(0, std::memcmp(y.data(), y_ref.data(),
                             y.size() * sizeof(double)));
    // The run actually recorded something — the hooks were live.
    EXPECT_GT(collector.counterTotal(Counter::kSmvpCalls), 0u);
    EXPECT_GT(collector.spansRecorded(), 0u);
    EXPECT_GT(collector.mergedHistogram(Hist::kLocalPhaseNanos).count(),
              0u);
}

TEST(TelemetryDeterminism, FusedStepDisplacementBitwiseIdentical)
{
    const EngineFixture f;
    const int steps = 120;

    parallel::ParallelSmvp plain_engine(f.problem, 2);
    sim::ExplicitTimeStepper plain = f.makeFused(plain_engine);
    for (int s = 0; s < steps; ++s)
        plain.step();

    CollectorConfig cfg;
    cfg.sampleEvery = 4;
    Collector collector(cfg);
    parallel::ParallelSmvp traced_engine(f.problem, 2);
    traced_engine.setCollector(&collector);
    sim::ExplicitTimeStepper traced = f.makeFused(traced_engine);
    traced.setCollector(&collector);
    for (int s = 0; s < steps; ++s)
        traced.step();

    const std::vector<double> &u_ref = plain.displacement();
    const std::vector<double> &u = traced.displacement();
    ASSERT_EQ(u.size(), u_ref.size());
    EXPECT_EQ(0, std::memcmp(u.data(), u_ref.data(),
                             u.size() * sizeof(double)));
    EXPECT_EQ(plain.peakDisplacement(), traced.peakDisplacement());
    EXPECT_EQ(plain.kineticEnergy(), traced.kineticEnergy());
    // Step spans fire every step; per-PE spans only on sampled steps.
    EXPECT_EQ(collector.counterTotal(Counter::kSmvpCalls),
              static_cast<std::uint64_t>(steps));
    EXPECT_EQ(collector.counterTotal(Counter::kStepsSampled),
              static_cast<std::uint64_t>(steps / 4));
    EXPECT_EQ(collector.mergedHistogram(Hist::kStepNanos).count(),
              static_cast<std::uint64_t>(steps));
}

TEST(TelemetryOverhead, SteadyStateRecordsWithoutAllocating)
{
    const EngineFixture f;
    Collector collector; // defaults: enabled, sampleEvery 16
    parallel::ParallelSmvp engine(f.problem, 2);
    engine.setCollector(&collector);
    sim::ExplicitTimeStepper stepper = f.makeFused(engine);
    stepper.setCollector(&collector);

    // Warm up past any lazy setup (first dispatch, first sample step).
    for (int s = 0; s < 20; ++s)
        stepper.step();

    const std::int64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (int s = 0; s < 64; ++s)
        stepper.step();
    const std::int64_t allocated =
        g_allocations.load(std::memory_order_relaxed) - before;

    EXPECT_EQ(allocated, 0)
        << "instrumented fused loop heap-allocated in steady state";
    // The loop crossed sampled steps, so fine-grained recording (the
    // preallocated span path) was exercised, not just counters.
    EXPECT_GT(collector.counterTotal(Counter::kStepsSampled), 1u);
    EXPECT_EQ(collector.spansDropped(), 0u);
}

} // namespace
