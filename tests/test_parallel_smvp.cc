/**
 * @file
 * Tests for the executable parallel SMVP: exact agreement with the
 * sequential global product across part counts and thread counts,
 * bitwise determinism, and input validation.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "mesh/generator.h"
#include "parallel/parallel_smvp.h"
#include "partition/baselines.h"
#include "partition/geometric_bisection.h"
#include "sparse/assembly.h"

namespace
{

using namespace quake::parallel;
using namespace quake::mesh;
using namespace quake::partition;

struct SmvpFixtureData
{
    TetMesh mesh;
    UniformModel model{Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0};
    quake::sparse::Bcsr3Matrix global_k;
    std::vector<double> x;

    explicit SmvpFixtureData(int lattice_n = 4)
        : mesh(buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, lattice_n,
                                lattice_n, lattice_n)),
          global_k(quake::sparse::assembleStiffness(mesh, model))
    {
        x.resize(static_cast<std::size_t>(global_k.numRows()));
        quake::common::SplitMix64 rng(31337);
        for (double &v : x)
            v = rng.uniform(-1, 1);
    }
};

class ParallelSmvpParts : public ::testing::TestWithParam<int>
{};

TEST_P(ParallelSmvpParts, MatchesSequentialProduct)
{
    SmvpFixtureData s;
    const GeometricBisection partitioner;
    const DistributedProblem problem = distribute(
        s.mesh, s.model, partitioner.partition(s.mesh, GetParam()));
    const ParallelSmvp psmvp(problem);

    const std::vector<double> y_par = psmvp.multiply(s.x);
    const std::vector<double> y_seq = s.global_k.multiply(s.x);
    ASSERT_EQ(y_par.size(), y_seq.size());
    for (std::size_t i = 0; i < y_seq.size(); ++i)
        EXPECT_NEAR(y_par[i], y_seq[i],
                    1e-10 * (1.0 + std::fabs(y_seq[i])))
            << "dof " << i;
}

INSTANTIATE_TEST_SUITE_P(PartCounts, ParallelSmvpParts,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16));

TEST(ParallelSmvp, BitwiseDeterministicAcrossThreadCounts)
{
    SmvpFixtureData s;
    const GeometricBisection partitioner;
    const DistributedProblem problem =
        distribute(s.mesh, s.model, partitioner.partition(s.mesh, 8));

    const std::vector<double> y1 = ParallelSmvp(problem, 1).multiply(s.x);
    const std::vector<double> y2 = ParallelSmvp(problem, 2).multiply(s.x);
    const std::vector<double> y4 = ParallelSmvp(problem, 4).multiply(s.x);
    EXPECT_EQ(y1, y2);
    EXPECT_EQ(y1, y4);
}

TEST(ParallelSmvp, OverlappedBitwiseEqualsBarrier)
{
    // The tentpole determinism guarantee: publishing message buffers
    // early and overlapping interior compute must not change a single
    // bit of the result, for any thread count.
    SmvpFixtureData s;
    const GeometricBisection partitioner;
    const DistributedProblem problem =
        distribute(s.mesh, s.model, partitioner.partition(s.mesh, 8));

    const ParallelSmvp barrier(problem, 1, ExchangeMode::kBarrier);
    const std::vector<double> y_ref = barrier.multiply(s.x);
    for (int threads : {1, 2, 3, 4, 8}) {
        const ParallelSmvp overlapped(problem, threads,
                                      ExchangeMode::kOverlapped);
        EXPECT_EQ(overlapped.multiply(s.x), y_ref)
            << threads << " threads";
        const ParallelSmvp barrier_t(problem, threads,
                                     ExchangeMode::kBarrier);
        EXPECT_EQ(barrier_t.multiply(s.x), y_ref)
            << threads << " threads (barrier)";
    }
}

TEST(ParallelSmvp, ModeAndThreadAccessors)
{
    SmvpFixtureData s(2);
    const GeometricBisection partitioner;
    const DistributedProblem problem =
        distribute(s.mesh, s.model, partitioner.partition(s.mesh, 4));
    const ParallelSmvp engine(problem, 2);
    EXPECT_EQ(engine.mode(), ExchangeMode::kOverlapped);
    EXPECT_EQ(engine.numThreads(), 2);
    const ParallelSmvp barrier(problem, 2, ExchangeMode::kBarrier);
    EXPECT_EQ(barrier.mode(), ExchangeMode::kBarrier);
}

TEST(ParallelSmvp, EnginePersistsAcrossManyMultiplies)
{
    // The engine is built for the timestep loop: one pool, reused.
    // Alternate inputs so stale scratch or a stale publish flag from a
    // previous epoch would be caught immediately.
    SmvpFixtureData s(3);
    const GeometricBisection partitioner;
    const DistributedProblem problem =
        distribute(s.mesh, s.model, partitioner.partition(s.mesh, 6));
    const ParallelSmvp engine(problem, 3);

    std::vector<double> x2(s.x.size());
    for (std::size_t i = 0; i < x2.size(); ++i)
        x2[i] = -2.0 * s.x[i];
    const std::vector<double> y1 = engine.multiply(s.x);
    const std::vector<double> y2 = engine.multiply(x2);
    for (int round = 0; round < 50; ++round) {
        EXPECT_EQ(engine.multiply(s.x), y1) << "round " << round;
        EXPECT_EQ(engine.multiply(x2), y2) << "round " << round;
    }
}

TEST(ParallelSmvp, RepeatedCallsIdentical)
{
    SmvpFixtureData s;
    const GeometricBisection partitioner;
    const DistributedProblem problem =
        distribute(s.mesh, s.model, partitioner.partition(s.mesh, 4));
    const ParallelSmvp psmvp(problem);
    EXPECT_EQ(psmvp.multiply(s.x), psmvp.multiply(s.x));
}

TEST(ParallelSmvp, WorksWithRandomPartition)
{
    // Even a locality-free partition must compute the right answer —
    // the schedule, not the geometry, carries correctness.
    SmvpFixtureData s(3);
    const RandomPartitioner partitioner(5);
    const DistributedProblem problem =
        distribute(s.mesh, s.model, partitioner.partition(s.mesh, 6));
    const ParallelSmvp psmvp(problem);
    const std::vector<double> y_par = psmvp.multiply(s.x);
    const std::vector<double> y_seq = s.global_k.multiply(s.x);
    for (std::size_t i = 0; i < y_seq.size(); ++i)
        EXPECT_NEAR(y_par[i], y_seq[i],
                    1e-10 * (1.0 + std::fabs(y_seq[i])));
}

TEST(ParallelSmvp, ThreadCountClampedToParts)
{
    SmvpFixtureData s(2);
    const GeometricBisection partitioner;
    const DistributedProblem problem =
        distribute(s.mesh, s.model, partitioner.partition(s.mesh, 2));
    const ParallelSmvp psmvp(problem, 16);
    EXPECT_EQ(psmvp.numThreads(), 2);
}

TEST(ParallelSmvp, RejectsWrongVectorSize)
{
    SmvpFixtureData s(2);
    const GeometricBisection partitioner;
    const DistributedProblem problem =
        distribute(s.mesh, s.model, partitioner.partition(s.mesh, 2));
    const ParallelSmvp psmvp(problem);
    EXPECT_THROW(psmvp.multiply(std::vector<double>(5, 0.0)),
                 quake::common::FatalError);
}

TEST(ParallelSmvp, RejectsPatternOnlyProblem)
{
    SmvpFixtureData s(2);
    const GeometricBisection partitioner;
    const DistributedProblem topo =
        distributeTopology(s.mesh, partitioner.partition(s.mesh, 2));
    EXPECT_THROW(ParallelSmvp{topo}, quake::common::FatalError);
}

TEST(ParallelSmvp, ZeroInputGivesZeroOutput)
{
    SmvpFixtureData s(2);
    const GeometricBisection partitioner;
    const DistributedProblem problem =
        distribute(s.mesh, s.model, partitioner.partition(s.mesh, 4));
    const ParallelSmvp psmvp(problem);
    const std::vector<double> y = psmvp.multiply(
        std::vector<double>(static_cast<std::size_t>(
                                3 * s.mesh.numNodes()),
                            0.0));
    for (double v : y)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

} // namespace
