/**
 * @file
 * Tests for the end-to-end Quake simulation driver: sequential and
 * distributed runs agree, reports are coherent, and the SMVP dominates
 * the step time (the paper's §2.3 premise).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "mesh/generator.h"
#include "quake/simulation.h"

namespace
{

using namespace quake::sim;
using namespace quake::mesh;
using quake::common::FatalError;

SimulationConfig
smallConfig()
{
    SimulationConfig config;
    config.durationSeconds = 1000.0; // maxSteps is the binding cap
    config.maxSteps = 150;
    config.sampleInterval = 5;
    config.wavelet.peakFrequencyHz = 0.5;
    config.wavelet.delaySeconds = 0.2;
    return config;
}

struct SmallProblem
{
    TetMesh mesh;
    UniformModel model{Aabb{{0, 0, 0}, {4, 4, 4}}, 1.0, 1.0};

    SmallProblem()
        : mesh(buildKuhnLattice(Aabb{{0, 0, 0}, {4, 4, 4}}, 3, 3, 3))
    {}
};

TEST(Simulation, ReportFieldsCoherent)
{
    SmallProblem p;
    const SimulationReport report =
        runSimulation(p.mesh, p.model, smallConfig());
    EXPECT_GT(report.steps, 0);
    EXPECT_LE(report.steps, 150);
    EXPECT_GT(report.dt, 0.0);
    EXPECT_NEAR(report.simulatedSeconds, report.steps * report.dt,
                1e-9);
    EXPECT_GE(report.totalSeconds, report.smvpSeconds);
    EXPECT_GT(report.smvpFraction, 0.0);
    EXPECT_LE(report.smvpFraction, 1.0);
    EXPECT_FALSE(report.samples.empty());
}

TEST(Simulation, WaveActuallyPropagates)
{
    SmallProblem p;
    const SimulationReport report =
        runSimulation(p.mesh, p.model, smallConfig());
    EXPECT_GT(report.peakDisplacement, 0.0);
    EXPECT_TRUE(std::isfinite(report.peakDisplacement));
}

TEST(Simulation, SamplesOrderedInTime)
{
    SmallProblem p;
    const SimulationReport report =
        runSimulation(p.mesh, p.model, smallConfig());
    for (std::size_t i = 1; i < report.samples.size(); ++i)
        EXPECT_GT(report.samples[i].time, report.samples[i - 1].time);
}

TEST(Simulation, DistributedMatchesSequential)
{
    // The distributed run replaces only the SMVP implementation, so the
    // wavefield must match the sequential run to FP-reassociation
    // tolerance.
    SmallProblem p;
    SimulationConfig config = smallConfig();
    config.maxSteps = 60;

    const SimulationReport seq = runSimulation(p.mesh, p.model, config);
    config.numPes = 4;
    const SimulationReport par = runSimulation(p.mesh, p.model, config);

    EXPECT_EQ(seq.steps, par.steps);
    EXPECT_NEAR(seq.peakDisplacement, par.peakDisplacement,
                1e-8 * (1.0 + seq.peakDisplacement));
    ASSERT_EQ(seq.samples.size(), par.samples.size());
    for (std::size_t i = 0; i < seq.samples.size(); ++i)
        EXPECT_NEAR(seq.samples[i].kineticEnergy,
                    par.samples[i].kineticEnergy,
                    1e-6 * (1.0 + seq.samples[i].kineticEnergy));
}

TEST(Simulation, MaxStepsCapsRun)
{
    SmallProblem p;
    SimulationConfig config = smallConfig();
    config.maxSteps = 7;
    const SimulationReport report =
        runSimulation(p.mesh, p.model, config);
    EXPECT_EQ(report.steps, 7);
}

TEST(Simulation, RejectsBadConfig)
{
    SmallProblem p;
    SimulationConfig config = smallConfig();
    config.durationSeconds = -1;
    EXPECT_THROW(runSimulation(p.mesh, p.model, config), FatalError);
    config = smallConfig();
    config.numPes = 0;
    EXPECT_THROW(runSimulation(p.mesh, p.model, config), FatalError);
}

TEST(Simulation, ValidatesConfigFieldsOnEntry)
{
    SmallProblem p;
    SimulationConfig config = smallConfig();
    config.durationSeconds = std::numeric_limits<double>::infinity();
    EXPECT_THROW(runSimulation(p.mesh, p.model, config), FatalError);
    config = smallConfig();
    config.durationSeconds = std::nan("");
    EXPECT_THROW(runSimulation(p.mesh, p.model, config), FatalError);
    config = smallConfig();
    config.smvpThreads = -1;
    EXPECT_THROW(runSimulation(p.mesh, p.model, config), FatalError);
    config = smallConfig();
    config.sampleInterval = -1;
    EXPECT_THROW(runSimulation(p.mesh, p.model, config), FatalError);
    config = smallConfig();
    config.maxSteps = -1;
    EXPECT_THROW(runSimulation(p.mesh, p.model, config), FatalError);
    // smvpThreads = 0 stays valid: hardware concurrency.
    config = smallConfig();
    config.smvpThreads = 0;
    config.maxSteps = 3;
    EXPECT_EQ(runSimulation(p.mesh, p.model, config).steps, 3);
}

TEST(Simulation, FusedAndUnfusedRunsAgree)
{
    // The fused pipeline only reschedules the same arithmetic, so the
    // sequential displacement-derived outputs match exactly and the
    // distributed ones to reduction-order tolerance.
    SmallProblem p;
    for (const int pes : {1, 4}) {
        SimulationConfig config = smallConfig();
        config.maxSteps = 80;
        config.numPes = pes;
        config.fusedStep = true;
        const SimulationReport fused =
            runSimulation(p.mesh, p.model, config);
        config.fusedStep = false;
        const SimulationReport unfused =
            runSimulation(p.mesh, p.model, config);

        EXPECT_EQ(fused.steps, unfused.steps);
        EXPECT_EQ(fused.peakDisplacement, unfused.peakDisplacement);
        ASSERT_EQ(fused.samples.size(), unfused.samples.size());
        for (std::size_t i = 0; i < fused.samples.size(); ++i) {
            EXPECT_EQ(fused.samples[i].peakDisplacement,
                      unfused.samples[i].peakDisplacement);
            if (pes == 1)
                EXPECT_EQ(fused.samples[i].kineticEnergy,
                          unfused.samples[i].kineticEnergy);
            else
                EXPECT_NEAR(fused.samples[i].kineticEnergy,
                            unfused.samples[i].kineticEnergy,
                            1e-9 * (1.0 +
                                    unfused.samples[i].kineticEnergy));
        }
    }
}

TEST(Simulation, EnergyBoundedAfterSourceEnds)
{
    // Explicit central differences on an undamped system: energy after
    // the wavelet dies must stay bounded (no exponential growth).
    SmallProblem p;
    SimulationConfig config = smallConfig();
    config.maxSteps = 400;
    config.durationSeconds = 10.0;
    const SimulationReport report =
        runSimulation(p.mesh, p.model, config);

    double late_max = 0.0, mid_max = 0.0;
    for (const FieldSample &s : report.samples) {
        if (s.time > 0.75 * report.simulatedSeconds)
            late_max = std::max(late_max, s.kineticEnergy);
        else if (s.time > 0.4 * report.simulatedSeconds)
            mid_max = std::max(mid_max, s.kineticEnergy);
    }
    if (mid_max > 0) {
        EXPECT_LT(late_max, 10.0 * mid_max);
    }
}

TEST(Simulation, SfQuickRunWorks)
{
    // End-to-end through the generator on the tiny class.
    SimulationConfig config = smallConfig();
    config.maxSteps = 20;
    config.hypocenter = {25, 25, 5};
    const SimulationReport report =
        runSfSimulation(SfClass::kSf20, config, 1.5);
    EXPECT_EQ(report.steps, 20);
    EXPECT_TRUE(std::isfinite(report.peakDisplacement));
}

TEST(Simulation, SmvpDominatesOnLargerMesh)
{
    // Paper §2.3: SMVP is >80% of sequential running time.  On a
    // non-trivial mesh the SMVP share must at least dominate (>50%)
    // even in this instrumented build; the bench reports the real
    // number on sf-class meshes.
    const TetMesh mesh =
        buildKuhnLattice(Aabb{{0, 0, 0}, {4, 4, 4}}, 8, 8, 8);
    const UniformModel model(Aabb{{0, 0, 0}, {4, 4, 4}}, 1.0, 1.0);
    SimulationConfig config = smallConfig();
    config.maxSteps = 40;
    const SimulationReport report = runSimulation(mesh, model, config);
    EXPECT_GT(report.smvpFraction, 0.5);
}

} // namespace
