/**
 * @file
 * Tests for the machine models and the paper's quoted constants.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "parallel/machine.h"

namespace
{

using namespace quake::parallel;
using quake::common::FatalError;

TEST(Machine, CrayT3eMatchesPaperConstants)
{
    const MachineModel m = crayT3e();
    EXPECT_DOUBLE_EQ(m.tf, 14e-9); // §3.1
    EXPECT_DOUBLE_EQ(m.tl, 22e-6); // §3.3
    EXPECT_DOUBLE_EQ(m.tw, 55e-9); // §3.3
}

TEST(Machine, CrayT3dMatchesPaperTf)
{
    EXPECT_DOUBLE_EQ(crayT3d().tf, 30e-9); // §3.1
}

TEST(Machine, HypotheticalMachinesMatchSection4)
{
    EXPECT_NEAR(currentMachine100().mflops(), 100.0, 1e-9);
    EXPECT_NEAR(futureMachine200().mflops(), 200.0, 1e-9);
}

TEST(Machine, DerivedRates)
{
    const MachineModel m = crayT3e();
    EXPECT_NEAR(m.mflops(), 1.0 / (14e-9 * 1e6), 1e-9);
    EXPECT_NEAR(m.burstBandwidthBytes(), 8.0 / 55e-9, 1e-3);
}

TEST(Machine, CustomMachineRoundTrips)
{
    const MachineModel m = customMachine("x", 250.0, 3e-6, 400e6);
    EXPECT_NEAR(m.mflops(), 250.0, 1e-9);
    EXPECT_DOUBLE_EQ(m.tl, 3e-6);
    EXPECT_NEAR(m.burstBandwidthBytes(), 400e6, 1e-3);
}

TEST(Machine, ValidateRejectsNonPositiveTf)
{
    MachineModel m{"bad", 0.0, 1e-6, 1e-9};
    EXPECT_THROW(m.validate(), FatalError);
    m.tf = 1e-9;
    m.tl = -1.0;
    EXPECT_THROW(m.validate(), FatalError);
}

TEST(Machine, CustomRejectsBadInputs)
{
    EXPECT_THROW(customMachine("x", -1.0, 1e-6, 1e8), FatalError);
    EXPECT_THROW(customMachine("x", 100.0, 1e-6, 0.0), FatalError);
}

TEST(Machine, AllPresetsValidate)
{
    for (const MachineModel &m :
         {crayT3d(), crayT3e(), currentMachine100(), futureMachine200()})
        EXPECT_NO_THROW(m.validate());
}

TEST(Machine, FutureMachineMeetsConclusionTargets)
{
    // The paper's conclusion asks for ~600 MB/s burst and <= 2 us block
    // latency; the preset encodes exactly that target system.
    const MachineModel m = futureMachine200();
    EXPECT_NEAR(m.burstBandwidthBytes(), 600e6, 1e6);
    EXPECT_LE(m.tl, 2e-6 + 1e-12);
}

} // namespace
