/**
 * @file
 * Tests for the §4.1 comparison workloads: regular-grid and all-to-all
 * characterizations, including the "middle ground" ordering against
 * the Quake reference data.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/reference.h"
#include "core/synthetic_workloads.h"

namespace
{

using namespace quake::core;
using quake::common::FatalError;

TEST(RegularGrid, InteriorAccounting)
{
    // 64^3 cells on 4^3 PEs: 16^3 local cells, 16^2-word faces.
    const SmvpCharacterization ch = regularGrid3d(64, 4);
    EXPECT_EQ(ch.numPes, 64);
    ASSERT_EQ(ch.pes.size(), 64u);
    EXPECT_EQ(ch.pes[0].flops, 14 * 16 * 16 * 16);
    EXPECT_EQ(ch.pes[0].words, 2 * 6 * 256);
    EXPECT_EQ(ch.pes[0].blocks, 12);
    EXPECT_EQ(ch.messageSizes.size(), 64u * 6);
    for (std::int64_t m : ch.messageSizes)
        EXPECT_EQ(m, 256);
}

TEST(RegularGrid, SinglePeHasNoComm)
{
    const SmvpCharacterization ch = regularGrid3d(16, 1);
    EXPECT_EQ(ch.pes[0].words, 0);
    EXPECT_EQ(ch.bisectionWords, 0);
}

TEST(RegularGrid, TwoSideWrapsToThreeNeighbours)
{
    const SmvpCharacterization ch = regularGrid3d(16, 2);
    EXPECT_EQ(ch.pes[0].blocks, 6); // 3 distinct peers, both directions
}

TEST(RegularGrid, BetaIsOneBySymmetry)
{
    const CharacterizationSummary s = summarize(regularGrid3d(32, 4));
    EXPECT_DOUBLE_EQ(s.beta, 1.0);
    EXPECT_DOUBLE_EQ(s.flopBalance, 1.0);
}

TEST(RegularGrid, RejectsBadDecomposition)
{
    EXPECT_THROW(regularGrid3d(10, 3), FatalError);
    EXPECT_THROW(regularGrid3d(0, 1), FatalError);
}

TEST(AllToAll, Accounting)
{
    const SmvpCharacterization ch = allToAll(8, 100, 1'000'000);
    EXPECT_EQ(ch.numPes, 8);
    EXPECT_EQ(ch.pes[0].words, 2 * 7 * 100);
    EXPECT_EQ(ch.pes[0].blocks, 14);
    EXPECT_EQ(ch.messageSizes.size(), 56u);
    // Bisection: 4 x 4 pairs x 100 words x both directions.
    EXPECT_EQ(ch.bisectionWords, 2 * 16 * 100);
}

TEST(AllToAll, RejectsDegenerate)
{
    EXPECT_THROW(allToAll(1, 10, 10), FatalError);
    EXPECT_THROW(allToAll(4, 0, 10), FatalError);
}

TEST(MiddleGround, PeerCountsOrderAsSection41Claims)
{
    // At 128 PEs: a regular grid talks to 6 peers, the Quake SMVP to
    // up to ~23 (B_max/2 from Figure 7), the FFT to all 127.
    const int pes = 128;
    // Nearest cube decomposition at comparable PE count: 125 PEs.
    const SmvpCharacterization grid = regularGrid3d(100, 5);
    const SmvpCharacterization fft = allToAll(pes, 459, 838'224);
    const reference::Figure7Entry &quake_entry =
        reference::figure7(reference::PaperMesh::kSf2, pes);

    const std::int64_t grid_peers = summarize(grid).blocksMax / 2;
    const std::int64_t quake_peers = quake_entry.blocksMax / 2;
    const std::int64_t fft_peers = summarize(fft).blocksMax / 2;

    EXPECT_EQ(grid_peers, 6);
    EXPECT_EQ(fft_peers, pes - 1);
    EXPECT_GT(quake_peers, grid_peers);
    EXPECT_LT(quake_peers, fft_peers / 2);
    // "for sf1/128 each PE communicates with up to 20% of the other
    // PEs" — sf2/128 is similar (23/127 ~ 18%).
    EXPECT_NEAR(static_cast<double>(quake_peers) / (pes - 1), 0.18,
                0.08);
}

TEST(MiddleGround, BisectionDemandOrdering)
{
    // Per-PE-normalized bisection volume: grid < all-to-all; the FFT's
    // all-to-all is the worst case the paper contrasts against.
    const SmvpCharacterization grid = regularGrid3d(64, 4);
    const SmvpCharacterization fft = allToAll(64, 256, 1'000'000);
    const double grid_share =
        static_cast<double>(grid.bisectionWords) /
        static_cast<double>(summarize(grid).wordsMax * grid.numPes);
    const double fft_share =
        static_cast<double>(fft.bisectionWords) /
        static_cast<double>(summarize(fft).wordsMax * fft.numPes);
    EXPECT_LT(grid_share, fft_share);
}

} // namespace
