/**
 * @file
 * Tests for the two-level execution topology (DESIGN.md §13): cpulist
 * parsing, spec parsing/validation/detection, the engine's topology
 * normalization (shard clamping, thread capping), and the bitwise
 * hierarchical == flat contract across shard counts, exchange modes,
 * the fused step, and advisory pin failures.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "mesh/generator.h"
#include "parallel/parallel_smvp.h"
#include "parallel/topology.h"
#include "partition/geometric_bisection.h"
#include "sparse/assembly.h"

namespace
{

using namespace quake::parallel;
using quake::common::FatalError;

TEST(ParseCpuList, SinglesRangesAndMixes)
{
    EXPECT_EQ(parseCpuList("0"), (std::vector<int>{0}));
    EXPECT_EQ(parseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(parseCpuList("0-2,8,10-11"),
              (std::vector<int>{0, 1, 2, 8, 10, 11}));
    EXPECT_EQ(parseCpuList(" 4-5 \n"), (std::vector<int>{4, 5}));
    // Overlaps deduplicate, order normalizes ascending.
    EXPECT_EQ(parseCpuList("3,1,2-3"), (std::vector<int>{1, 2, 3}));
}

TEST(ParseCpuList, MalformedReturnsEmpty)
{
    EXPECT_TRUE(parseCpuList("").empty());
    EXPECT_TRUE(parseCpuList("abc").empty());
    EXPECT_TRUE(parseCpuList("1-").empty());
    EXPECT_TRUE(parseCpuList("-3").empty());
    EXPECT_TRUE(parseCpuList("3-1").empty());
    // Empty segments are skipped, not fatal (lenient like the kernel).
    EXPECT_EQ(parseCpuList("1,,2"), (std::vector<int>{1, 2}));
}

TEST(Topology, AffinityCpusNonEmptyAscending)
{
    const std::vector<int> cpus = affinityCpus();
    ASSERT_GE(cpus.size(), 1u);
    for (std::size_t i = 1; i < cpus.size(); ++i)
        EXPECT_LT(cpus[i - 1], cpus[i]);
}

TEST(Topology, FlatReproducesHistoricalSemantics)
{
    const Topology t = Topology::flat(3);
    EXPECT_EQ(t.numShards, 1);
    EXPECT_EQ(t.threadsPerShard, 0);
    EXPECT_EQ(t.threadBudget, 3);
    EXPECT_FALSE(t.pin);
    t.validate();
}

TEST(Topology, DetectAlwaysYieldsAValidTopology)
{
    // On any host — NUMA or not, sysfs or not — detection must return
    // something the engine can run: >= 1 shard, a CPU list per shard.
    const Topology t = Topology::detect();
    t.validate();
    EXPECT_GE(t.numShards, 1);
    ASSERT_EQ(t.shardCpus.size(),
              static_cast<std::size_t>(t.numShards));
    for (const std::vector<int> &cpus : t.shardCpus)
        EXPECT_FALSE(cpus.empty());
}

TEST(Topology, ParseAcceptsTheDocumentedSpecs)
{
    EXPECT_EQ(Topology::parse("flat").numShards, 1);
    const Topology st = Topology::parse("2x4");
    EXPECT_EQ(st.numShards, 2);
    EXPECT_EQ(st.threadsPerShard, 4);
    EXPECT_EQ(Topology::parse("3x0").threadsPerShard, 0);
    EXPECT_GE(Topology::parse("auto").numShards, 1);
    EXPECT_GE(Topology::parse("detect").numShards, 1);
    EXPECT_TRUE(Topology::parse("2x2", true).pin);
}

TEST(Topology, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(Topology::parse(""), FatalError);
    EXPECT_THROW(Topology::parse("nonsense"), FatalError);
    EXPECT_THROW(Topology::parse("2x"), FatalError);
    EXPECT_THROW(Topology::parse("x4"), FatalError);
    EXPECT_THROW(Topology::parse("0x4"), FatalError);
    EXPECT_THROW(Topology::parse("2x-1"), FatalError);
    EXPECT_THROW(Topology::parse("2x4x8"), FatalError);
}

TEST(Topology, ValidateRejectsInvalidFields)
{
    Topology t;
    t.numShards = 0;
    EXPECT_THROW(t.validate(), FatalError);
    t = Topology{};
    t.threadsPerShard = -1;
    EXPECT_THROW(t.validate(), FatalError);
    t = Topology{};
    t.numShards = 2;
    t.shardCpus = {{0}}; // size mismatch: 1 list for 2 shards
    EXPECT_THROW(t.validate(), FatalError);
}

// ---------------------------------------------------------------------
// Engine integration: normalization and the bitwise contract.
// ---------------------------------------------------------------------

struct HierarchyFixture
{
    quake::mesh::TetMesh mesh;
    quake::mesh::UniformModel model{
        quake::mesh::Aabb{{0, 0, 0}, {1, 1, 1}}, 1.0, 1.0};
    DistributedProblem problem;
    std::vector<double> x;

    explicit HierarchyFixture(int pes = 8)
        : mesh(quake::mesh::buildKuhnLattice(
              quake::mesh::Aabb{{0, 0, 0}, {1, 1, 1}}, 4, 4, 4)),
          problem(distribute(
              mesh, model,
              quake::partition::GeometricBisection().partition(mesh,
                                                               pes)))
    {
        x.resize(static_cast<std::size_t>(3 * problem.numGlobalNodes));
        quake::common::SplitMix64 rng(31337);
        for (double &v : x)
            v = rng.uniform(-1, 1);
    }
};

TEST(HierarchicalEngine, NormalizationClampsAndCaps)
{
    HierarchyFixture f(4);
    // More shards than PEs: clamped to the PE count.
    const ParallelSmvp clamped(f.problem, Topology::uniform(16, 1));
    EXPECT_EQ(clamped.numShards(), 4);
    EXPECT_EQ(clamped.threadsPerShard(), 1);
    // Threads per shard beyond the largest shard's PE block: capped.
    const ParallelSmvp capped(f.problem, Topology::uniform(2, 64));
    EXPECT_EQ(capped.numShards(), 2);
    EXPECT_LE(capped.threadsPerShard(), 2);
    // Flat topology == the historical flat engine shape.
    const ParallelSmvp flat(f.problem, Topology::flat(2));
    EXPECT_EQ(flat.numShards(), 1);
    EXPECT_EQ(flat.numThreads(), 2);
}

TEST(HierarchicalEngine, SingleShardBitwiseEqualsFlatCtor)
{
    HierarchyFixture f;
    const std::vector<double> y_flat =
        ParallelSmvp(f.problem, 2).multiply(f.x);
    const std::vector<double> y_topo =
        ParallelSmvp(f.problem, Topology::flat(2)).multiply(f.x);
    EXPECT_EQ(y_flat, y_topo);
}

TEST(HierarchicalEngine, ShardCountsAndModesAreBitwiseInvariant)
{
    HierarchyFixture f;
    const std::vector<double> y_ref =
        ParallelSmvp(f.problem, 1, ExchangeMode::kBarrier).multiply(f.x);
    for (int shards : {2, 3, 4, 8}) {
        for (const ExchangeMode mode :
             {ExchangeMode::kBarrier, ExchangeMode::kOverlapped}) {
            const ParallelSmvp engine(f.problem,
                                      Topology::uniform(shards, 2), mode);
            EXPECT_EQ(engine.multiply(f.x), y_ref)
                << shards << " shards, mode "
                << static_cast<int>(mode);
        }
    }
}

TEST(HierarchicalEngine, FusedStepBitwiseInvariantAcrossShards)
{
    HierarchyFixture f;
    const std::size_t n = f.x.size();
    std::vector<double> inv_mass(n, 1.0), force(n, 0.0);

    auto run_step = [&](const ParallelSmvp &engine,
                        std::vector<double> &up) {
        quake::sparse::StepUpdate su;
        su.u = f.x.data();
        su.up = up.data();
        su.f = force.data();
        su.invMass = inv_mass.data();
        su.dt = 1e-3;
        su.dt2 = su.dt * su.dt;
        return engine.stepFused(su);
    };

    const ParallelSmvp ref(f.problem, 1, ExchangeMode::kBarrier);
    std::vector<double> up_ref(n, 0.0);
    const quake::sparse::StepPartials p_ref = run_step(ref, up_ref);

    for (int shards : {2, 4}) {
        const ParallelSmvp engine(f.problem,
                                  Topology::uniform(shards, 2));
        std::vector<double> up(n, 0.0);
        const quake::sparse::StepPartials p = run_step(engine, up);
        EXPECT_EQ(up, up_ref) << shards << " shards";
        EXPECT_EQ(p.peak, p_ref.peak);
        EXPECT_EQ(p.energy, p_ref.energy);
    }
}

TEST(HierarchicalEngine, BogusPinFailsOpenAndStaysBitwise)
{
    HierarchyFixture f;
    const std::vector<double> y_ref =
        ParallelSmvp(f.problem, 1).multiply(f.x);

    Topology topo = Topology::uniform(2, 2, /*pin=*/true);
    topo.shardCpus.assign(2, {1 << 20}); // no such CPU anywhere
    const ParallelSmvp engine(f.problem, topo);
    EXPECT_GT(engine.pinFailures(), 0);
    EXPECT_EQ(engine.multiply(f.x), y_ref);
}

TEST(HierarchicalEngine, TrafficClassificationIsConsistent)
{
    HierarchyFixture f;
    // Flat engine: every exchange is intra-shard by definition.
    const ParallelSmvp flat(f.problem, Topology::flat(2));
    EXPECT_EQ(flat.remoteExchangeBytes(), 0);
    EXPECT_DOUBLE_EQ(flat.shardImbalance(), 0.0);

    // Hierarchical: the split reclassifies, never changes the total.
    const ParallelSmvp hier(f.problem, Topology::uniform(2, 2));
    EXPECT_GT(hier.remoteExchangeBytes(), 0);
    EXPECT_EQ(hier.remoteExchangeBytes() + hier.localExchangeBytes(),
              flat.remoteExchangeBytes() + flat.localExchangeBytes());
    EXPECT_GE(hier.shardImbalance(), 0.0);
}

TEST(HierarchicalEngine, PinnedEngineDestructsCleanlyAfterUse)
{
    HierarchyFixture f(4);
    std::vector<double> y_first;
    {
        const ParallelSmvp engine(f.problem,
                                  Topology::uniform(2, 2, /*pin=*/true));
        y_first = engine.multiply(f.x);
        // Destruction with pinned nested pools parked mid-epoch must
        // join every worker (outer and inner) without hanging.
    }
    EXPECT_EQ(y_first, ParallelSmvp(f.problem, 1).multiply(f.x));
}

} // namespace
