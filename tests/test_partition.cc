/**
 * @file
 * Tests for the partitioners: balance, determinism, validation, and the
 * quality ordering (geometric beats slab beats random on shared nodes)
 * that underlies the paper's Figure 7.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "mesh/generator.h"
#include "partition/baselines.h"
#include "partition/geometric_bisection.h"
#include "partition/partition_stats.h"

namespace
{

using namespace quake::partition;
using namespace quake::mesh;
using quake::common::FatalError;

TetMesh
lattice(int n)
{
    return buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, n, n, n);
}

// ------------------------------------------------------- Partition basics

TEST(Partition, PartSizesAndElementsOf)
{
    Partition p;
    p.numParts = 2;
    p.elementPart = {0, 1, 0, 1, 1};
    const auto sizes = p.partSizes();
    EXPECT_EQ(sizes[0], 2);
    EXPECT_EQ(sizes[1], 3);
    EXPECT_EQ(p.elementsOf(0), (std::vector<TetId>{0, 2}));
    EXPECT_EQ(p.elementsOf(1), (std::vector<TetId>{1, 3, 4}));
}

TEST(PartitionDeathTest, ValidateCatchesSizeMismatch)
{
    const TetMesh m = lattice(2);
    Partition p;
    p.numParts = 2;
    p.elementPart.assign(3, 0); // wrong length
    EXPECT_DEATH(p.validate(m), "does not match");
}

TEST(PartitionDeathTest, ValidateCatchesEmptyPart)
{
    const TetMesh m = lattice(2);
    Partition p;
    p.numParts = 2;
    p.elementPart.assign(static_cast<std::size_t>(m.numElements()), 0);
    EXPECT_DEATH(p.validate(m), "is empty");
}

TEST(PartitionDeathTest, ValidateCatchesOutOfRangePart)
{
    const TetMesh m = lattice(2);
    Partition p;
    p.numParts = 2;
    p.elementPart.assign(static_cast<std::size_t>(m.numElements()), 0);
    p.elementPart[0] = 5;
    EXPECT_DEATH(p.validate(m), "out of range");
}

// ----------------------------------------------------- GeometricBisection

class BisectionPartCount : public ::testing::TestWithParam<int>
{};

TEST_P(BisectionPartCount, BalancedWithinOneElementPerSplit)
{
    const TetMesh m = lattice(4); // 384 elements
    const GeometricBisection partitioner;
    const Partition p = partitioner.partition(m, GetParam());
    const auto sizes = p.partSizes();
    const std::int64_t lo =
        *std::min_element(sizes.begin(), sizes.end());
    const std::int64_t hi =
        *std::max_element(sizes.begin(), sizes.end());
    // Proportional median splits keep parts within a few elements.
    EXPECT_LE(hi - lo, 2);
}

INSTANTIATE_TEST_SUITE_P(Counts, BisectionPartCount,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16,
                                           32));

TEST(GeometricBisection, SinglePartIsIdentity)
{
    const TetMesh m = lattice(2);
    const Partition p = GeometricBisection().partition(m, 1);
    for (PartId id : p.elementPart)
        EXPECT_EQ(id, 0);
}

TEST(GeometricBisection, Deterministic)
{
    const TetMesh m = lattice(3);
    const GeometricBisection partitioner;
    const Partition a = partitioner.partition(m, 8);
    const Partition b = partitioner.partition(m, 8);
    EXPECT_EQ(a.elementPart, b.elementPart);
}

TEST(GeometricBisection, CoordinateModeSplitsSpatially)
{
    // On a 1x1x1 cube with 2 parts, the split must separate low-x-ish
    // elements from high-x-ish (or another axis; either way spatially
    // coherent: centroids of the two parts differ along some axis).
    const TetMesh m = lattice(4);
    const GeometricBisection partitioner(BisectionAxis::kLongestExtent);
    const Partition p = partitioner.partition(m, 2);

    Vec3 c0{}, c1{};
    std::int64_t n0 = 0, n1 = 0;
    for (TetId t = 0; t < m.numElements(); ++t) {
        if (p.elementPart[t] == 0) {
            c0 += m.tetCentroidOf(t);
            ++n0;
        } else {
            c1 += m.tetCentroidOf(t);
            ++n1;
        }
    }
    c0 = c0 / static_cast<double>(n0);
    c1 = c1 / static_cast<double>(n1);
    EXPECT_GT((c1 - c0).norm(), 0.3);
}

TEST(GeometricBisection, RejectsTooManyParts)
{
    const TetMesh m = lattice(1); // 6 elements
    EXPECT_THROW(GeometricBisection().partition(m, 7), FatalError);
}

TEST(GeometricBisection, NamesDistinguishModes)
{
    EXPECT_NE(GeometricBisection(BisectionAxis::kInertial).name(),
              GeometricBisection(BisectionAxis::kLongestExtent).name());
}

// ------------------------------------------------------------- baselines

TEST(RandomPartitioner, BalancedAndDeterministic)
{
    const TetMesh m = lattice(3);
    const RandomPartitioner partitioner(42);
    const Partition a = partitioner.partition(m, 4);
    const Partition b = partitioner.partition(m, 4);
    EXPECT_EQ(a.elementPart, b.elementPart);
    const auto sizes = a.partSizes();
    EXPECT_LE(*std::max_element(sizes.begin(), sizes.end()) -
                  *std::min_element(sizes.begin(), sizes.end()),
              1);
}

TEST(RandomPartitioner, SeedChangesAssignment)
{
    const TetMesh m = lattice(3);
    const Partition a = RandomPartitioner(1).partition(m, 4);
    const Partition b = RandomPartitioner(2).partition(m, 4);
    EXPECT_NE(a.elementPart, b.elementPart);
}

TEST(SlabPartitioner, SlabsOrderedAlongX)
{
    const TetMesh m = lattice(4);
    const Partition p = SlabPartitioner().partition(m, 4);
    // Mean centroid x must increase with part id.
    std::vector<double> mean_x(4, 0.0);
    std::vector<std::int64_t> count(4, 0);
    for (TetId t = 0; t < m.numElements(); ++t) {
        mean_x[p.elementPart[t]] += m.tetCentroidOf(t).x;
        ++count[p.elementPart[t]];
    }
    for (int i = 0; i < 4; ++i)
        mean_x[i] /= static_cast<double>(count[i]);
    for (int i = 1; i < 4; ++i)
        EXPECT_GT(mean_x[i], mean_x[i - 1]);
}

// -------------------------------------------------------- PartitionStats

TEST(NodeParts, SingleTetTwoPartsByHand)
{
    TetMesh m;
    m.addNode({0, 0, 0});
    m.addNode({1, 0, 0});
    m.addNode({0, 1, 0});
    m.addNode({0, 0, 1});
    m.addNode({1, 1, 1});
    m.addTet(0, 1, 2, 3);
    m.addTet(1, 2, 4, 3);

    Partition p;
    p.numParts = 2;
    p.elementPart = {0, 1};

    const NodeParts np = buildNodeParts(m, p);
    EXPECT_EQ(np.multiplicity(0), 1); // only tet 0
    EXPECT_EQ(np.multiplicity(4), 1); // only tet 1
    for (NodeId shared : {1, 2, 3})
        EXPECT_EQ(np.multiplicity(shared), 2);
}

TEST(PartitionStats, CountsSharedNodes)
{
    const TetMesh m = lattice(4);
    const Partition p = GeometricBisection().partition(m, 2);
    const PartitionStats stats = computePartitionStats(m, p);
    EXPECT_EQ(stats.numParts, 2);
    EXPECT_GT(stats.sharedNodes, 0);
    EXPECT_EQ(stats.totalReplicas, stats.sharedNodes); // 2 parts max
    EXPECT_EQ(stats.maxNodeMultiplicity, 2);
    EXPECT_GE(stats.elementImbalance, 1.0);
    EXPECT_LT(stats.elementImbalance, 1.05);
}

TEST(PartitionStats, GeometricBeatsSlabBeatsRandom)
{
    // The ablation at the heart of §2.2: surface-minimizing partitions
    // share far fewer nodes.  Use an elongated lattice so slabs are
    // viable but suboptimal.
    const TetMesh m =
        buildKuhnLattice(Aabb{{0, 0, 0}, {4, 1, 1}}, 12, 6, 6);
    const int parts = 8;
    const auto geo = computePartitionStats(
        m, GeometricBisection().partition(m, parts));
    const auto slab =
        computePartitionStats(m, SlabPartitioner().partition(m, parts));
    const auto rnd = computePartitionStats(
        m, RandomPartitioner().partition(m, parts));
    EXPECT_LE(geo.sharedNodes, slab.sharedNodes);
    EXPECT_LT(slab.sharedNodes, rnd.sharedNodes);
    // Random partitions destroy locality so thoroughly that nearly every
    // node is shared; geometric partitions stay well below that.
    EXPECT_LT(static_cast<double>(geo.sharedNodes),
              0.85 * static_cast<double>(rnd.sharedNodes));
}

TEST(PartitionStats, MorePartsMoreSharedNodes)
{
    const TetMesh m = lattice(4);
    const GeometricBisection partitioner;
    const auto s2 =
        computePartitionStats(m, partitioner.partition(m, 2));
    const auto s8 =
        computePartitionStats(m, partitioner.partition(m, 8));
    EXPECT_GT(s8.sharedNodes, s2.sharedNodes);
}

// Surface scaling: shared nodes should grow like p^(1/3)-ish per the
// O(n^{2/3}) surface law, certainly far slower than linearly in p.
TEST(PartitionStats, SharedNodeGrowthSublinear)
{
    const TetMesh m = lattice(6);
    const GeometricBisection partitioner;
    const auto s4 = computePartitionStats(m, partitioner.partition(m, 4));
    const auto s16 =
        computePartitionStats(m, partitioner.partition(m, 16));
    EXPECT_LT(static_cast<double>(s16.sharedNodes),
              3.0 * static_cast<double>(s4.sharedNodes));
}

} // namespace
