/**
 * @file
 * Tests for graded conforming refinement: size-field satisfaction,
 * conformity (no hanging nodes), volume conservation, and cap handling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/error.h"
#include "mesh/generator.h"
#include "mesh/refine.h"

namespace
{

using namespace quake::mesh;

/** Sorted face key. */
std::array<NodeId, 3>
faceKey(NodeId a, NodeId b, NodeId c)
{
    std::array<NodeId, 3> f{a, b, c};
    std::sort(f.begin(), f.end());
    return f;
}

/**
 * A conforming solid mesh has every face shared by at most two elements,
 * and the surface faces (count 1) must bound the same volume as the box.
 */
void
expectConforming(const TetMesh &mesh)
{
    std::map<std::array<NodeId, 3>, int> faces;
    for (TetId t = 0; t < mesh.numElements(); ++t) {
        const Tet &e = mesh.tet(t);
        for (const auto &f : kTetFaces)
            ++faces[faceKey(e.v[f[0]], e.v[f[1]], e.v[f[2]])];
    }
    for (const auto &[key, count] : faces) {
        (void)key;
        EXPECT_LE(count, 2) << "face shared by more than two elements";
    }
}

double
totalVolume(const TetMesh &mesh)
{
    double v = 0;
    for (TetId t = 0; t < mesh.numElements(); ++t)
        v += mesh.tetVolumeOf(t);
    return v;
}

double
maxLongestEdge(const TetMesh &mesh)
{
    double worst = 0;
    for (TetId t = 0; t < mesh.numElements(); ++t) {
        const Tet &e = mesh.tet(t);
        const auto lengths =
            tetEdgeLengths(mesh.node(e.v[0]), mesh.node(e.v[1]),
                           mesh.node(e.v[2]), mesh.node(e.v[3]));
        worst = std::max(worst,
                         *std::max_element(lengths.begin(), lengths.end()));
    }
    return worst;
}

TetMesh
unitLattice(int n)
{
    return buildKuhnLattice(Aabb{{0, 0, 0}, {1, 1, 1}}, n, n, n);
}

TEST(Refine, UniformTargetIsMet)
{
    TetMesh mesh = unitLattice(1);
    const RefineReport report =
        refineToSizeField(mesh, [](const Vec3 &) { return 0.4; });
    EXPECT_GT(report.splits, 0);
    EXPECT_FALSE(report.reachedElementCap);
    EXPECT_LE(maxLongestEdge(mesh), 0.4 + 1e-12);
    mesh.validate();
}

TEST(Refine, NoWorkWhenAlreadyFine)
{
    TetMesh mesh = unitLattice(2);
    const std::int64_t before = mesh.numElements();
    const RefineReport report =
        refineToSizeField(mesh, [](const Vec3 &) { return 10.0; });
    EXPECT_EQ(report.splits, 0);
    EXPECT_EQ(mesh.numElements(), before);
}

TEST(Refine, KeepsMeshConforming)
{
    TetMesh mesh = unitLattice(1);
    refineToSizeField(mesh, [](const Vec3 &) { return 0.35; });
    expectConforming(mesh);
}

TEST(Refine, ConservesVolume)
{
    TetMesh mesh = unitLattice(2);
    const double before = totalVolume(mesh);
    refineToSizeField(mesh, [](const Vec3 &) { return 0.3; });
    EXPECT_NEAR(totalVolume(mesh), before, 1e-9);
}

TEST(Refine, GradedFieldConcentratesElements)
{
    TetMesh mesh = unitLattice(2);
    // Fine near x = 0, coarse near x = 1.
    refineToSizeField(mesh, [](const Vec3 &p) {
        return 0.08 + 0.6 * p.x;
    });
    expectConforming(mesh);
    mesh.validate();

    std::int64_t left = 0, right = 0;
    for (TetId t = 0; t < mesh.numElements(); ++t) {
        const double x = mesh.tetCentroidOf(t).x;
        if (x < 0.3)
            ++left;
        else if (x > 0.7)
            ++right;
    }
    EXPECT_GT(left, 3 * right);
}

TEST(Refine, ElementCapStopsCleanly)
{
    TetMesh mesh = unitLattice(1);
    RefineOptions options;
    options.maxElements = 40;
    const RefineReport report = refineToSizeField(
        mesh, [](const Vec3 &) { return 0.05; }, options);
    EXPECT_TRUE(report.reachedElementCap);
    // The cap is approximate (checked per edge split) but must hold to
    // within the worst single-edge fan-out.
    EXPECT_LE(mesh.numElements(), options.maxElements + 64);
    mesh.validate();
    expectConforming(mesh);
}

TEST(Refine, PassCapStopsCleanly)
{
    TetMesh mesh = unitLattice(1);
    RefineOptions options;
    options.maxPasses = 2;
    const RefineReport report = refineToSizeField(
        mesh, [](const Vec3 &) { return 0.05; }, options);
    EXPECT_EQ(report.passes, 2);
    EXPECT_TRUE(report.reachedPassCap);
    mesh.validate();
    expectConforming(mesh);
}

TEST(Refine, RejectsNonPositiveSizeField)
{
    TetMesh mesh = unitLattice(1);
    EXPECT_THROW(
        refineToSizeField(mesh, [](const Vec3 &) { return 0.0; }),
        quake::common::FatalError);
}

TEST(Refine, QualityStaysBounded)
{
    TetMesh mesh = unitLattice(1);
    refineToSizeField(mesh, [](const Vec3 &p) {
        return 0.06 + 0.5 * (p.x + p.y);
    });
    double min_q = 1.0;
    for (TetId t = 0; t < mesh.numElements(); ++t)
        min_q = std::min(min_q, mesh.tetQualityOf(t));
    // Longest-edge bisection with Rivara propagation keeps shapes from
    // collapsing; 0.02 is far above degenerate but below pristine.
    EXPECT_GT(min_q, 0.02);
}

// Parameterized: the refinement postcondition holds across size targets.
class RefineTargetSweep : public ::testing::TestWithParam<double>
{};

TEST_P(RefineTargetSweep, LongestEdgeBelowTarget)
{
    TetMesh mesh = unitLattice(1);
    const double h = GetParam();
    const RefineReport report =
        refineToSizeField(mesh, [h](const Vec3 &) { return h; });
    EXPECT_FALSE(report.reachedPassCap);
    EXPECT_LE(maxLongestEdge(mesh), h + 1e-12);
    expectConforming(mesh);
    mesh.validate();
}

INSTANTIATE_TEST_SUITE_P(Targets, RefineTargetSweep,
                         ::testing::Values(1.0, 0.8, 0.5, 0.3, 0.2, 0.15));

} // namespace
