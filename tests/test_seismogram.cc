/**
 * @file
 * Tests for seismogram recording: station placement, sampling,
 * amplitude math, text output, and the wiring into the simulation
 * driver.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "mesh/generator.h"
#include "quake/simulation.h"

namespace
{

using namespace quake::sim;
using namespace quake::mesh;
using quake::common::FatalError;

TetMesh
slab()
{
    return buildKuhnLattice(Aabb{{0, 0, 0}, {10, 10, 2}}, 5, 5, 1);
}

TEST(Seismogram, SurfaceLinePlacesStationsOnSurface)
{
    const TetMesh m = slab();
    const Seismogram record = Seismogram::surfaceLine(m, 5, 5.0);
    ASSERT_EQ(record.stations().size(), 5u);
    for (const Station &s : record.stations()) {
        EXPECT_DOUBLE_EQ(s.position.z, 0.0); // free surface
        EXPECT_EQ(s.position, m.node(s.node));
    }
    // Stations span the x extent in order.
    EXPECT_LT(record.stations().front().position.x,
              record.stations().back().position.x);
}

TEST(Seismogram, SingleStationCentered)
{
    const TetMesh m = slab();
    const Seismogram record = Seismogram::surfaceLine(m, 1, 5.0);
    EXPECT_NEAR(record.stations()[0].position.x, 5.0, 2.1);
}

TEST(Seismogram, RecordsAmplitudes)
{
    std::vector<Station> stations = {{"a", 0, {}}, {"b", 2, {}}};
    Seismogram record(std::move(stations));

    std::vector<double> u(9, 0.0);
    u[0] = 3.0;
    u[1] = 4.0;  // node 0: |u| = 5
    u[6] = 1.0;  // node 2: |u| = 1
    record.record(0.5, u);
    u[0] = 0.0;
    u[1] = 0.0;
    record.record(1.0, u);

    ASSERT_EQ(record.sampleCount(), 2u);
    EXPECT_DOUBLE_EQ(record.amplitude(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(record.amplitude(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(record.amplitude(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(record.peakAmplitude(0), 5.0);
    EXPECT_DOUBLE_EQ(record.peakAmplitude(1), 1.0);
    EXPECT_EQ(record.times(), (std::vector<double>{0.5, 1.0}));
}

TEST(Seismogram, RejectsBadAccess)
{
    Seismogram record({{"a", 0, {}}});
    std::vector<double> u(3, 0.0);
    record.record(0.0, u);
    EXPECT_THROW(record.amplitude(5, 0), FatalError);
    EXPECT_THROW(record.amplitude(0, 5), FatalError);
    EXPECT_THROW(record.peakAmplitude(2), FatalError);
    // Station node outside the displacement vector.
    Seismogram bad({{"x", 9, {}}});
    EXPECT_THROW(bad.record(0.0, u), FatalError);
}

TEST(Seismogram, WritesReadableText)
{
    Seismogram record({{"a", 0, {1, 2, 0}}});
    std::vector<double> u = {1.0, 0.0, 0.0};
    record.record(0.25, u);
    std::ostringstream os;
    record.write(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# time"), std::string::npos);
    EXPECT_NE(text.find("a(1,2)"), std::string::npos);
    EXPECT_NE(text.find("0.25 1"), std::string::npos);
}

TEST(Seismogram, RecordsThroughSimulation)
{
    const TetMesh m = slab();
    const UniformModel model(Aabb{{0, 0, 0}, {10, 10, 2}}, 1.0, 1.0);

    Seismogram record = Seismogram::surfaceLine(m, 3, 5.0);
    SimulationConfig config;
    config.durationSeconds = 1e9;
    config.maxSteps = 120;
    config.sampleInterval = 10;
    config.recorder = &record;
    config.hypocenter = {5.0, 5.0, 1.5};
    config.wavelet.peakFrequencyHz = 0.5;
    config.wavelet.delaySeconds = 0.5;
    config.wavelet.amplitude = 10.0;

    const SimulationReport report = runSimulation(m, model, config);
    EXPECT_EQ(record.sampleCount(),
              static_cast<std::size_t>(report.steps / 10));
    // The wave reaches at least one station.
    double peak = 0;
    for (std::size_t s = 0; s < record.stations().size(); ++s)
        peak = std::max(peak, record.peakAmplitude(s));
    EXPECT_GT(peak, 0.0);
}

} // namespace
