/**
 * @file
 * The time-stepping pipeline benchmark: measures what this PR builds —
 * the fused zero-allocation step loop (DESIGN.md §8) — against the
 * seed-style loop it replaces, on an sf10-class generated mesh.
 *
 * Three distributed configurations run the same physics:
 *
 *   seed-alloc  the seed step loop: `y = engine.multiply(x)` (a fresh
 *               DOF vector allocated and moved every step) plus the
 *               per-step O(n) peak-displacement sweep;
 *   zero-copy   multiplyInto() into the stepper's persistent scratch +
 *               the out-of-line reference triad, O(1) cached stats;
 *   fused       ParallelSmvp::stepFused() — SMVP, update, and stats in
 *               one pass, no ku vector;
 *
 * plus a shared-memory pair (sequential unfused vs the pooled
 * spark::FusedStepKernel) on the undistributed global matrix.
 *
 * A global operator new/delete hook counts heap allocations during each
 * timed loop: the zero-copy and fused configurations must make NONE.
 * Emits BENCH_timestep.json for the perf trajectory.  The exit status
 * reflects correctness only: nonzero iff a fused displacement history
 * diverges bitwise from its unfused baseline, or a zero-allocation
 * contract is violated.
 *
 * The fused distributed run carries a live telemetry collector, so the
 * allocation gate also proves the DESIGN.md §9 claim that telemetry
 * recording is allocation-free, and the run's phase split (local vs
 * exchange histograms) is emitted as BENCH_timestep_telemetry.json for
 * the perf trajectory (--metrics overrides the path).
 *
 * Flags: --smoke (tiny mesh, few steps — the `perf` ctest label),
 *        --pes N, --threads N, --steps N, --full (paper-scale sf10),
 *        --trace FILE / --metrics FILE (telemetry on the fused run).
 */

#include "bench/bench_util.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>

#include "parallel/parallel_smvp.h"
#include "quake/time_stepper.h"
#include "spark/kernels.h"
#include "sparse/assembly.h"
#include "telemetry/collector.h"
#include "telemetry/export.h"

// ---------------------------------------------------------------------
// Allocation-counting hook: every heap allocation in the process goes
// through here.  Counting is relaxed-atomic so the hook itself never
// perturbs the timing it guards.
// ---------------------------------------------------------------------

namespace
{
std::atomic<std::int64_t> g_allocations{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace quake;

/** One timed stepping run. */
struct RunResult
{
    double wallSeconds = 0.0;
    double smvpSeconds = 0.0;
    double totalSeconds = 0.0;  ///< stepper-internal step() time
    std::int64_t allocations = 0;
    double peak = 0.0;
    std::vector<double> u;  ///< final displacement
    std::vector<double> up; ///< final previous displacement
};

/** Drive `stepper` for `steps` steps, counting time and allocations. */
RunResult
timeRun(sim::ExplicitTimeStepper &stepper, int steps, bool seed_peak_sweep)
{
    stepper.step(); // warm caches and pool, outside the counted window

    double running_peak = 0.0;
    const std::int64_t alloc0 =
        g_allocations.load(std::memory_order_relaxed);
    const double smvp0 = stepper.smvpSeconds();
    const double total0 = stepper.totalSeconds();
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < steps; ++s) {
        stepper.step();
        if (seed_peak_sweep) {
            // The seed runSimulation loop: an O(n) sweep per step.
            double peak = 0.0;
            for (const double v : stepper.displacement())
                peak = std::max(peak, std::fabs(v));
            running_peak = std::max(running_peak, peak);
        } else {
            running_peak =
                std::max(running_peak, stepper.peakDisplacement());
        }
    }
    const auto t1 = std::chrono::steady_clock::now();

    RunResult r;
    r.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    r.smvpSeconds = stepper.smvpSeconds() - smvp0;
    r.totalSeconds = stepper.totalSeconds() - total0;
    r.allocations =
        g_allocations.load(std::memory_order_relaxed) - alloc0;
    r.peak = running_peak;
    r.u = stepper.displacement();
    r.up = stepper.previousDisplacement();
    return r;
}

bool
bitwiseEqual(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::Args args(argc, argv);
    bench::benchHeader(
        "Fused time-stepping pipeline (zero-copy + fused step)",
        "the Section 2.2 step loop whose SMVP Section 3 measures");

    const bench::EngineBenchOptions opt = bench::engineBenchOptions(args);
    const bool smoke = opt.smoke;
    const int threads = opt.threads;
    const int pes = opt.pes;
    const int steps =
        static_cast<int>(args.getInt("steps", smoke ? 120 : 400));

    const bench::BenchMesh bm = opt.mesh;
    const mesh::TetMesh &m = bench::cachedMesh(bm);
    const mesh::LayeredBasinModel model;

    const double dt = sim::stableTimeStep(m, model);
    const std::vector<double> mass = sparse::assembleLumpedMass(m, model);
    const sparse::Bcsr3Matrix global_k = sparse::assembleStiffness(m, model);
    const std::int64_t dof = global_k.numRows();
    const std::int64_t nnz = global_k.nnz();

    std::cout << "mesh: " << bm.label << ", " << m.numNodes()
              << " nodes (" << dof << " DOFs), " << steps
              << " timed steps, dt = " << dt << " s\n"
              << "hardware threads: "
              << parallel::WorkerPool::hardwareThreads()
              << ", logical PEs: " << pes << "\n\n";

    const partition::GeometricBisection partitioner;
    const parallel::DistributedProblem problem =
        parallel::distribute(m, model, partitioner.partition(m, pes));
    parallel::ParallelSmvp engine(problem, threads);

    sim::RickerWavelet wavelet;
    wavelet.peakFrequencyHz = 0.5;
    wavelet.delaySeconds = 0.2;
    const sim::PointSource source =
        sim::makePointSource(m, {25.0, 25.0, 8.0}, {0, 0, 1}, wavelet);

    auto make_stepper = [&](sim::SmvpFn smvp) {
        sim::ExplicitTimeStepper stepper(std::move(smvp), mass, dt);
        stepper.addSource(source);
        return stepper;
    };

    // --- The three distributed configurations. ---
    sim::ExplicitTimeStepper seed_stepper =
        make_stepper([&engine](const std::vector<double> &x,
                               std::vector<double> &y) {
            y = engine.multiply(x); // seed: fresh vector every step
        });
    const RunResult seed =
        timeRun(seed_stepper, steps, /*seed_peak_sweep=*/true);

    sim::ExplicitTimeStepper zero_stepper =
        make_stepper([&engine](const std::vector<double> &x,
                               std::vector<double> &y) {
            engine.multiplyInto(x, y);
        });
    const RunResult zero = timeRun(zero_stepper, steps, false);

    // The fused run records telemetry while the allocation hook is
    // live: the zero-alloc gate below therefore also covers telemetry
    // recording (histograms every step, sampled spans).
    telemetry::Collector collector;
    sim::ExplicitTimeStepper fused_stepper =
        make_stepper([&engine](const std::vector<double> &x,
                               std::vector<double> &y) {
            engine.multiplyInto(x, y);
        });
    fused_stepper.setFusedStep([&engine](const sparse::StepUpdate &su) {
        return engine.stepFused(su);
    });
    engine.setCollector(&collector);
    fused_stepper.setCollector(&collector);
    const RunResult fused = timeRun(fused_stepper, steps, false);
    engine.setCollector(nullptr);

    // --- Shared-memory pair on the global matrix. ---
    sim::ExplicitTimeStepper seq_stepper =
        make_stepper([&global_k](const std::vector<double> &x,
                                 std::vector<double> &y) {
            global_k.multiply(x.data(), y.data());
        });
    const RunResult seq = timeRun(seq_stepper, steps, false);

    parallel::WorkerPool shm_pool(threads);
    const spark::FusedStepKernel shm_kernel(global_k, shm_pool);
    sim::ExplicitTimeStepper shm_stepper =
        make_stepper([&global_k](const std::vector<double> &x,
                                 std::vector<double> &y) {
            global_k.multiply(x.data(), y.data());
        });
    shm_stepper.setFusedStep([&shm_kernel](const sparse::StepUpdate &su) {
        return shm_kernel.step(su);
    });
    const RunResult shm = timeRun(shm_stepper, steps, false);

    // --- Correctness gates. ---
    const bool seed_matches =
        bitwiseEqual(seed.u, zero.u) && bitwiseEqual(seed.up, zero.up);
    const bool fused_matches =
        bitwiseEqual(fused.u, zero.u) && bitwiseEqual(fused.up, zero.up);
    const bool shm_matches =
        bitwiseEqual(shm.u, seq.u) && bitwiseEqual(shm.up, seq.up);
    const bool zero_alloc_ok =
        zero.allocations == 0 && fused.allocations == 0 &&
        shm.allocations == 0;

    // --- Report. ---
    const double flops = static_cast<double>(2 * nnz);
    std::vector<bench::BenchJsonRecord> records;
    common::Table table({"configuration", "steps/s", "ms/step",
                         "SMVP ms/step", "allocs/step"});
    auto add_row = [&](const std::string &name, const RunResult &r) {
        const double per_step = r.wallSeconds / steps;
        const double allocs_per_step =
            static_cast<double>(r.allocations) / steps;
        table.addRow(
            {name, common::formatFixed(1.0 / per_step, 1),
             common::formatFixed(per_step * 1e3, 3),
             common::formatFixed(r.smvpSeconds / steps * 1e3, 3),
             common::formatFixed(allocs_per_step, 2)});
        bench::BenchJsonRecord rec;
        rec.kernel = name;
        rec.rows = dof;
        rec.nnz = nnz;
        rec.secondsPerSmvp = per_step;
        rec.gflops = flops / per_step / 1e9;
        rec.tfNs = per_step / flops * 1e9;
        rec.extra.emplace_back("steps_per_sec", 1.0 / per_step);
        rec.extra.emplace_back("smvp_seconds_per_step",
                               r.smvpSeconds / steps);
        rec.extra.emplace_back("allocs_per_step", allocs_per_step);
        rec.extra.emplace_back("threads",
                               static_cast<double>(engine.numThreads()));
        rec.extra.emplace_back("pes", static_cast<double>(pes));
        records.push_back(std::move(rec));
    };
    add_row("seed-alloc", seed);
    add_row("zero-copy", zero);
    add_row("fused", fused);
    add_row("seq-unfused", seq);
    add_row("fused-pooled-shm", shm);
    bench::printTable(table, args);

    const double fused_speedup = seed.wallSeconds / fused.wallSeconds;
    std::cout << "\nfused bitwise-equals zero-copy baseline: "
              << (fused_matches ? "PASS" : "FAIL") << "\n"
              << "seed-alloc bitwise-equals zero-copy: "
              << (seed_matches ? "PASS" : "FAIL") << "\n"
              << "pooled-shm bitwise-equals sequential: "
              << (shm_matches ? "PASS" : "FAIL") << "\n"
              << "zero allocations per step (zero-copy/fused/shm): "
              << (zero_alloc_ok ? "PASS" : "FAIL") << " ("
              << zero.allocations << "/" << fused.allocations << "/"
              << shm.allocations << " in " << steps << " steps)\n"
              << "fused speedup vs seed loop: "
              << common::formatFixed(fused_speedup, 2) << "x, vs "
                 "zero-copy unfused: "
              << common::formatFixed(zero.wallSeconds / fused.wallSeconds,
                                     2)
              << "x\n";

    bench::writeBenchJson(
        "timestep", records,
        {{"mesh", bm.label},
         {"pes", std::to_string(pes)},
         {"engine_threads", std::to_string(engine.numThreads())},
         {"steps", std::to_string(steps)},
         {"fused_bitwise_equal", fused_matches ? "true" : "false"},
         {"zero_alloc_ok", zero_alloc_ok ? "true" : "false"},
         {"fused_speedup_vs_seed",
          common::formatFixed(fused_speedup, 3)}});

    // Phase-split metrics from the fused run's collector — written on
    // every invocation (the --smoke ctest run included) so the perf
    // trajectory tracks compute vs exchange, not just whole-step time.
    telemetry::writeMetricsBenchJson(
        collector, "timestep_telemetry",
        {{"mesh", bm.label},
         {"pes", std::to_string(pes)},
         {"engine_threads", std::to_string(engine.numThreads())},
         {"steps", std::to_string(steps)}},
        opt.metricsPath);
    if (!opt.tracePath.empty() &&
        telemetry::writeChromeTrace(collector, opt.tracePath))
        std::cout << "[bench] wrote trace " << opt.tracePath << "\n";

    const bool ok =
        seed_matches && fused_matches && shm_matches && zero_alloc_ok;
    return ok ? 0 : 1;
}
