/**
 * @file
 * Ablation: what the geometric partitioner buys (DESIGN.md §4).
 * Archimedes' recursive geometric bisection (paper §2.2, ref [12]) is
 * compared against coordinate bisection, 1D slabs, and random
 * assignment on the C_max / B_max / F-C ratio metrics that drive every
 * requirement in Section 4.
 */

#include "bench/bench_util.h"

#include "partition/baselines.h"
#include "partition/partition_stats.h"
#include "partition/refine_boundary.h"
#include "partition/spectral.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    const common::Args args(argc, argv);
    bench::benchHeader("Partitioner ablation",
                       "the Section 2.2 partitioning claims");

    const bench::BenchMesh bm{mesh::SfClass::kSf5, 1.0, "sf5"};
    const mesh::TetMesh &m = bench::cachedMesh(bm);

    const partition::GeometricBisection inertial(
        partition::BisectionAxis::kInertial);
    const partition::GeometricBisection coordinate(
        partition::BisectionAxis::kLongestExtent);
    const partition::RefinedPartitioner inertial_refined(inertial);
    const partition::SpectralBisection spectral;
    const partition::SlabPartitioner slab;
    const partition::RandomPartitioner random;
    const std::vector<const partition::Partitioner *> partitioners = {
        &inertial, &inertial_refined, &coordinate, &spectral, &slab,
        &random};

    for (int pes : {8, 32, 128}) {
        const bool skip_spectral = pes > 32; // Lanczos memory/time
        std::cout << "--- " << bm.label << " / " << pes
                  << " subdomains ---\n";
        common::Table t({"partitioner", "shared nodes", "C_max", "B_max",
                         "M_avg", "F/C_max", "imbalance"});
        for (const partition::Partitioner *p : partitioners) {
            if (skip_spectral && p == &spectral)
                continue;
            const partition::Partition part = p->partition(m, pes);
            const partition::PartitionStats pstats =
                partition::computePartitionStats(m, part);
            const parallel::DistributedProblem problem =
                parallel::distributeTopology(m, part);
            const core::CharacterizationSummary s = core::summarize(
                parallel::characterize(problem, p->name()));
            t.addRow({p->name(), common::formatCount(pstats.sharedNodes),
                      common::formatCount(s.wordsMax),
                      common::formatCount(s.blocksMax),
                      common::formatFixed(s.messageSizeAvg, 0),
                      common::formatFixed(s.flopsPerWord, 1),
                      common::formatFixed(pstats.elementImbalance, 2)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout
        << "Reading: geometric bisection's O(n^{2/3}) surfaces keep "
           "C_max small and F/C_max high; slabs blow up C_max as PE "
           "counts grow (each slab face is a full cross-section); "
           "random assignment destroys locality entirely — every PE "
           "talks to every other (B_max ~ 2(p-1)) and F/C_max "
           "collapses, which is why Equation (1) would then demand an "
           "order of magnitude more bandwidth.\n";
    return 0;
}
