/**
 * @file
 * The paper's headline requirements (Section 4.3, 4.4 and the
 * conclusion), computed from the published sf2/128 entry:
 *
 *   "Systems with sustained computational throughput of 200 MFLOPS and
 *    maximally aggregated blocks will need about 300 MBytes/sec of
 *    sustained bandwidth, 600 MBytes/sec of burst bandwidth, and a
 *    block latency under ~2 us to run unstructured finite element
 *    applications with 90% efficiency."
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "core/requirements.h"

namespace
{

void
printOperatingPoint(const quake::core::SmvpShape &shape,
                    const std::string &label, double mflops, double e)
{
    using namespace quake;
    const core::Headline h = core::computeHeadline(shape, mflops, e);
    std::cout << label << " @ " << common::formatFixed(mflops, 0)
              << " MFLOPS, E = " << common::formatFixed(e, 2) << ":\n"
              << "  sustained per-PE bandwidth : "
              << common::formatBandwidth(h.sustainedBandwidthBytes) << "\n"
              << "  half-bandwidth (burst)     : "
              << common::formatBandwidth(h.halfPoint.burstBandwidthBytes)
              << "\n"
              << "  half-bandwidth latency     : "
              << common::formatTime(h.halfPoint.latency) << "\n"
              << "  latency bound, inf. burst  : "
              << common::formatTime(h.infiniteBurstLatency) << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    (void)args;
    bench::benchHeader("Headline communication requirements",
                       "Sections 4.3-4.4 and the conclusion");

    const core::SmvpShape max_blocks =
        ref::shapeFor(ref::PaperMesh::kSf2, 128);

    std::cout << "Maximally aggregated blocks (message passing):\n\n";
    printOperatingPoint(max_blocks, "sf2/128", 100, 0.9);
    printOperatingPoint(max_blocks, "sf2/128", 200, 0.9);
    printOperatingPoint(max_blocks, "sf2/128", 200, 0.8);

    std::cout << "Four-word blocks (cache-line shared memory):\n\n";
    const core::SmvpShape four_word =
        core::withFixedBlockSize(max_blocks, 4.0);
    printOperatingPoint(four_word, "sf2/128 (4-word)", 200, 0.9);

    std::cout
        << "Paper values for comparison:\n"
           "  ~300 MB/s sustained, ~600 MB/s burst at 200 MFLOPS / E = "
           "0.9 (both reproduced above)\n"
           "  microsecond-scale max-block latency budget, ~70-100 ns "
           "four-word budget (reproduced)\n"
           "  (Prose quotes 3 us for the max-block infinite-burst "
           "bound and ~2 us for the half-bandwidth latency; Equation "
           "(2) on the published inputs gives 9.3 us and 4.7 us — see "
           "EXPERIMENTS.md.)\n";
    return 0;
}
