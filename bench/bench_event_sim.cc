/**
 * @file
 * Ablation: the closed-form communication model (Equation 2) against a
 * discrete-event execution of the same exchange schedule on the
 * Figure 5 PE model.  Quantifies how conservative the paper's model is
 * once real scheduling effects (receivers waiting for senders, queued
 * arrivals) are in play, and shows the "infinite capacity, constant
 * latency" network assumption is harmless: sweeping the wire latency
 * barely moves the phase time until it rivals the per-message
 * overhead.
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "parallel/event_sim.h"
#include "parallel/phase_simulator.h"
#include "partition/geometric_bisection.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader(
        "Closed-form model vs. discrete-event exchange execution",
        "the Section 3 modeling assumptions");

    const bench::BenchMesh bm =
        args.has("full")
            ? bench::BenchMesh{mesh::SfClass::kSf2, 1.0, "sf2"}
            : bench::BenchMesh{mesh::SfClass::kSf2, 2.0,
                               "sf2 (1/2 scale)"};
    const mesh::TetMesh &m = bench::cachedMesh(bm);
    const parallel::MachineModel machine = parallel::crayT3e();
    const partition::GeometricBisection partitioner;

    common::Table t({"subdomains", "Eq.(2) model", "event half-dup",
                     "event full-dup", "model/event", "idle (sum)"});
    for (int subdomains : ref::kSubdomainCounts) {
        const partition::Partition part =
            partitioner.partition(m, subdomains);
        const parallel::CommSchedule schedule =
            parallel::CommSchedule::build(m, part);
        const parallel::DistributedProblem problem =
            parallel::distributeTopology(m, part);
        const core::SmvpCharacterization ch =
            parallel::characterize(problem, bm.label);

        const parallel::PhaseTimes model =
            parallel::simulateSmvp(ch, machine);
        const parallel::EventSimResult half = parallel::simulateExchange(
            schedule, machine, parallel::EventSimOptions{0.0, false});
        const parallel::EventSimResult full = parallel::simulateExchange(
            schedule, machine, parallel::EventSimOptions{0.0, true});

        t.addRow({std::to_string(subdomains),
                  common::formatTime(model.tComm),
                  common::formatTime(half.tComm),
                  common::formatTime(full.tComm),
                  common::formatFixed(model.tComm / half.tComm, 2),
                  common::formatTime(half.totalIdle)});
    }
    t.print(std::cout);

    // Wire-latency sweep at 128 subdomains (or the largest feasible).
    std::cout << "\nWire-latency sensitivity (event sim, full duplex, "
                 "128 subdomains):\n";
    const partition::Partition part = partitioner.partition(m, 128);
    const parallel::CommSchedule schedule =
        parallel::CommSchedule::build(m, part);
    common::Table w({"wire latency L", "T_comm", "vs. L=0"});
    double base = 0;
    for (double wire : {0.0, 1e-6, 5e-6, 22e-6, 100e-6}) {
        const parallel::EventSimResult r = parallel::simulateExchange(
            schedule, machine, parallel::EventSimOptions{wire, true});
        if (wire == 0.0)
            base = r.tComm;
        w.addRow({common::formatTime(wire), common::formatTime(r.tComm),
                  common::formatFixed(r.tComm / base, 2) + "x"});
    }
    w.print(std::cout);

    std::cout
        << "\nReading: the closed-form model tracks the event-driven "
           "execution within a small factor across the whole sweep — "
           "the scheduling effects it ignores (receive queueing, idle "
           "waits) do not change the story, and wire latency is "
           "negligible until it reaches the 22 us per-message overhead "
           "— the empirical basis for the paper's constant-latency "
           "network assumption (§3.3).\n";
    return 0;
}
