/**
 * @file
 * The §4.1 scaling story as a table: efficiency of every Quake instance
 * (Figure 7 reference data) on the paper's named machines, plus the
 * largest PE count that holds 90% / 80% / 50% efficiency.  Shows the
 * two laws the paper derives: F/C_max ~ O(n^{1/3}) (tenfold problem
 * growth buys only ~2x in the ratio) and the resulting ceiling on
 * scalable PE counts for a fixed network.
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "parallel/machine.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    (void)args;
    bench::benchHeader("Efficiency and scalability across machines",
                       "the Section 4.1 scaling analysis");

    for (const parallel::MachineModel &machine :
         {parallel::crayT3d(), parallel::crayT3e(),
          parallel::currentMachine100(), parallel::futureMachine200()}) {
        std::cout << "--- " << machine.name << " (T_f = "
                  << common::formatTime(machine.tf) << ", T_l = "
                  << common::formatTime(machine.tl) << ", T_w = "
                  << common::formatTime(machine.tw) << ") ---\n";
        common::Table t({"mesh", "E@4", "E@8", "E@16", "E@32", "E@64",
                         "E@128", "max p for E>=0.9", "E>=0.8",
                         "E>=0.5"});
        for (int mi = 0; mi < ref::kNumMeshes; ++mi) {
            const ref::PaperMesh mesh = static_cast<ref::PaperMesh>(mi);
            std::vector<std::string> row = {ref::paperMeshName(mesh)};
            int max90 = 0, max80 = 0, max50 = 0;
            for (int subdomains : ref::kSubdomainCounts) {
                const core::SmvpShape shape =
                    ref::shapeFor(mesh, subdomains);
                const double t_comp = shape.flops * machine.tf;
                const double t_comm = shape.blocksMax * machine.tl +
                                      shape.wordsMax * machine.tw;
                const double e = t_comp / (t_comp + t_comm);
                row.push_back(common::formatFixed(e, 2));
                if (e >= 0.9)
                    max90 = subdomains;
                if (e >= 0.8)
                    max80 = subdomains;
                if (e >= 0.5)
                    max50 = subdomains;
            }
            auto cell = [](int p) {
                return p == 0 ? std::string("none") : std::to_string(p);
            };
            row.push_back(cell(max90));
            row.push_back(cell(max80));
            row.push_back(cell(max50));
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout
        << "Reading: each tenfold problem-size step (sf5 -> sf2 -> "
           "sf1) roughly doubles F/C_max and therefore roughly doubles "
           "the PE count a fixed network can sustain at a given "
           "efficiency — the O(n^{1/3}) law of Section 4.1.  \"We "
           "cannot rely on simply increasing the problem size to "
           "guarantee good efficiency.\"\n";
    return 0;
}
