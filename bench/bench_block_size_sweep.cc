/**
 * @file
 * Extension of Figure 10(b): the latency budget as a function of the
 * transfer-unit (block) size, from single words through cache lines and
 * pages up to maximally aggregated messages.  Quantifies the paper's
 * conclusion (2): because messages are small (M_avg of Figure 7), block
 * aggregation runs out of room — the latency budget grows linearly in
 * block size only until blocks reach the message size, then saturates
 * at the maximal-block bound.
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "core/requirements.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    (void)args;
    bench::benchHeader(
        "Latency budget vs. transfer-unit size (sf2/128, 200 MFLOPS, "
        "E = 0.9)",
        "an extension of Figure 10(b)");

    const core::SmvpShape base =
        ref::shapeFor(ref::PaperMesh::kSf2, 128);
    const ref::Figure7Entry &entry =
        ref::figure7(ref::PaperMesh::kSf2, 128);
    const double tf = core::tfFromMflops(ref::kFutureMachineMflops);

    common::Table t({"block words", "block bytes", "B_max",
                     "T_l budget @ inf burst", "T_l budget @ 600 MB/s"});
    for (double block_words :
         {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
        // Blocks cannot exceed the (average) message: cap at M_avg.
        const double effective =
            std::min(block_words, static_cast<double>(entry.messageAvg));
        const core::SmvpShape shape =
            core::withFixedBlockSize(base, effective);
        const double tc = core::requiredTc(shape, 0.9, tf);
        const double tl_inf = core::latencyBudget(shape, tc, 0.0);
        const double tl_600 =
            core::latencyForBurstBandwidth(shape, tc, 600e6);
        t.addRow({common::formatFixed(block_words, 0),
                  common::formatFixed(8 * block_words, 0),
                  common::formatCount(
                      static_cast<std::int64_t>(shape.blocksMax)),
                  common::formatTime(tl_inf),
                  tl_600 < 0 ? "infeasible"
                             : common::formatTime(tl_600)});
    }

    // The maximal-aggregation limit for reference.
    const double tc = core::requiredTc(base, 0.9, tf);
    t.addRow({"max (1 msg/peer)", "-",
              common::formatCount(
                  static_cast<std::int64_t>(base.blocksMax)),
              common::formatTime(core::latencyBudget(base, tc, 0.0)),
              common::formatTime(
                  core::latencyForBurstBandwidth(base, tc, 600e6))});
    t.print(std::cout);

    std::cout
        << "\nReading: each doubling of the block size doubles the "
           "latency budget — until blocks reach the average message "
           "size (M_avg = 459 words for sf2/128), where the curve "
           "saturates at the maximal-aggregation bound of ~9 us.  "
           "Large irregular applications simply do not have large "
           "enough messages to buy more latency tolerance, which is "
           "conclusion (2) of the paper: latency must be engineered "
           "down, not amortized away.\n";
    return 0;
}
