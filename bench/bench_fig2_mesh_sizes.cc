/**
 * @file
 * Figure 2 — sizes of the Quake meshes — regenerated on the synthetic
 * San Fernando pipeline, with the published values alongside.  Also
 * checks the §2.1 memory claim (~1.2 KByte per node at runtime).
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "sparse/assembly.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader("Mesh sizes: synthetic vs. published",
                       "Figure 2 and the Section 2.1 memory claim");

    common::Table t({"mesh", "nodes", "elements", "edges", "avg degree",
                     "paper nodes", "paper elements", "paper edges"});

    for (const bench::BenchMesh &bm : bench::meshLadder(args)) {
        const mesh::TetMesh &m = bench::cachedMesh(bm);
        const mesh::MeshStats s = m.computeStats();
        const ref::MeshSizes &paper =
            ref::figure2(ref::paperMeshFromName(mesh::sfClassName(bm.cls)));
        t.addRow({bm.label, common::formatCount(s.numNodes),
                  common::formatCount(s.numElements),
                  common::formatCount(s.numEdges),
                  common::formatFixed(s.avgDegree, 1),
                  common::formatCount(paper.nodes),
                  common::formatCount(paper.elements),
                  common::formatCount(paper.edges)});
    }
    t.print(std::cout);
    std::cout << "\n(Scaled rows generate fewer nodes by design: an "
                 "h-scale of k reduces counts by ~k^3.  Pass --full for "
                 "full-size sf2/sf1.)\n";

    // Section 2.1: ~1.2 KByte of runtime memory per node.
    std::cout << "\nRuntime memory per node (stiffness + 5 state "
                 "vectors; paper: ~1.2 KByte/node):\n";
    common::Table mem({"mesh", "bytes/node"});
    const mesh::LayeredBasinModel model;
    for (const bench::BenchMesh &bm : bench::meshLadder(args)) {
        if (bm.cls == mesh::SfClass::kSf1 && !args.has("full"))
            break; // the 1/4-scale stand-in adds nothing here
        const mesh::TetMesh &m = bench::cachedMesh(bm);
        const sparse::Bcsr3Matrix k = sparse::assembleStiffness(m, model);
        mem.addRow({bm.label,
                    common::formatFixed(sparse::bytesPerNode(k, 5), 0)});
    }
    mem.print(std::cout);
    return 0;
}
