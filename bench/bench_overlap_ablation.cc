/**
 * @file
 * Ablation: the overlap question from the paper's footnote 1.  The
 * Quake implementations do not overlap computation with communication;
 * the paper models T = T_comp + T_comm and argues this is conservative.
 * This harness quantifies what perfect overlap (T = max(T_comp,
 * T_comm)) would buy on the published sf2 instances across machines —
 * bounded by 2x, and small wherever efficiency is already high.
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "parallel/machine.h"
#include "parallel/phase_simulator.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader("Overlap ablation (footnote 1)",
                       "the modeling choice in Section 3");

    const bench::BenchMesh bm =
        args.has("full")
            ? bench::BenchMesh{mesh::SfClass::kSf2, 1.0, "sf2"}
            : bench::BenchMesh{mesh::SfClass::kSf2, 2.0,
                               "sf2 (1/2 scale)"};
    const mesh::TetMesh &m = bench::cachedMesh(bm);

    for (const parallel::MachineModel &machine :
         {parallel::crayT3e(), parallel::futureMachine200()}) {
        std::cout << "--- " << machine.name << " ---\n";
        common::Table t({"subdomains", "E (no overlap)",
                         "E (perfect overlap)", "speedup from overlap"});
        for (int subdomains : ref::kSubdomainCounts) {
            const core::SmvpCharacterization ch =
                bench::characterizeInstance(m, subdomains, bm.label);
            const parallel::PhaseTimes none =
                parallel::simulateSmvp(ch, machine);
            const parallel::PhaseTimes overlap = parallel::simulateSmvp(
                ch, machine, parallel::OverlapMode::kPerfect);
            t.addRow({std::to_string(subdomains),
                      common::formatFixed(none.efficiency, 3),
                      common::formatFixed(overlap.efficiency, 3),
                      common::formatFixed(none.tSmvp / overlap.tSmvp,
                                          2) +
                          "x"});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout
        << "Reading: overlap can never help by more than 2x, and where "
           "the code already runs at E > 0.9 it buys almost nothing — "
           "supporting the paper's choice to model (and build) the "
           "simpler non-overlapped runtime and keep its bandwidth and "
           "latency estimates conservative.\n";
    return 0;
}
