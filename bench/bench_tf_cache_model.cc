/**
 * @file
 * Why T_f is what it is: replay the SMVP's address stream through a
 * modeled memory hierarchy and predict the sustained rate (§3.1/§4).
 * The paper's observation to reproduce: the T3E runs the local Quake
 * SMVP at ~70 MFLOPS — 12% of its 600 MFLOPS peak — because the data
 * structures do not fit in cache and the x gather is irregular.
 */

#include "bench/bench_util.h"

#include "arch/smvp_trace.h"
#include "core/reference.h"
#include "sparse/assembly.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    const common::Args args(argc, argv);
    bench::benchHeader("Predicting T_f from the memory hierarchy",
                       "the Section 3.1 / Section 4 sustained-rate "
                       "observations");

    // A 21164 (T3E node)-flavoured hierarchy: 8KB direct L1, 96KB
    // 3-way L2, 600 MFLOPS peak.
    arch::MemoryHierarchy t3e_like;
    const arch::CoreModel t3e_core{600e6};

    // A memory system an order of magnitude faster, same core.
    arch::MemoryHierarchy fast = t3e_like;
    fast.l2HitSeconds = 4e-9;
    fast.memorySeconds = 20e-9;

    const mesh::LayeredBasinModel model;
    common::Table t({"matrix", "nnz", "MB", "L1 miss", "L2 miss",
                     "MFLOPS (T3E-like)", "% of peak",
                     "MFLOPS (fast mem)"});
    for (const bench::BenchMesh &bm : bench::meshLadder(args)) {
        if (bm.cls == mesh::SfClass::kSf1 && !args.has("full"))
            continue;
        const mesh::TetMesh &m = bench::cachedMesh(bm);
        const sparse::Bcsr3Matrix k = sparse::assembleStiffness(m, model);

        const arch::TfPrediction slow =
            arch::predictSmvpTf(k, t3e_like, t3e_core);
        const arch::TfPrediction quick =
            arch::predictSmvpTf(k, fast, t3e_core);

        const double mbytes =
            (72.0 * k.numBlocks() + 4.0 * k.numBlocks() +
             8.0 * (k.numBlockRows() + 1) + 48.0 * k.numBlockRows()) /
            1e6;
        t.addRow({bm.label, common::formatCount(k.nnz()),
                  common::formatFixed(mbytes, 1),
                  common::formatFixed(100 * slow.memory.l1MissRate(), 1) +
                      "%",
                  common::formatFixed(
                      slow.memory.accesses > 0
                          ? 100.0 * slow.memory.l2Misses /
                                slow.memory.accesses
                          : 0.0,
                      1) + "%",
                  common::formatFixed(slow.mflops, 0),
                  common::formatFixed(100 * slow.mflops / 600.0, 1) +
                      "%",
                  common::formatFixed(quick.mflops, 0)});
    }
    t.print(std::cout);

    std::cout
        << "\nPaper reference point: the T3E sustains ~70 MFLOPS on "
           "this kernel — 12% of peak (T_f = 14 ns).  The replayed "
           "prediction lands in the same tens-of-MFLOPS, ~10%-of-peak "
           "regime for every out-of-cache matrix, and shows the "
           "mechanism: L1/L2 miss rates set T_f, not the FPU.  The "
           "fast-memory column is the paper's implicit counterfactual "
           "— better memory systems, not faster cores, raise the "
           "sustained rate (and with it, via Equation 1, the demand "
           "on the network).\n";
    return 0;
}
