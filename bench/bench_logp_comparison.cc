/**
 * @file
 * Section 3.3's model-comparison discussion made quantitative: the
 * paper's Equation (2) vs. the LogGP accounting of the same exchange
 * phase, with the documented correspondence o = T_l, G = T_w.  The
 * point: the two agree to within one per-message word-time when the
 * wire latency L is negligible — and the paper's "infinite capacity,
 * constant latency" network assumption is visible as the L at which
 * they diverge.
 */

#include "bench/bench_util.h"

#include "core/logp.h"
#include "core/reference.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader("Equation (2) vs. LogGP on the exchange phase",
                       "the Section 3.3 LogP discussion");

    const bench::BenchMesh bm =
        args.has("full")
            ? bench::BenchMesh{mesh::SfClass::kSf2, 1.0, "sf2"}
            : bench::BenchMesh{mesh::SfClass::kSf2, 2.0,
                               "sf2 (1/2 scale)"};
    const mesh::TetMesh &m = bench::cachedMesh(bm);

    const double tl = ref::kCrayT3eTl;
    const double tw = ref::kCrayT3eTw;
    std::cout << "Machine constants: o = T_l = "
              << common::formatTime(tl) << ", G = T_w = "
              << common::formatTime(tw) << " (Cray T3E)\n\n";

    common::Table t({"subdomains", "Eq.(2) T_comm", "LogGP (L=0)",
                     "LogGP (L=1us)", "LogGP (L=100us)", "gap @ L=0"});
    for (int subdomains : ref::kSubdomainCounts) {
        const core::SmvpCharacterization ch =
            bench::characterizeInstance(m, subdomains, bm.label);

        const double block = core::blockModelCommTime(ch, tl, tw);
        std::vector<std::string> row = {std::to_string(subdomains),
                                        common::formatTime(block)};
        double loggp0 = 0;
        for (double wire : {0.0, 1e-6, 100e-6}) {
            const core::LogGpPhase phase = core::logGpCommTime(
                ch, core::LogGpParams::fromBlockModel(tl, tw, wire));
            if (wire == 0.0)
                loggp0 = phase.tComm;
            row.push_back(common::formatTime(phase.tComm));
        }
        row.push_back(common::formatFixed(
                          100.0 * (block - loggp0) / block, 2) +
                      "%");
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout
        << "\nReading: at L = 0 the two models differ only by B_max "
           "word-times (the k vs k-1 payload convention) — a fraction "
           "of a percent.  A 1 us wire latency is invisible next to "
           "the 22 us per-message overhead; only an implausible 100 us "
           "network moves the numbers, supporting the paper's decision "
           "to model the network as constant-latency and focus on the "
           "per-PE overheads (T_l) instead.  This is also why the "
           "paper says its T_l \"is similar to the overhead parameter "
           "o in LogP\" while T_w, F, B_max, C_max have no LogP "
           "counterparts.\n";
    return 0;
}
