/**
 * @file
 * Fault-tolerance ablation: how the Figure 10/11 communication
 * requirements move when the network is unreliable.
 *
 * The paper's tradeoff curves assume every block arrives exactly once.
 * This harness executes the same exchange schedules through the
 * ack/timeout/retransmission protocol (reliable_exchange.h) under
 * increasing message-drop rates, measures the phase-time inflation the
 * protocol pays to recover, and recomputes the Section 4.4 design
 * points with the communication budget shrunk by that inflation: a
 * protocol that wastes a factor I of the phase needs hardware a factor
 * I faster to hit the same efficiency target.
 */

#include "bench/bench_util.h"

#include <iomanip>
#include <sstream>

#include "core/perf_model.h"
#include "core/reference.h"
#include "parallel/event_sim.h"
#include "parallel/reliable_exchange.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader(
        "Communication requirements on an unreliable network",
        "Figures 10/11 under injected faults");

    const bench::BenchMesh bm =
        args.has("full") ? bench::BenchMesh{mesh::SfClass::kSf2, 1.0,
                                            "sf2"}
        : args.has("small")
            ? bench::BenchMesh{mesh::SfClass::kSf10, 1.0, "sf10"}
            : bench::BenchMesh{mesh::SfClass::kSf2, 2.0,
                               "sf2 (1/2 scale)"};
    const mesh::TetMesh &m = bench::cachedMesh(bm);
    const int subdomains = args.has("small") ? 16 : 64;

    // The paper's hypothetical future machine: 200 MFLOPS sustained,
    // and a communication system at the hardest Figure 11 corner
    // (~2 us block latency, ~600 MB/s burst).
    const parallel::MachineModel machine = parallel::futureMachine200();
    const std::uint64_t seed =
        args.has("seed")
            ? static_cast<std::uint64_t>(args.getInt("seed", 1))
            : 0x5eedULL;

    const partition::GeometricBisection partitioner;
    const partition::Partition part = partitioner.partition(m, subdomains);
    const parallel::CommSchedule schedule =
        parallel::CommSchedule::build(m, part);
    const core::SmvpCharacterization ch = bench::characterizeInstance(
        m, subdomains, bm.label);
    const core::SmvpShape shape =
        core::SmvpShape::fromSummary(core::summarize(ch));

    const parallel::EventSimResult baseline =
        parallel::simulateExchange(schedule, machine);

    std::cout << "Instance: " << bm.label << ", " << subdomains
              << " subdomains, machine " << machine.name << " (T_l = "
              << common::formatTime(machine.tl) << ", burst "
              << common::formatBandwidth(machine.burstBandwidthBytes())
              << ")\nFault-free exchange phase: "
              << common::formatTime(baseline.tComm) << "\n\n";

    // --- 1. protocol cost sweep ---------------------------------------
    const double drop_rates[] = {0.0, 1e-4, 1e-3, 1e-2};
    std::vector<double> inflation;
    const auto rateLabel = [](double rate) {
        if (rate == 0.0)
            return std::string("0");
        std::ostringstream os;
        os << std::scientific << std::setprecision(0) << rate;
        return os.str();
    };

    common::Table sweep({"drop rate", "T_comm", "inflation", "retrans",
                         "timeouts", "timer wait", "lost", "stale"});
    for (double rate : drop_rates) {
        parallel::ReliableExchangeOptions options;
        options.faults.seed = seed;
        options.faults.dropProbability = rate;
        options.faults.ackDropProbability = rate;
        const parallel::ReliableExchangeResult r =
            parallel::simulateReliableExchange(schedule, machine,
                                               options);
        const double infl = r.tComm / baseline.tComm;
        inflation.push_back(infl);
        sweep.addRow(
            {rateLabel(rate),
             common::formatTime(r.tComm),
             common::formatFixed(infl, 3) + "x",
             std::to_string(r.retransmissions),
             std::to_string(r.timeoutsFired),
             common::formatTime(r.timeoutWaitSeconds),
             std::to_string(
                 static_cast<long long>(r.lostExchanges.size())),
             common::formatFixed(100.0 * r.staleFraction, 2) + "%"});
    }
    std::cout << "Protocol cost of reliability (ack on every message, "
                 "retransmit on timeout):\n";
    bench::printTable(sweep, args);

    // --- 2. requirement shift -----------------------------------------
    // At drop rate f the protocol inflates the phase by I(f); to still
    // meet the E = 0.9 target the hardware budget shrinks to T_c / I.
    const double tf = core::tfFromMflops(ref::kFutureMachineMflops);
    const double tc_target = core::requiredTc(shape, 0.9, tf);
    const double tw600 =
        core::kBytesPerWord / (600.0 * 1e6); // 600 MB/s burst

    common::Table shift({"drop rate", "inflation", "half-bw burst",
                         "half-bw T_l", "T_l budget @600MB/s"});
    for (std::size_t i = 0; i < inflation.size(); ++i) {
        const double tc_eff = tc_target / inflation[i];
        const core::HalfBandwidthPoint p =
            core::halfBandwidthPoint(shape, tc_eff);
        const double budget =
            core::latencyBudget(shape, tc_eff, tw600);
        shift.addRow({rateLabel(drop_rates[i]),
                      common::formatFixed(inflation[i], 3) + "x",
                      common::formatBandwidth(p.burstBandwidthBytes),
                      common::formatTime(p.latency),
                      budget >= 0.0 ? common::formatTime(budget)
                                    : "infeasible"});
    }
    std::cout << "\nFigure 10/11 design points at E = 0.9, "
              << common::formatFixed(ref::kFutureMachineMflops, 0)
              << " MFLOPS, with the budget deflated by the measured "
                 "inflation:\n";
    bench::printTable(shift, args);

    // --- 3. graceful degradation --------------------------------------
    parallel::ReliableExchangeOptions harsh;
    harsh.faults.seed = seed;
    harsh.faults.dropProbability = 0.5;
    harsh.maxRetries = 3;
    const parallel::ReliableExchangeResult r =
        parallel::simulateReliableExchange(schedule, machine, harsh);
    std::cout << "\nGraceful degradation (drop rate 0.5, retry budget "
              << harsh.maxRetries << "): phase completes in "
              << common::formatTime(r.tComm) << " with "
              << r.lostExchanges.size() << " exchanges abandoned; "
              << common::formatFixed(100.0 * r.staleFraction, 2)
              << "% of boundary words stale in y = Kx.\n";

    std::cout
        << "\nReading: a single drop costs a full timeout (the receiver "
           "queue's worth of waiting), so per-mille drop rates already "
           "cut the Section 4.4 block-latency budget roughly in half, "
           "and at percent-level rates the 600 MB/s burst design point "
           "becomes infeasible outright — reliability is not free, and "
           "requirement studies on lossy networks must model the "
           "recovery protocol, not just the wires.\n";
    return 0;
}
