/**
 * @file
 * Whole-application prediction: end-to-end running time, speedup, and
 * the §2.3 SMVP fraction for the full 6000-step Quake runs on the
 * paper's machines, derived from the Figure 7 instances through the
 * application model.  Also reproduces the motivation for the paper's
 * abstraction: the SMVP share of each step stays above 80% at every
 * operating point, so modeling the SMVP models the application.
 */

#include "bench/bench_util.h"

#include "core/app_model.h"
#include "core/reference.h"
#include "parallel/machine.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    (void)args;
    bench::benchHeader(
        "Whole-application running time and speedup (6000 steps)",
        "the Section 2.3 dominance claim and end-to-end implications");

    for (const parallel::MachineModel &machine :
         {parallel::crayT3e(), parallel::futureMachine200()}) {
        const core::AppMachine app_machine{machine.tf, machine.tl,
                                           machine.tw};
        std::cout << "--- " << machine.name << " ---\n";
        for (const ref::PaperMesh mesh :
             {ref::PaperMesh::kSf5, ref::PaperMesh::kSf2}) {
            const double total_nodes =
                static_cast<double>(ref::figure2(mesh).nodes);
            std::cout << ref::paperMeshName(mesh) << ":\n";
            common::Table t({"PEs", "step time", "total run",
                             "SMVP share", "comm share", "speedup",
                             "parallel eff"});
            for (int p : ref::kSubdomainCounts) {
                const core::SmvpShape shape = ref::shapeFor(mesh, p);
                const double nodes_per_pe = total_nodes / p * 1.08;
                const core::AppPrediction run = core::predictRun(
                    shape, nodes_per_pe, app_machine);
                const double speedup = core::predictedSpeedup(
                    shape, p, total_nodes, nodes_per_pe, app_machine);
                t.addRow({std::to_string(p),
                          common::formatTime(run.stepSeconds),
                          common::formatTime(run.totalSeconds),
                          common::formatFixed(100 * run.smvpFraction,
                                              1) + "%",
                          common::formatFixed(100 * run.commFraction,
                                              1) + "%",
                          common::formatFixed(speedup, 1),
                          common::formatFixed(speedup / p, 2)});
            }
            t.print(std::cout);
            std::cout << "\n";
        }
    }

    std::cout
        << "Reading: the SMVP (compute + exchange) holds 85-95% of "
           "every step — the empirical license for the paper's "
           "abstraction (>80%, Section 2.3).  Speedups track the "
           "SMVP's efficiency curve: where Figure 9's bandwidth "
           "requirement is unmet, the whole application flattens.  A "
           "60-second sf2 simulation that takes hours sequentially "
           "drops to minutes at 128 PEs — exactly the regime the CMU "
           "project ran in production.\n";
    return 0;
}
