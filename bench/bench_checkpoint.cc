/**
 * @file
 * Checkpoint/restart overhead benchmark (DESIGN.md §11): what does
 * crash-safety cost the fused step loop, and what does it cost to come
 * back from the dead?
 *
 * Three runs of the same distributed fused scenario:
 *
 *   plain         checkpointing disabled — the baseline step rate, with
 *                 the global allocation hook proving the disabled hook
 *                 costs ZERO heap allocations (the acceptance gate);
 *   checkpointed  a real checkpoint written atomically to disk every
 *                 --every steps, timing each write;
 *   resumed       a fresh engine restored from the last on-disk
 *                 checkpoint and advanced to the same final step — its
 *                 displacement triad must be bitwise identical to both
 *                 runs above (checkpointing must not perturb, and
 *                 resuming must not diverge).
 *
 * Also times readCheckpoint in isolation.  Emits BENCH_checkpoint.json
 * for the perf trajectory.  Exit status reflects correctness only:
 * nonzero iff the zero-allocation contract or any bitwise comparison
 * fails.
 *
 * Flags: --smoke (tiny mesh, few steps — the `perf` ctest label),
 *        --pes N, --threads N, --steps N, --every K, --dir DIR.
 */

#include "bench/bench_util.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/error.h"
#include "quake/simulation.h"
#include "quake/time_stepper.h"
#include "resilience/checkpoint.h"

// ---------------------------------------------------------------------
// Allocation-counting hook: every heap allocation in the process goes
// through here.  Counting is relaxed-atomic so the hook itself never
// perturbs the timing it guards.
// ---------------------------------------------------------------------

namespace
{
std::atomic<std::int64_t> g_allocations{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace quake;

/** One timed stepping run. */
struct RunResult
{
    double wallSeconds = 0.0;
    std::int64_t allocations = 0;
    std::vector<double> u;
    std::vector<double> up;
    double peak = 0.0;
};

/**
 * Step `engine` from its current count up to `target` total steps,
 * timing the loop and the allocations it makes.  The warm-up step (if
 * any) is the caller's business so every run ends at the same absolute
 * step index.
 */
RunResult
timeRun(sim::SimulationEngine &engine, std::int64_t target)
{
    sim::ExplicitTimeStepper &stepper = *engine.stepper;
    const std::int64_t alloc0 =
        g_allocations.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    while (stepper.stepCount() < target)
        stepper.step();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult r;
    r.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    r.allocations =
        g_allocations.load(std::memory_order_relaxed) - alloc0;
    r.u = stepper.displacement();
    r.up = stepper.previousDisplacement();
    r.peak = stepper.peakDisplacement();
    return r;
}

bool
bitwiseEqual(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(double)) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::Args args(argc, argv);
    bench::benchHeader(
        "Checkpoint/restart overhead (crash-safe step loop)",
        "the Section 2.2 step loop, supervised per DESIGN.md section 11");

    const bench::EngineBenchOptions opt = bench::engineBenchOptions(args);
    const bool smoke = opt.smoke;
    const int steps =
        static_cast<int>(args.getInt("steps", smoke ? 60 : 300));
    const int every =
        static_cast<int>(args.getInt("every", smoke ? 10 : 25));
    const std::string dir = args.get("dir", ".");
    const std::string path = dir + "/bench_checkpoint.ckpt";

    const bench::BenchMesh bm = opt.mesh;
    const mesh::TetMesh &m = bench::cachedMesh(bm);
    const mesh::LayeredBasinModel model;

    sim::SimulationConfig config;
    config.numPes = opt.pes;
    config.smvpThreads = opt.threads;

    // Every run is driven to the same absolute step index: one warm-up
    // step outside the timed window, then `steps` timed steps.
    const std::int64_t target = steps + 1;

    // --- Plain run: hook disabled, allocation gate armed. ---
    sim::SimulationEngine plain_engine =
        sim::makeSimulationEngine(m, model, config);
    std::cout << "mesh: " << bm.label << ", " << m.numNodes()
              << " nodes, " << steps << " timed steps, dt = "
              << plain_engine.dt << " s\n"
              << "logical PEs: " << opt.pes
              << ", checkpoint every " << every << " steps\n\n";
    plain_engine.stepper->step(); // warm caches and pool
    const RunResult plain = timeRun(plain_engine, target);

    // --- Checkpointed run: a real atomic write every `every` steps. ---
    sim::SimulationEngine ckpt_engine =
        sim::makeSimulationEngine(m, model, config);
    resilience::Checkpoint last;
    std::int64_t writes = 0;
    std::size_t ckpt_bytes = 0;
    double write_seconds = 0.0;
    ckpt_engine.stepper->checkpointEvery(
        every, [&](const sim::ExplicitTimeStepper &st) {
            last.fingerprint = ckpt_engine.fingerprint;
            last.dt = ckpt_engine.dt;
            last.plannedSteps = target;
            st.saveState(last.state);
            last.reportPeak = st.peakDisplacement();
            const auto w0 = std::chrono::steady_clock::now();
            ckpt_bytes = resilience::writeCheckpoint(path, last);
            const auto w1 = std::chrono::steady_clock::now();
            write_seconds +=
                std::chrono::duration<double>(w1 - w0).count();
            ++writes;
        });
    ckpt_engine.stepper->step(); // warm-up, same absolute step index
    const RunResult ckpt = timeRun(ckpt_engine, target);
    QUAKE_EXPECT(writes > 0, "checkpoint hook never fired in " << steps
                                 << " steps at interval " << every);

    // --- Read latency, measured in isolation. ---
    const int read_reps = 5;
    double read_seconds = 0.0;
    for (int i = 0; i < read_reps; ++i) {
        const auto r0 = std::chrono::steady_clock::now();
        const resilience::Checkpoint back =
            resilience::readCheckpoint(path);
        const auto r1 = std::chrono::steady_clock::now();
        read_seconds += std::chrono::duration<double>(r1 - r0).count();
        QUAKE_EXPECT(back.fingerprint == ckpt_engine.fingerprint,
                     "read-back checkpoint fingerprint mismatch");
    }

    // --- Resume run: restore the last on-disk checkpoint and finish. ---
    sim::SimulationEngine resume_engine =
        sim::makeSimulationEngine(m, model, config);
    const resilience::Checkpoint restored =
        resilience::readCheckpoint(path);
    resilience::requireCompatible(restored, resume_engine);
    resume_engine.stepper->restoreState(restored.state);
    const std::int64_t resumed_from = restored.state.steps;
    const RunResult resumed = timeRun(resume_engine, target);

    // --- Correctness gates. ---
    const bool zero_alloc_ok = plain.allocations == 0;
    const bool unperturbed =
        bitwiseEqual(plain.u, ckpt.u) && bitwiseEqual(plain.up, ckpt.up);
    const bool resume_ok =
        bitwiseEqual(resumed.u, plain.u) &&
        bitwiseEqual(resumed.up, plain.up) &&
        resumed.peak == plain.peak;

    // --- Report. ---
    const double plain_rate = steps / plain.wallSeconds;
    const double ckpt_rate = steps / ckpt.wallSeconds;
    const double overhead_pct =
        100.0 * (ckpt.wallSeconds - plain.wallSeconds) /
        plain.wallSeconds;
    const double write_ms = write_seconds / writes * 1e3;
    const double read_ms = read_seconds / read_reps * 1e3;

    common::Table table(
        {"configuration", "steps/s", "ms/step", "allocs/step"});
    table.addRow({"plain", common::formatFixed(plain_rate, 1),
                  common::formatFixed(1e3 / plain_rate, 3),
                  common::formatFixed(
                      static_cast<double>(plain.allocations) / steps,
                      2)});
    table.addRow({"checkpointed", common::formatFixed(ckpt_rate, 1),
                  common::formatFixed(1e3 / ckpt_rate, 3),
                  common::formatFixed(
                      static_cast<double>(ckpt.allocations) / steps,
                      2)});
    bench::printTable(table, args);

    std::cout << "\ncheckpoints written: " << writes << " ("
              << ckpt_bytes << " bytes each)\n"
              << "write latency       : "
              << common::formatFixed(write_ms, 3) << " ms/checkpoint\n"
              << "read latency        : "
              << common::formatFixed(read_ms, 3) << " ms/checkpoint\n"
              << "stepping overhead   : "
              << common::formatFixed(overhead_pct, 2) << "% at 1/"
              << every << " steps\n"
              << "resumed from step " << resumed_from << " of " << target
              << "\n\n"
              << "zero allocations with checkpointing disabled: "
              << (zero_alloc_ok ? "PASS" : "FAIL") << " ("
              << plain.allocations << " in " << steps << " steps)\n"
              << "checkpointing does not perturb the trajectory: "
              << (unperturbed ? "PASS" : "FAIL") << "\n"
              << "resumed run bitwise-equals uninterrupted run: "
              << (resume_ok ? "PASS" : "FAIL") << "\n";

    std::vector<bench::BenchJsonRecord> records;
    auto add_row = [&](const std::string &name, const RunResult &r) {
        bench::BenchJsonRecord rec;
        rec.kernel = name;
        rec.rows = static_cast<std::int64_t>(plain.u.size());
        rec.secondsPerSmvp = r.wallSeconds / steps;
        rec.extra.emplace_back("steps_per_sec",
                               steps / r.wallSeconds);
        rec.extra.emplace_back(
            "allocs_per_step",
            static_cast<double>(r.allocations) / steps);
        rec.extra.emplace_back("pes",
                               static_cast<double>(opt.pes));
        records.push_back(std::move(rec));
    };
    add_row("plain", plain);
    add_row("checkpointed", ckpt);
    records.back().extra.emplace_back("ckpt_write_ms", write_ms);
    records.back().extra.emplace_back("ckpt_read_ms", read_ms);
    records.back().extra.emplace_back(
        "ckpt_bytes", static_cast<double>(ckpt_bytes));
    records.back().extra.emplace_back("overhead_pct", overhead_pct);

    bench::writeBenchJson(
        "checkpoint", records,
        {{"mesh", bm.label},
         {"pes", std::to_string(opt.pes)},
         {"steps", std::to_string(steps)},
         {"checkpoint_every", std::to_string(every)},
         {"zero_alloc_ok", zero_alloc_ok ? "true" : "false"},
         {"resume_bitwise_equal", resume_ok ? "true" : "false"}});

    std::remove(path.c_str());
    return (zero_alloc_ok && unperturbed && resume_ok) ? 0 : 1;
}
