/**
 * @file
 * The SMVP engine benchmark: measures what this PR builds — the
 * persistent-pool parallel engine with boundary/interior overlap and
 * the register-blocked symmetric BCSR3 kernels — against the seed
 * scalar SymCsrMatrix::multiply path, on an sf10-class generated mesh.
 *
 * Emits BENCH_smvp.json (host info, per-kernel GFLOP/s and T_f) so the
 * perf trajectory can be tracked across commits, verifies that the
 * overlapped exchange is bit-for-bit identical to the barrier
 * schedule, and feeds the autotuned T_f into the §4 requirement sweep
 * so the Figure 9-style targets are derived from the kernel that
 * actually runs (exit status reflects the determinism check only).
 *
 * Flags: --smoke (tiny mesh, few reps — the `perf` ctest label),
 *        --pes N, --threads N, --reps N, --full (paper-scale sf10),
 *        --trace FILE / --metrics FILE (telemetry on the overlap run).
 */

#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "common/rng.h"
#include "core/requirements.h"
#include "parallel/parallel_smvp.h"
#include "spark/kernels.h"
#include "telemetry/collector.h"
#include "telemetry/export.h"

namespace
{

using namespace quake;

double
timeMultiplies(const std::function<void()> &fn, int reps)
{
    fn(); // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / reps;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::Args args(argc, argv);
    bench::benchHeader("SMVP engine (pool + overlap + blocked kernels)",
                       "the T_f measurements of Section 3.1");

    const bench::EngineBenchOptions opt = bench::engineBenchOptions(args);
    const bool smoke = opt.smoke;
    const int threads = opt.threads;
    const int pes = opt.pes;
    const int reps =
        static_cast<int>(args.getInt("reps", smoke ? 3 : 20));

    const bench::BenchMesh bm = opt.mesh;
    const mesh::TetMesh &m = bench::cachedMesh(bm);
    const mesh::LayeredBasinModel model;

    std::cout << "mesh: " << bm.label << ", " << m.numNodes()
              << " nodes, " << m.numElements() << " elements\n"
              << "hardware threads: "
              << parallel::WorkerPool::hardwareThreads()
              << ", logical PEs: " << pes << "\n\n";

    // --- Sequential kernel suite + autotuner. ---
    spark::KernelSuite suite(m, model);
    if (threads > 0)
        suite.setThreads(threads);
    const spark::AutotuneResult tuned = suite.autotune(reps);

    std::vector<bench::BenchJsonRecord> records;
    common::Table kt({"kernel", "s/SMVP", "GFLOP/s", "T_f (ns)"});
    double sym_seconds = 0.0;
    for (const spark::AutotuneEntry &e : tuned.entries) {
        if (e.kernel == spark::Kernel::kSym)
            sym_seconds = e.timing.secondsPerSmvp;
        kt.addRow({spark::kernelName(e.kernel),
                   common::formatFixed(e.timing.secondsPerSmvp * 1e3, 3) +
                       " ms",
                   common::formatFixed(e.timing.mflops / 1e3, 3),
                   common::formatFixed(e.timing.tf * 1e9, 3)});
        bench::BenchJsonRecord rec;
        rec.kernel = spark::kernelName(e.kernel);
        rec.rows = suite.dof();
        rec.nnz = suite.nnz();
        rec.secondsPerSmvp = e.timing.secondsPerSmvp;
        rec.gflops = e.timing.mflops / 1e3;
        rec.tfNs = e.timing.tf * 1e9;
        records.push_back(std::move(rec));
    }
    bench::printTable(kt, args);
    std::cout << "autotuner winner: " << spark::kernelName(tuned.best)
              << " (T_f = "
              << common::formatFixed(tuned.bestTiming.tf * 1e9, 3)
              << " ns)\n\n";

    // --- The distributed engine: pool + boundary/interior overlap. ---
    const partition::GeometricBisection partitioner;
    const parallel::DistributedProblem problem =
        parallel::distribute(m, model, partitioner.partition(m, pes));
    parallel::ParallelSmvp engine(problem, threads,
                                  parallel::ExchangeMode::kOverlapped);
    const parallel::ParallelSmvp barrier(problem, threads,
                                         parallel::ExchangeMode::kBarrier);

    // Telemetry on the overlap engine only: the timed loops below then
    // feed phase histograms and (sampled) spans into the collector.
    const bool want_telemetry =
        !opt.tracePath.empty() || !opt.metricsPath.empty();
    telemetry::CollectorConfig tc;
    tc.enabled = want_telemetry;
    telemetry::Collector collector(tc);
    if (want_telemetry)
        engine.setCollector(&collector);

    std::vector<double> x(static_cast<std::size_t>(suite.dof()));
    common::SplitMix64 rng(1998);
    for (double &v : x)
        v = rng.uniform(-1.0, 1.0);

    std::vector<double> y_engine;
    const double engine_seconds = timeMultiplies(
        [&] { y_engine = engine.multiply(x); }, reps);
    std::vector<double> y_barrier;
    const double barrier_seconds = timeMultiplies(
        [&] { y_barrier = barrier.multiply(x); }, reps);

    const bool bitwise_equal = (y_engine == y_barrier);
    const double flops = static_cast<double>(2 * suite.nnz());

    common::Table et({"configuration", "s/SMVP", "GFLOP/s",
                      "speedup vs smv-sym"});
    auto add_engine_row = [&](const std::string &name, double seconds) {
        et.addRow({name,
                   common::formatFixed(seconds * 1e3, 3) + " ms",
                   common::formatFixed(flops / seconds / 1e9, 3),
                   common::formatFixed(sym_seconds / seconds, 2) + "x"});
        bench::BenchJsonRecord rec;
        rec.kernel = name;
        rec.rows = suite.dof();
        rec.nnz = suite.nnz();
        rec.secondsPerSmvp = seconds;
        rec.gflops = flops / seconds / 1e9;
        rec.tfNs = seconds / flops * 1e9;
        rec.extra.emplace_back("speedup_vs_sym", sym_seconds / seconds);
        rec.extra.emplace_back("threads",
                               static_cast<double>(engine.numThreads()));
        rec.extra.emplace_back("pes", static_cast<double>(pes));
        records.push_back(std::move(rec));
    };
    add_engine_row("engine-overlap", engine_seconds);
    add_engine_row("engine-barrier", barrier_seconds);
    bench::printTable(et, args);

    std::cout << "\noverlap bitwise-equals barrier: "
              << (bitwise_equal ? "PASS" : "FAIL") << "\n";
    const double speedup = sym_seconds / engine_seconds;
    std::cout << "engine speedup vs seed scalar smv-sym: "
              << common::formatFixed(speedup, 2) << "x ("
              << (speedup >= 1.5 ? "meets" : "below")
              << " the 1.5x target"
              << (parallel::WorkerPool::hardwareThreads() < 4
                      ? "; note: < 4 hardware threads on this host"
                      : "")
              << ")\n\n";

    // --- Requirement targets from the tuned (measured) T_f. ---
    const core::SmvpCharacterization ch =
        parallel::characterize(problem, bm.label);
    const core::SmvpShape shape =
        core::SmvpShape::fromSummary(core::summarize(ch));
    const std::vector<core::RequirementRow> rows = core::requirementSweep(
        shape, core::gridFromMeasuredTf(tuned.bestTiming.tf,
                                        {0.5, 0.75, 0.9}));
    common::Table rt({"E target", "MFLOPS (measured)",
                      "required T_c (ns/word)", "required BW (MB/s)"});
    for (const core::RequirementRow &row : rows)
        rt.addRow({common::formatFixed(row.point.efficiency, 2),
                   common::formatFixed(row.point.mflops, 1),
                   common::formatFixed(row.tc * 1e9, 2),
                   common::formatFixed(
                       row.sustainedBandwidthBytes / 1e6, 1)});
    bench::printTable(rt, args);
    std::cout << "(Figure 9-style targets driven by the autotuned "
                 "kernel's measured T_f, not a datasheet rate.)\n";

    bench::writeBenchJson(
        "smvp", records,
        {{"mesh", bm.label},
         {"pes", std::to_string(pes)},
         {"engine_threads", std::to_string(engine.numThreads())},
         {"autotune_winner", spark::kernelName(tuned.best)},
         {"overlap_bitwise_equal", bitwise_equal ? "true" : "false"},
         {"speedup_vs_sym", common::formatFixed(speedup, 3)}});

    if (!opt.tracePath.empty() &&
        telemetry::writeChromeTrace(collector, opt.tracePath))
        std::cout << "[bench] wrote trace " << opt.tracePath << "\n";
    if (!opt.metricsPath.empty())
        telemetry::writeMetricsBenchJson(
            collector, "smvp_telemetry",
            {{"mesh", bm.label}, {"pes", std::to_string(pes)}},
            opt.metricsPath);

    return bitwise_equal ? 0 : 1;
}
