/**
 * @file
 * Figure 11 — half-bandwidths and half-bandwidth latencies for the
 * entire space of sf2 SMVPs (6 subdomain counts x 2 machine rates x 3
 * efficiencies), for maximal and four-word blocks.  Derived exactly
 * from the paper's Figure 7 entries via Equations (1) and (2).
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "core/requirements.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);

    bench::benchHeader(
        "Half-bandwidths and half-bandwidth latencies (sf2)",
        "Figure 11");

    for (bool four_word : {false, true}) {
        std::cout << (four_word
                          ? "--- four-word (cache-line) blocks ---\n"
                          : "--- maximally aggregated blocks ---\n");
        common::Table t({"subdomains", "MFLOPS", "E", "half burst bw",
                         "half-bw latency"});
        for (int subdomains : ref::kSubdomainCounts) {
            core::SmvpShape shape =
                ref::shapeFor(ref::PaperMesh::kSf2, subdomains);
            if (four_word)
                shape = core::withFixedBlockSize(shape, 4.0);
            for (double mflops : {ref::kCurrentMachineMflops,
                                  ref::kFutureMachineMflops}) {
                for (double e : ref::kEfficiencyGrid) {
                    const double tc = core::requiredTc(
                        shape, e, core::tfFromMflops(mflops));
                    const core::HalfBandwidthPoint p =
                        core::halfBandwidthPoint(shape, tc);
                    t.addRow({std::to_string(subdomains),
                              common::formatFixed(mflops, 0),
                              common::formatFixed(e, 1),
                              common::formatBandwidth(
                                  p.burstBandwidthBytes),
                              common::formatTime(p.latency)});
                }
            }
        }
        bench::printTable(t, args);
        std::cout << "\n";
    }

    std::cout
        << "Corners to reproduce from Section 4.4:\n"
           "  - easiest maximal-block case (4 subdomains, 100 MFLOPS, "
           "E = 0.5): ~3 MB/s burst with millisecond-scale latency\n"
           "  - hardest maximal-block case (128, 200 MFLOPS, E = 0.9): "
           "~600 MB/s burst, microsecond-scale latency\n"
           "  - hardest four-word case: ~600 MB/s burst with a "
           "latency budget under 100 ns\n";
    return 0;
}
