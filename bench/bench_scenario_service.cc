/**
 * @file
 * Scenario-service throughput: scenarios/sec as a first-class metric
 * (DESIGN.md §14).  Runs the same repeated-spec multi-tenant workload
 * through the ScenarioService twice — cold (cache disabled: every
 * request regenerates the mesh and reassembles the stiffness) and warm
 * (content-addressed prefix cache primed) — and reports throughput,
 * cache hit rate, and the warm/cold speedup the shared prefix buys.
 *
 * The hard gate is correctness, not speed: every warm service result
 * is compared against ScenarioService::runStandalone and the process
 * exits non-zero on any fingerprint mismatch — a cached prefix or a
 * packed neighbour that changed one bit of a tenant's answer is a bug,
 * never a trade-off.  Timings are reported (and into
 * BENCH_service.json for the cross-run differ) but do not gate.
 *
 * Usage: bench_scenario_service [--smoke] [--scenarios N] [--tenants T]
 *                               [--executors E] [--steps N] [--pes P]
 */

#include <chrono>
#include <future>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/error.h"
#include "service/service.h"

namespace
{

using namespace quake;
using SteadyClock = std::chrono::steady_clock;

struct ArmResult
{
    double seconds = 0.0;
    std::uint64_t completed = 0;
    service::PrefixCache::Stats cache;
    double prefixSeconds = 0.0;
    double stepSeconds = 0.0;
    std::vector<service::ScenarioResult> results;
};

service::ScenarioRequest
workloadRequest(int index, int tenants, std::int64_t steps, int pes)
{
    service::ScenarioRequest req;
    req.tenant = "tenant-" + std::to_string(index % tenants);
    req.label = "scenario-" + std::to_string(index);
    req.maxSteps = steps;
    req.numPes = pes;
    // Distinct sources over a shared prefix: the repeated-spec shape
    // the cache is designed for.
    req.wavelet.peakFrequencyHz = 0.25 + 0.05 * (index % 4);
    return req;
}

ArmResult
runArm(std::size_t cache_bytes, int scenarios, int tenants,
       int executors, std::int64_t steps, int pes)
{
    service::ServiceOptions opt;
    opt.executors = executors;
    opt.cacheBytes = cache_bytes;
    opt.queueCapacity =
        static_cast<std::size_t>(std::max(scenarios, 1));
    service::ScenarioService svc(opt);

    // Warm arm: prime the cache with one throwaway request so the
    // timed window measures steady-state serving, not the first build.
    if (cache_bytes > 0)
        svc.submit(workloadRequest(0, tenants, steps, pes)).get();

    std::vector<std::future<service::ScenarioResult>> futures;
    futures.reserve(static_cast<std::size_t>(scenarios));
    const SteadyClock::time_point t0 = SteadyClock::now();
    for (int i = 0; i < scenarios; ++i)
        futures.push_back(
            svc.submit(workloadRequest(i, tenants, steps, pes)));

    ArmResult arm;
    for (auto &f : futures) {
        service::ScenarioResult r = f.get();
        QUAKE_EXPECT(r.completed, "bench scenario failed: " << r.error);
        arm.completed += 1;
        arm.prefixSeconds += r.prefixSeconds;
        arm.stepSeconds += r.stepSeconds;
        arm.results.push_back(std::move(r));
    }
    arm.seconds =
        std::chrono::duration<double>(SteadyClock::now() - t0).count();
    svc.shutdown();
    arm.cache = svc.cacheStats();
    return arm;
}

int
run(int argc, char **argv)
{
    const common::Args args(argc, argv);
    const bool smoke = args.has("smoke");
    const int scenarios =
        static_cast<int>(args.getInt("scenarios", smoke ? 6 : 24));
    const int tenants = static_cast<int>(args.getInt("tenants", 3));
    const int executors = static_cast<int>(args.getInt("executors", 2));
    const std::int64_t steps = args.getInt("steps", smoke ? 10 : 60);
    const int pes = static_cast<int>(args.getInt("pes", 1));

    bench::benchHeader(
        "Scenario-service throughput: cold vs prefix-cached serving",
        "the serving-mode extension (DESIGN.md section 14)");
    std::cout << scenarios << " scenarios over " << tenants
              << " tenant(s), " << executors << " executor lane(s), "
              << steps << " steps each, "
              << (pes > 1 ? std::to_string(pes) + " PEs"
                          : std::string("sequential"))
              << "\n\n";

    const ArmResult cold =
        runArm(0, scenarios, tenants, executors, steps, pes);
    const ArmResult warm = runArm(std::size_t{256} << 20, scenarios,
                                  tenants, executors, steps, pes);

    const double cold_rate =
        static_cast<double>(cold.completed) / cold.seconds;
    const double warm_rate =
        static_cast<double>(warm.completed) / warm.seconds;
    const double speedup = cold.seconds / warm.seconds;
    const std::uint64_t lookups = warm.cache.hits + warm.cache.misses;
    const double hit_rate =
        lookups > 0 ? static_cast<double>(warm.cache.hits) /
                          static_cast<double>(lookups)
                    : 0.0;

    common::Table t({"arm", "scenarios", "wall s", "scenarios/sec",
                     "prefix s", "step s", "cache hits/misses"});
    t.addRow({"cold (no cache)", std::to_string(cold.completed),
              common::formatFixed(cold.seconds, 3),
              common::formatFixed(cold_rate, 1),
              common::formatFixed(cold.prefixSeconds, 3),
              common::formatFixed(cold.stepSeconds, 3),
              std::to_string(cold.cache.hits) + "/" +
                  std::to_string(cold.cache.misses)});
    t.addRow({"warm (primed)", std::to_string(warm.completed),
              common::formatFixed(warm.seconds, 3),
              common::formatFixed(warm_rate, 1),
              common::formatFixed(warm.prefixSeconds, 3),
              common::formatFixed(warm.stepSeconds, 3),
              std::to_string(warm.cache.hits) + "/" +
                  std::to_string(warm.cache.misses)});
    bench::printTable(t, args);

    std::cout << "\nwarm/cold speedup    : "
              << common::formatFixed(speedup, 2)
              << "x  (repeated-spec workload; prefix amortized)\n"
              << "warm cache hit rate  : "
              << common::formatFixed(100.0 * hit_rate, 1) << "%\n";

    // --- the hard gate: every warm result bitwise == standalone ---
    bool bitwise_equal = true;
    for (int i = 0; i < scenarios && bitwise_equal; ++i) {
        const service::ScenarioResult solo =
            service::ScenarioService::runStandalone(
                workloadRequest(i, tenants, steps, pes));
        const service::ScenarioResult &served =
            warm.results[static_cast<std::size_t>(i)];
        if (served.stateFingerprint != solo.stateFingerprint ||
            served.engineFingerprint != solo.engineFingerprint) {
            std::cout << "BITWISE MISMATCH on " << served.tenant << "/"
                      << served.label << ": service 0x" << std::hex
                      << served.stateFingerprint << ", standalone 0x"
                      << solo.stateFingerprint << std::dec << "\n";
            bitwise_equal = false;
        }
    }
    std::cout << "bitwise vs standalone: "
              << (bitwise_equal ? "IDENTICAL (all " +
                                      std::to_string(scenarios) +
                                      " scenarios)"
                                : "MISMATCH")
              << "\n";

    std::vector<bench::BenchJsonRecord> records;
    for (const ArmResult *arm : {&cold, &warm}) {
        bench::BenchJsonRecord r;
        r.kernel = arm == &cold ? "cold" : "warm";
        r.rows = scenarios;
        r.nnz = static_cast<std::int64_t>(arm->completed);
        r.secondsPerSmvp =
            arm->seconds / static_cast<double>(arm->completed);
        r.extra = {
            {"scenarios_per_sec",
             static_cast<double>(arm->completed) / arm->seconds},
            {"prefix_seconds", arm->prefixSeconds},
            {"step_seconds", arm->stepSeconds},
            {"cache_hits", static_cast<double>(arm->cache.hits)},
            {"cache_misses", static_cast<double>(arm->cache.misses)},
        };
        records.push_back(std::move(r));
    }
    bench::writeBenchJson(
        "service", records,
        {{"warm_cold_speedup", common::formatFixed(speedup, 3)},
         {"warm_cache_hit_rate", common::formatFixed(hit_rate, 3)},
         {"bitwise_equal", bitwise_equal ? "true" : "false"},
         {"scenarios", std::to_string(scenarios)},
         {"executors", std::to_string(executors)}});

    return bitwise_equal ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const quake::common::FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
