/**
 * @file
 * Figure 8 — sustained bisection bandwidth required for the sf2 SMVPs
 * under E in {0.5, 0.8, 0.9} and PE rates of 100 and 200 MFLOPS.
 *
 * The bisection volume V is a property of the partition that the paper
 * does not tabulate, so this figure runs on the synthetic pipeline
 * end-to-end (mesh -> partition -> V and C_max -> Equation 1).  The
 * published conclusion to reproduce: the worst case is modest (~700
 * MB/s at E = 0.9 on 200-MFLOP PEs) — a couple of links' worth — so
 * bisection bandwidth is not the binding constraint.
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "core/requirements.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader("Required sustained bisection bandwidth (sf2)",
                       "Figure 8");

    const bench::BenchMesh bm =
        args.has("full")
            ? bench::BenchMesh{mesh::SfClass::kSf2, 1.0, "sf2"}
            : bench::BenchMesh{mesh::SfClass::kSf2, 2.0,
                               "sf2 (1/2 scale)"};
    const mesh::TetMesh &m = bench::cachedMesh(bm);

    for (double mflops : {ref::kCurrentMachineMflops,
                          ref::kFutureMachineMflops}) {
        std::cout << "--- " << common::formatFixed(mflops, 0)
                  << "-MFLOP PEs ---\n";
        common::Table t({"subdomains", "V (words)", "E=0.5", "E=0.8",
                         "E=0.9", "per-PE bw @E=0.9"});
        for (int subdomains : ref::kSubdomainCounts) {
            const core::SmvpCharacterization ch =
                bench::characterizeInstance(m, subdomains, bm.label);
            const core::CharacterizationSummary s = core::summarize(ch);
            const core::SmvpShape shape =
                core::SmvpShape::fromSummary(s);
            const double tf = core::tfFromMflops(mflops);

            std::vector<std::string> row = {
                std::to_string(subdomains),
                common::formatCount(s.bisectionWords)};
            for (double e : ref::kEfficiencyGrid) {
                row.push_back(common::formatBandwidth(
                    core::requiredBisectionBandwidth(
                        shape, s.bisectionWords, e, tf)));
            }
            row.push_back(common::formatBandwidth(
                core::requiredSustainedBandwidth(shape, 0.9, tf)));
            t.addRow(row);
        }
        bench::printTable(t, args);
        std::cout << "\n";
    }

    std::cout << "Paper's reading of this figure: the worst case (~700 "
                 "MB/s at 128 subdomains, E = 0.9, 200 MFLOPS) is on "
                 "the order of a couple of modern links, so \"bisection "
                 "bandwidth is unlikely to be an issue\"; compare the "
                 "last column — the bisection demand is only a small "
                 "multiple of a single PE's own bandwidth demand.\n";
    return 0;
}
