/**
 * @file
 * Ablation: the Figure 5 network-interface model has distinct input
 * and output links.  The paper's accounting charges each PE for its
 * sends plus its receives (half duplex); this harness quantifies what
 * concurrent (full-duplex) links would buy — exactly 2x on T_comm,
 * because every exchange is symmetric — and how much of that survives
 * into end-to-end efficiency at each operating point.
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "parallel/machine.h"
#include "parallel/phase_simulator.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader("Half- vs. full-duplex network interfaces",
                       "the Figure 5 PE model");

    const bench::BenchMesh bm =
        args.has("full")
            ? bench::BenchMesh{mesh::SfClass::kSf2, 1.0, "sf2"}
            : bench::BenchMesh{mesh::SfClass::kSf2, 2.0,
                               "sf2 (1/2 scale)"};
    const mesh::TetMesh &m = bench::cachedMesh(bm);
    const parallel::MachineModel machine = parallel::crayT3e();

    common::Table t({"subdomains", "T_comm half", "T_comm full",
                     "E half", "E full", "E gain"});
    for (int subdomains : ref::kSubdomainCounts) {
        const core::SmvpCharacterization ch =
            bench::characterizeInstance(m, subdomains, bm.label);
        const parallel::PhaseTimes half = parallel::simulateSmvp(
            ch, machine, parallel::OverlapMode::kNone,
            parallel::NiMode::kHalfDuplex);
        const parallel::PhaseTimes full = parallel::simulateSmvp(
            ch, machine, parallel::OverlapMode::kNone,
            parallel::NiMode::kFullDuplex);
        t.addRow({std::to_string(subdomains),
                  common::formatTime(half.tComm),
                  common::formatTime(full.tComm),
                  common::formatFixed(half.efficiency, 3),
                  common::formatFixed(full.efficiency, 3),
                  common::formatFixed(
                      full.efficiency - half.efficiency, 3)});
    }
    t.print(std::cout);

    std::cout
        << "\nReading: duplex links halve T_comm exactly (the SMVP "
           "exchange is perfectly symmetric), but the efficiency gain "
           "is only significant where communication already dominates "
           "— at high PE counts.  Like overlap (see "
           "bench_overlap_ablation), duplexing is a one-time factor "
           "<= 2; it cannot substitute for the order-of-magnitude "
           "latency reductions the conclusion calls for.\n";
    return 0;
}
