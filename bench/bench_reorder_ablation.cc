/**
 * @file
 * Ablation: node ordering and the "irregular memory reference" penalty
 * (§4).  Three numberings of the same sf-class matrix — generator
 * order, randomly scrambled, and reverse Cuthill-McKee — through (a)
 * the cache-model T_f predictor and (b) a real timed SMVP on this
 * host.  Shows how much of the gap between sustained and peak rates is
 * ordering, and how much is intrinsic to the sparse gather.
 */

#include "bench/bench_util.h"

#include "arch/smvp_trace.h"
#include "common/rng.h"
#include "spark/kernels.h"
#include "sparse/assembly.h"
#include "sparse/reorder.h"

namespace
{

using namespace quake;

sparse::Permutation
randomScramble(std::int64_t n, std::uint64_t seed)
{
    common::SplitMix64 rng(seed);
    sparse::Permutation p = sparse::Permutation::identity(n);
    for (std::int64_t i = n - 1; i > 0; --i) {
        const std::int64_t j = static_cast<std::int64_t>(
            rng.nextBounded(static_cast<std::uint64_t>(i) + 1));
        std::swap(p.perm[i], p.perm[j]);
    }
    for (std::int64_t i = 0; i < n; ++i)
        p.inverse[p.perm[i]] = static_cast<mesh::NodeId>(i);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quake;
    const common::Args args(argc, argv);
    bench::benchHeader("Node-ordering ablation for the local SMVP",
                       "the Section 4 memory-locality observations");

    const mesh::SfClass cls =
        mesh::sfClassFromName(args.get("mesh", "sf5"));
    const mesh::GeneratedMesh generated = mesh::generateSfMesh(cls);
    const mesh::LayeredBasinModel model;

    // The three orderings.
    const mesh::TetMesh &native = generated.mesh;
    const mesh::TetMesh scrambled = sparse::permuteMesh(
        native, randomScramble(native.numNodes(), 0xbadc0de));
    const mesh::TetMesh rcm = sparse::permuteMesh(
        scrambled,
        sparse::reverseCuthillMcKee(scrambled.buildNodeAdjacency()));

    const arch::MemoryHierarchy hierarchy; // T3E-flavoured
    common::Table t({"ordering", "bandwidth", "L1 miss (model)",
                     "MFLOPS (model)", "MFLOPS (measured)"});
    struct Row
    {
        const char *name;
        const mesh::TetMesh *mesh;
    };
    for (const Row &row : {Row{"generator order", &native},
                           Row{"random scramble", &scrambled},
                           Row{"reverse Cuthill-McKee", &rcm}}) {
        const sparse::Bcsr3Matrix k =
            sparse::assembleStiffness(*row.mesh, model);
        const arch::TfPrediction predicted =
            arch::predictSmvpTf(k, hierarchy);
        const spark::KernelSuite suite(*row.mesh, model);
        const spark::KernelTiming measured =
            suite.measure(spark::Kernel::kBcsr3, 10);
        t.addRow({std::string(row.name),
                  common::formatCount(sparse::graphBandwidth(
                      row.mesh->buildNodeAdjacency())),
                  common::formatFixed(
                      100 * predicted.memory.l1MissRate(), 1) + "%",
                  common::formatFixed(predicted.mflops, 0),
                  common::formatFixed(measured.mflops, 0)});
    }
    t.print(std::cout);

    std::cout
        << "\nReading: scrambling the numbering blows up the matrix "
           "bandwidth and the x-gather miss rate; RCM restores (or "
           "beats) the generator's locality.  The T3E-like model is "
           "very sensitive to ordering (its caches are 8KB/96KB); a "
           "modern host with MB-scale caches shows the effect only "
           "once the matrix outgrows them (run --mesh sf5 or larger). "
           "Either way the kernel stays far below peak, so T_f must "
           "be measured per application, exactly as Section 3.1 "
           "does.\n";
    return 0;
}
