/**
 * @file
 * The §3.3 companion-TR methodology: estimate T_l and T_w by timing a
 * ladder of block transfers and fitting t = T_l + k * T_w.
 *
 * Two subjects: (a) a simulated T3E-like interface with measurement
 * noise — verifying the recipe recovers the paper's published 22 us /
 * 55 ns, and (b) this host's own memory system, timed for real with a
 * strided-copy transfer (the paper's ref [19] measures exactly this:
 * communication cost on modern systems is dominated by the copies at
 * the PEs).
 */

#include <chrono>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/param_fit.h"
#include "core/reference.h"

namespace
{

using namespace quake;

void
printFit(const std::string &label, const core::BlockFit &fit)
{
    std::cout << label << ":\n"
              << "  T_l (block latency) : "
              << common::formatTime(fit.tl) << "\n"
              << "  T_w (per word)      : " << common::formatTime(fit.tw)
              << "  (burst "
              << common::formatBandwidth(fit.burstBandwidthBytes())
              << ")\n"
              << "  R^2                 : "
              << common::formatFixed(fit.rSquared, 6) << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    (void)args;
    bench::benchHeader("Estimating T_l and T_w from block transfers",
                       "the Section 3.3 methodology (companion TR)");

    // (a) Simulated T3E with +/-3% noise: the recipe must recover the
    // published constants.
    common::SplitMix64 rng(0x73e);
    core::TransferFn t3e_like = [&rng](std::int64_t words) {
        const double truth =
            ref::kCrayT3eTl + static_cast<double>(words) * ref::kCrayT3eTw;
        return truth * rng.uniform(0.97, 1.03);
    };
    printFit("Simulated Cray T3E (truth: T_l = 22 us, T_w = 55 ns)",
             core::estimateMachine(t3e_like, core::standardBlockLadder(),
                                   5));

    // (b) This host's memory system: a block "transfer" is a strided
    // gather into a message buffer followed by a copy-out, the exact
    // data path of the SMVP exchange phase (ref [19]).
    std::vector<double> source(1 << 20);
    std::vector<double> staging(1 << 17);
    std::vector<double> dest(1 << 17);
    for (std::size_t i = 0; i < source.size(); ++i)
        source[i] = static_cast<double>(i);

    core::TransferFn host_copy = [&](std::int64_t words) {
        const auto t0 = std::chrono::steady_clock::now();
        constexpr int reps = 64;
        for (int r = 0; r < reps; ++r) {
            // Gather with stride 4 (nodal data is strided in practice),
            // then contiguous copy out — in and out of the "NI".
            for (std::int64_t i = 0; i < words; ++i)
                staging[i] = source[(4 * i + r) & (source.size() - 1)];
            std::memcpy(dest.data(), staging.data(),
                        static_cast<std::size_t>(words) * sizeof(double));
        }
        const auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(t1 - t0).count() / reps;
    };
    printFit("This host (strided gather + copy-out)",
             core::estimateMachine(host_copy, core::standardBlockLadder(),
                                   3));

    std::cout
        << "Reading: the linear block model t = T_l + k T_w fits both "
           "subjects with R^2 near 1, which is what justifies Equation "
           "(2)'s two-parameter communication model.  On the host, T_l "
           "reflects call overhead (far below the T3E's 22 us message "
           "overhead) while T_w tracks copy bandwidth — the component "
           "the paper says dominates modern communication costs.\n";
    return 0;
}
