/**
 * @file
 * Figure 10 — burst bandwidth / block latency tradeoff for sf2/128 on
 * 200-MFLOP PEs, for (a) maximally aggregated blocks and (b) four-word
 * cache-line blocks.  Derived exactly from the paper's Figure 7 entry
 * via Equations (1) and (2); each row is one point on a Figure 10
 * diagonal.
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "core/requirements.h"

namespace
{

void
printCurveFamily(const quake::core::SmvpShape &base_shape,
                 bool four_word_blocks)
{
    using namespace quake;
    namespace ref = core::reference;

    const core::SmvpShape shape =
        four_word_blocks ? core::withFixedBlockSize(base_shape, 4.0)
                         : base_shape;
    std::cout << (four_word_blocks
                      ? "--- (b) four-word (cache-line) blocks ---\n"
                      : "--- (a) maximally aggregated blocks ---\n");

    common::Table t({"burst bandwidth", "T_l @ E=0.5", "T_l @ E=0.8",
                     "T_l @ E=0.9"});
    const double tf = core::tfFromMflops(ref::kFutureMachineMflops);
    for (double bw : core::logspace(10e6, 100e9, 13)) {
        std::vector<std::string> row = {common::formatBandwidth(bw)};
        for (double e : ref::kEfficiencyGrid) {
            const double tc = core::requiredTc(shape, e, tf);
            const double tl =
                core::latencyForBurstBandwidth(shape, tc, bw);
            row.push_back(tl < 0 ? "infeasible"
                                 : common::formatTime(tl));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    // The infinite-burst asymptote: all of T_comm spent on latency.
    std::cout << "latency bound at infinite burst bandwidth:";
    for (double e : ref::kEfficiencyGrid) {
        const double tc = core::requiredTc(shape, e, tf);
        std::cout << "  E=" << common::formatFixed(e, 1) << ": "
                  << common::formatTime(core::latencyBudget(shape, tc,
                                                            0.0));
    }
    std::cout << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    (void)args;
    bench::benchHeader(
        "Burst bandwidth vs. block latency tradeoff (sf2/128, 200 "
        "MFLOPS)",
        "Figure 10");

    const core::SmvpShape shape =
        ref::shapeFor(ref::PaperMesh::kSf2, 128);
    printCurveFamily(shape, false);
    printCurveFamily(shape, true);

    std::cout
        << "Shape to reproduce: every curve is a falling diagonal with "
           "a vertical asymptote where burst bandwidth alone consumes "
           "the whole T_c budget.  Latency matters: even infinite "
           "burst bandwidth leaves a hard microsecond-scale latency "
           "ceiling in (a) and a ~100 ns ceiling in (b) at E = 0.9.\n"
           "Note: the paper's prose quotes a 3 us infinite-burst bound "
           "for (a); Equation (2) applied to the published Figure 7 "
           "entry (C_max = 16,260, B_max = 50) gives 9.3 us.  See "
           "EXPERIMENTS.md for the discrepancy discussion.\n";
    return 0;
}
