/**
 * @file
 * Figure 9 — sustained per-PE bandwidth T_c^-1 required for the sf2
 * SMVPs, for E in {0.5, 0.8, 0.9} on 100- and 200-MFLOP PEs.
 *
 * This figure is exactly derivable from Figure 7 via Equation (1), so
 * it runs in two modes printed side by side: "reference" (the paper's
 * published F and C_max — an exact reproduction of the derivation) and
 * "synthetic" (our pipeline end to end).
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "core/requirements.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader("Required sustained per-PE bandwidth (sf2)",
                       "Figure 9");

    const bench::BenchMesh bm =
        args.has("full")
            ? bench::BenchMesh{mesh::SfClass::kSf2, 1.0, "sf2"}
            : bench::BenchMesh{mesh::SfClass::kSf2, 2.0,
                               "sf2 (1/2 scale)"};
    const mesh::TetMesh &m = bench::cachedMesh(bm);

    for (double mflops : {ref::kCurrentMachineMflops,
                          ref::kFutureMachineMflops}) {
        const double tf = core::tfFromMflops(mflops);
        std::cout << "--- " << common::formatFixed(mflops, 0)
                  << "-MFLOP PEs (paper-derived | synthetic) ---\n";
        common::Table t({"subdomains", "E=0.5", "E=0.8", "E=0.9",
                         "| syn E=0.5", "syn E=0.8", "syn E=0.9"});
        for (int subdomains : ref::kSubdomainCounts) {
            const core::SmvpShape paper_shape =
                ref::shapeFor(ref::PaperMesh::kSf2, subdomains);
            const core::SmvpShape syn_shape = core::SmvpShape::fromSummary(
                core::summarize(bench::characterizeInstance(
                    m, subdomains, bm.label)));

            std::vector<std::string> row = {std::to_string(subdomains)};
            for (double e : ref::kEfficiencyGrid)
                row.push_back(common::formatBandwidth(
                    core::requiredSustainedBandwidth(paper_shape, e, tf)));
            for (double e : ref::kEfficiencyGrid) {
                std::string cell = common::formatBandwidth(
                    core::requiredSustainedBandwidth(syn_shape, e, tf));
                if (e == ref::kEfficiencyGrid.front())
                    cell = "| " + cell;
                row.push_back(cell);
            }
            t.addRow(row);
        }
        bench::printTable(t, args);
        std::cout << "\n";
    }

    std::cout << "Headlines to reproduce (Section 4.3):\n"
                 "  - 100-MFLOP PEs: ~120 MB/s sustains every sf2 "
                 "instance at 90% efficiency\n"
                 "  - 200-MFLOP PEs: ~300 MB/s is required (the 128-"
                 "subdomain instance binds)\n"
                 "  - 80% efficiency on workstation networks demands "
                 "~100 MB/s sustained per PE\n";
    return 0;
}
