/**
 * @file
 * Flat vs hierarchical (shard x thread) engine benchmark (DESIGN.md
 * §13): measures what the two-level topology buys — per-shard
 * first-touched slabs, pinned nested pools, inter-shard-only exchange —
 * against the flat single-pool engine on the same distributed problem.
 *
 * For each topology the harness times the zero-copy SMVP and the fused
 * step loop, reporting steps/sec, effective T_f (seconds per executed
 * flop, from the characterized per-PE flop counts), the shard-remote
 * fraction of the exchange traffic, pin failures, and the shard load
 * imbalance.  Every configuration's product and fused step are checked
 * bitwise against the flat reference — the exit status reflects that
 * determinism check only, so a single-socket CI host that shows perf
 * parity still gates on correctness.  Emits BENCH_numa.json.
 *
 * Flags: --smoke (tiny mesh, few reps — the `perf` ctest label),
 *        --pes N, --threads N, --reps N, --steps N, --csv.
 */

#include "bench/bench_util.h"

#include <chrono>
#include <cstring>
#include <functional>

#include "common/rng.h"
#include "parallel/parallel_smvp.h"
#include "parallel/topology.h"

namespace
{

using namespace quake;

double
timeLoop(const std::function<void()> &fn, int reps)
{
    fn(); // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / reps;
}

} // namespace

int
main(int argc, char **argv)
{
    const common::Args args(argc, argv);
    bench::benchHeader(
        "NUMA hierarchy (flat vs shard x thread topologies)",
        "the memory-system locality analysis of Sections 3-4");

    const bench::EngineBenchOptions opt = bench::engineBenchOptions(args);
    const bool smoke = opt.smoke;
    const int threads = opt.threads;
    const int pes = opt.pes;
    const int reps =
        static_cast<int>(args.getInt("reps", smoke ? 3 : 20));
    const int steps =
        static_cast<int>(args.getInt("steps", smoke ? 8 : 50));

    const bench::BenchMesh bm = opt.mesh;
    const mesh::TetMesh &m = bench::cachedMesh(bm);
    const mesh::LayeredBasinModel model;

    const std::vector<std::vector<int>> domains =
        parallel::detectNumaDomains();
    std::cout << "mesh: " << bm.label << ", " << m.numNodes()
              << " nodes, " << m.numElements() << " elements\n"
              << "affinity CPUs: "
              << parallel::WorkerPool::hardwareThreads()
              << ", NUMA domains detected: "
              << (domains.empty() ? 1 : domains.size())
              << ", logical PEs: " << pes << "\n\n";

    const partition::GeometricBisection partitioner;
    const parallel::DistributedProblem problem =
        parallel::distribute(m, model, partitioner.partition(m, pes));

    // Executed flops per SMVP (sum of the characterized per-PE F
    // values) — the denominator of the effective T_f every topology is
    // scored with.
    const core::SmvpCharacterization ch =
        parallel::characterize(problem, bm.label);
    double total_flops = 0.0;
    for (const core::PeLoad &pe : ch.pes)
        total_flops += static_cast<double>(pe.flops);

    const std::size_t dof =
        static_cast<std::size_t>(3 * problem.numGlobalNodes);
    std::vector<double> x(dof);
    common::SplitMix64 rng(1998);
    for (double &v : x)
        v = rng.uniform(-1.0, 1.0);
    std::vector<double> inv_mass(dof, 1.0);
    std::vector<double> force(dof, 0.0);
    const std::vector<double> up0(dof, 0.0);

    // The topology ladder: the flat engine is the reference every
    // hierarchical configuration must reproduce bitwise.
    struct Config
    {
        std::string label;
        parallel::Topology topo;
    };
    std::vector<Config> configs;
    configs.push_back({"flat", parallel::Topology::flat(threads)});
    configs.push_back({"2-shard", parallel::Topology::uniform(2, 0)});
    configs.push_back({"4-shard", parallel::Topology::uniform(4, 0)});
    configs.push_back(
        {"2-shard-pinned", parallel::Topology::uniform(2, 0, true)});
    configs.push_back({"auto", parallel::Topology::detect(true)});
    if (threads > 0)
        for (Config &c : configs)
            if (c.topo.threadBudget == 0 && c.topo.threadsPerShard == 0)
                c.topo.threadBudget = threads;

    std::vector<double> y_ref, up_ref;
    sparse::StepPartials partials_ref;
    bool bitwise_ok = true;

    std::vector<bench::BenchJsonRecord> records;
    common::Table t({"topology", "S x T", "s/SMVP", "steps/s",
                     "T_f (ns)", "remote bytes", "pins failed",
                     "imbalance"});
    double flat_steps_per_sec = 0.0;
    for (const Config &c : configs) {
        const parallel::ParallelSmvp engine(
            problem, c.topo, parallel::ExchangeMode::kOverlapped);

        std::vector<double> y(dof, 0.0);
        const double smvp_seconds =
            timeLoop([&] { engine.multiplyInto(x.data(), y.data()); },
                     reps);

        // Fused-step loop: u is fixed, up ping-pongs in place —
        // identical work every iteration, and after the timing loop up
        // is reset so the bitwise probe below starts from the same
        // state for every topology.
        std::vector<double> up = up0;
        sparse::StepUpdate su;
        su.u = x.data();
        su.up = up.data();
        su.f = force.data();
        su.invMass = inv_mass.data();
        su.dt = 1e-3;
        su.dt2 = su.dt * su.dt;
        const double step_seconds =
            timeLoop([&] { engine.stepFused(su); }, steps);
        const double steps_per_sec =
            step_seconds > 0 ? 1.0 / step_seconds : 0.0;

        up = up0;
        const sparse::StepPartials partials = engine.stepFused(su);

        if (c.label == "flat") {
            y_ref = y;
            up_ref = up;
            partials_ref = partials;
            flat_steps_per_sec = steps_per_sec;
        } else {
            const bool same =
                y == y_ref && up == up_ref &&
                std::memcmp(&partials.peak, &partials_ref.peak,
                            sizeof(double)) == 0 &&
                std::memcmp(&partials.energy, &partials_ref.energy,
                            sizeof(double)) == 0;
            if (!same) {
                std::cout << "BITWISE MISMATCH: " << c.label
                          << " differs from flat\n";
                bitwise_ok = false;
            }
        }

        const std::int64_t remote = engine.remoteExchangeBytes();
        const std::int64_t local = engine.localExchangeBytes();
        const double remote_frac =
            remote + local > 0
                ? static_cast<double>(remote) /
                      static_cast<double>(remote + local)
                : 0.0;

        t.addRow({c.label,
                  std::to_string(engine.numShards()) + " x " +
                      std::to_string(engine.threadsPerShard()),
                  common::formatFixed(smvp_seconds * 1e3, 3) + " ms",
                  common::formatFixed(steps_per_sec, 1),
                  common::formatFixed(smvp_seconds / total_flops * 1e9,
                                      3),
                  common::formatFixed(100.0 * remote_frac, 1) + "%",
                  std::to_string(engine.pinFailures()),
                  common::formatFixed(engine.shardImbalance(), 3)});

        bench::BenchJsonRecord rec;
        rec.kernel = c.label;
        rec.rows = static_cast<std::int64_t>(dof);
        rec.nnz = static_cast<std::int64_t>(total_flops / 2.0);
        rec.secondsPerSmvp = smvp_seconds;
        rec.gflops = total_flops / smvp_seconds / 1e9;
        rec.tfNs = smvp_seconds / total_flops * 1e9;
        rec.extra.emplace_back("steps_per_sec", steps_per_sec);
        rec.extra.emplace_back("shards",
                               static_cast<double>(engine.numShards()));
        rec.extra.emplace_back(
            "threads_per_shard",
            static_cast<double>(engine.threadsPerShard()));
        rec.extra.emplace_back("remote_byte_fraction", remote_frac);
        rec.extra.emplace_back(
            "pin_failures", static_cast<double>(engine.pinFailures()));
        rec.extra.emplace_back("shard_imbalance",
                               engine.shardImbalance());
        records.push_back(std::move(rec));
    }
    bench::printTable(t, args);

    // Honest reporting: on a single-socket (or 1-CPU CI) host the
    // hierarchy cannot beat the flat engine — the headline is the
    // determinism guarantee, not a locality win that hardware cannot
    // show.
    double best_hier = 0.0;
    for (std::size_t i = 1; i < records.size(); ++i)
        for (const auto &kv : records[i].extra)
            if (kv.first == "steps_per_sec")
                best_hier = std::max(best_hier, kv.second);
    const double ratio = flat_steps_per_sec > 0
                             ? best_hier / flat_steps_per_sec
                             : 0.0;
    std::cout << "\nbest hierarchical vs flat steps/sec: "
              << common::formatFixed(ratio, 2) << "x"
              << (domains.size() < 2
                      ? " (single memory domain visible: parity is the "
                        "expected outcome here; the hierarchy pays off "
                        "only across sockets)"
                      : "")
              << "\nall topologies bitwise-equal flat: "
              << (bitwise_ok ? "PASS" : "FAIL") << "\n";

    bench::writeBenchJson(
        "numa", records,
        {{"mesh", bm.label},
         {"pes", std::to_string(pes)},
         {"numa_domains",
          std::to_string(domains.empty() ? 1 : domains.size())},
         {"affinity_cpus",
          std::to_string(parallel::WorkerPool::hardwareThreads())},
         {"hier_bitwise_equal", bitwise_ok ? "true" : "false"},
         {"best_hier_vs_flat", common::formatFixed(ratio, 3)}});

    return bitwise_ok ? 0 : 1;
}
