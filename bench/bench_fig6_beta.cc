/**
 * @file
 * Figure 6 — the beta error bound on T_c for every (mesh, subdomains)
 * pair — computed on the synthetic pipeline, with the published table
 * alongside.  The point being reproduced: beta stays close to 1, so the
 * pessimistic same-PE assumption in Equation (2) is sound.
 */

#include "bench/bench_util.h"

#include "core/reference.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader("Beta error bounds on T_c", "Figure 6");

    std::vector<std::string> header = {"subdomains"};
    const std::vector<bench::BenchMesh> ladder = bench::meshLadder(args);
    for (const bench::BenchMesh &bm : ladder) {
        header.push_back(bm.label);
        header.push_back("paper");
    }
    common::Table t(header);

    for (int subdomains : ref::kSubdomainCounts) {
        std::vector<std::string> row = {std::to_string(subdomains)};
        for (const bench::BenchMesh &bm : ladder) {
            const core::CharacterizationSummary s =
                core::summarize(bench::characterizeInstance(
                    bench::cachedMesh(bm), subdomains, bm.label));
            row.push_back(common::formatFixed(s.beta, 2));
            row.push_back(common::formatFixed(
                ref::figure6Beta(ref::paperMeshFromName(
                                     mesh::sfClassName(bm.cls)),
                                 subdomains),
                2));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\nAll values must lie in [1, 2] by construction; the "
                 "paper's range is [1.00, 1.15].  Values near 1 mean "
                 "the same PE carries both C_max and B_max, validating "
                 "Equation (2)'s pessimistic merge.\n";
    return 0;
}
