/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * Every bench binary regenerates one table or figure from the paper and
 * prints (a) the paper's published numbers where they exist and (b) the
 * values measured on the synthetic pipeline or derived from the models.
 * Meshes default to scaled-down stand-ins for the big classes so the
 * whole suite runs in minutes on a laptop; pass --full for full scale.
 */

#ifndef QUAKE98_BENCH_BENCH_UTIL_H_
#define QUAKE98_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/args.h"
#include "common/bench_json.h"
#include "common/table.h"
#include "mesh/generator.h"
#include "parallel/characterize.h"
#include "parallel/worker_pool.h"
#include "partition/geometric_bisection.h"

namespace quake::bench
{

/** A mesh class plus the scale it is generated at. */
struct BenchMesh
{
    mesh::SfClass cls;
    double hScale;   ///< 1.0 = full scale
    std::string label; ///< e.g. "sf2" or "sf2 (1/2 scale)"
};

/**
 * The default mesh ladder: sf10 and sf5 at full scale, sf2 and sf1
 * scaled down to laptop size unless --full is given.
 */
inline std::vector<BenchMesh>
meshLadder(const common::Args &args)
{
    const bool full = args.has("full");
    std::vector<BenchMesh> ladder = {
        {mesh::SfClass::kSf10, 1.0, "sf10"},
        {mesh::SfClass::kSf5, 1.0, "sf5"},
    };
    if (full) {
        ladder.push_back({mesh::SfClass::kSf2, 1.0, "sf2"});
        ladder.push_back({mesh::SfClass::kSf1, 1.0, "sf1"});
    } else {
        // Scales are chosen so the two stand-ins are distinct meshes
        // (1 s x 4 = 2 s x 2 would make them literally identical).
        ladder.push_back({mesh::SfClass::kSf2, 2.0, "sf2 (1/2 scale)"});
        ladder.push_back({mesh::SfClass::kSf1, 3.0, "sf1 (1/3 scale)"});
    }
    return ladder;
}

/** Generate (and cache per process) the mesh for a ladder entry. */
inline const mesh::TetMesh &
cachedMesh(const BenchMesh &bm)
{
    static std::map<std::string, mesh::GeneratedMesh> cache;
    auto it = cache.find(bm.label);
    if (it == cache.end()) {
        std::cerr << "[bench] generating " << bm.label << "...\n";
        it = cache
                 .emplace(bm.label,
                          mesh::generateSfMesh(bm.cls, bm.hScale))
                 .first;
    }
    return it->second.mesh;
}

/** Characterize one (mesh, subdomains) instance through the pipeline. */
inline core::SmvpCharacterization
characterizeInstance(const mesh::TetMesh &m, int subdomains,
                     const std::string &label,
                     const parallel::CharacterizeOptions &options = {})
{
    const partition::GeometricBisection partitioner;
    const parallel::DistributedProblem problem =
        parallel::distributeTopology(m,
                                     partitioner.partition(m, subdomains));
    return parallel::characterize(
        problem, label + "/" + std::to_string(subdomains), options);
}

/** Print a table as text, or as CSV when --csv was passed. */
inline void
printTable(const common::Table &table, const common::Args &args)
{
    if (args.has("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

/** Standard header line for a bench binary. */
inline void
benchHeader(const std::string &title, const std::string &paper_ref)
{
    std::cout << "=================================================="
                 "====================\n"
              << title << "\n(reproduces " << paper_ref
              << " of O'Hallaron, Shewchuk & Gross, HPCA 1998)\n"
              << "=================================================="
                 "====================\n\n";
}

/**
 * Standard knobs shared by the engine-level benches (bench_smvp_engine,
 * bench_timestep_pipeline): --smoke selects the tiny mesh and short run
 * the `perf` ctest label uses, --threads/--pes size the engine, and
 * --trace/--metrics name telemetry output files (empty = disabled).
 * Each bench keeps only its own knobs (--reps, --steps) local.
 */
struct EngineBenchOptions
{
    bool smoke = false;
    int threads = 0; ///< 0 = hardware concurrency
    int pes = 0;
    BenchMesh mesh;
    std::string tracePath;
    std::string metricsPath;
};

/** Parse the shared engine-bench flags (see EngineBenchOptions). */
inline EngineBenchOptions
engineBenchOptions(const common::Args &args)
{
    EngineBenchOptions o;
    o.smoke = args.has("smoke");
    o.threads = static_cast<int>(args.getInt("threads", 0));
    o.pes = static_cast<int>(args.getInt(
        "pes",
        std::max(4, 2 * parallel::WorkerPool::hardwareThreads())));
    o.mesh = BenchMesh{mesh::SfClass::kSf10, o.smoke ? 3.0 : 1.0,
                       o.smoke ? "sf10 (smoke)" : "sf10"};
    o.tracePath = args.get("trace");
    o.metricsPath = args.get("metrics");
    return o;
}

// ---------------------------------------------------------------------
// Machine-readable benchmark output: BENCH_<name>.json.
//
// The record type and writer live in common/bench_json.h so the
// telemetry metrics exporter emits the exact same schema; the aliases
// below keep the historical quake::bench spellings working.
// ---------------------------------------------------------------------

using common::BenchJsonRecord;
using common::jsonEscape;
using common::jsonNumber;
using common::writeBenchJson;

} // namespace quake::bench

#endif // QUAKE98_BENCH_BENCH_UTIL_H_
