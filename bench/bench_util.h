/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * Every bench binary regenerates one table or figure from the paper and
 * prints (a) the paper's published numbers where they exist and (b) the
 * values measured on the synthetic pipeline or derived from the models.
 * Meshes default to scaled-down stand-ins for the big classes so the
 * whole suite runs in minutes on a laptop; pass --full for full scale.
 */

#ifndef QUAKE98_BENCH_BENCH_UTIL_H_
#define QUAKE98_BENCH_BENCH_UTIL_H_

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/args.h"
#include "common/table.h"
#include "mesh/generator.h"
#include "parallel/characterize.h"
#include "partition/geometric_bisection.h"

namespace quake::bench
{

/** A mesh class plus the scale it is generated at. */
struct BenchMesh
{
    mesh::SfClass cls;
    double hScale;   ///< 1.0 = full scale
    std::string label; ///< e.g. "sf2" or "sf2 (1/2 scale)"
};

/**
 * The default mesh ladder: sf10 and sf5 at full scale, sf2 and sf1
 * scaled down to laptop size unless --full is given.
 */
inline std::vector<BenchMesh>
meshLadder(const common::Args &args)
{
    const bool full = args.has("full");
    std::vector<BenchMesh> ladder = {
        {mesh::SfClass::kSf10, 1.0, "sf10"},
        {mesh::SfClass::kSf5, 1.0, "sf5"},
    };
    if (full) {
        ladder.push_back({mesh::SfClass::kSf2, 1.0, "sf2"});
        ladder.push_back({mesh::SfClass::kSf1, 1.0, "sf1"});
    } else {
        // Scales are chosen so the two stand-ins are distinct meshes
        // (1 s x 4 = 2 s x 2 would make them literally identical).
        ladder.push_back({mesh::SfClass::kSf2, 2.0, "sf2 (1/2 scale)"});
        ladder.push_back({mesh::SfClass::kSf1, 3.0, "sf1 (1/3 scale)"});
    }
    return ladder;
}

/** Generate (and cache per process) the mesh for a ladder entry. */
inline const mesh::TetMesh &
cachedMesh(const BenchMesh &bm)
{
    static std::map<std::string, mesh::GeneratedMesh> cache;
    auto it = cache.find(bm.label);
    if (it == cache.end()) {
        std::cerr << "[bench] generating " << bm.label << "...\n";
        it = cache
                 .emplace(bm.label,
                          mesh::generateSfMesh(bm.cls, bm.hScale))
                 .first;
    }
    return it->second.mesh;
}

/** Characterize one (mesh, subdomains) instance through the pipeline. */
inline core::SmvpCharacterization
characterizeInstance(const mesh::TetMesh &m, int subdomains,
                     const std::string &label,
                     const parallel::CharacterizeOptions &options = {})
{
    const partition::GeometricBisection partitioner;
    const parallel::DistributedProblem problem =
        parallel::distributeTopology(m,
                                     partitioner.partition(m, subdomains));
    return parallel::characterize(
        problem, label + "/" + std::to_string(subdomains), options);
}

/** Print a table as text, or as CSV when --csv was passed. */
inline void
printTable(const common::Table &table, const common::Args &args)
{
    if (args.has("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

/** Standard header line for a bench binary. */
inline void
benchHeader(const std::string &title, const std::string &paper_ref)
{
    std::cout << "=================================================="
                 "====================\n"
              << title << "\n(reproduces " << paper_ref
              << " of O'Hallaron, Shewchuk & Gross, HPCA 1998)\n"
              << "=================================================="
                 "====================\n\n";
}

// ---------------------------------------------------------------------
// Machine-readable benchmark output: BENCH_<name>.json.
//
// Perf-trajectory tooling diffs these files across commits, so the
// format is deliberately flat: a host block (threads, compiler, build),
// an optional info block of free-form strings, and one record per
// measured kernel/configuration.
// ---------------------------------------------------------------------

/** One measured kernel/configuration in a BENCH json file. */
struct BenchJsonRecord
{
    std::string kernel;        ///< kernel or engine configuration name
    std::int64_t rows = 0;     ///< scalar matrix dimension
    std::int64_t nnz = 0;      ///< logical scalar nonzeros
    double secondsPerSmvp = 0.0;
    double gflops = 0.0;       ///< sustained rate, F = 2 nnz per SMVP
    double tfNs = 0.0;         ///< per-flop time in nanoseconds

    /** Extra numeric fields (e.g. speedup), emitted in order. */
    std::vector<std::pair<std::string, double>> extra;
};

/** Escape a string for embedding in JSON. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
    }
    return out;
}

/** Render a double as JSON (finite; full precision). */
inline std::string
jsonNumber(double v)
{
    std::ostringstream oss;
    oss.precision(12);
    oss << v;
    return oss.str();
}

/**
 * Write BENCH_<name>.json in the current directory and announce the
 * path on stdout.  `info` rows are free-form string pairs (mesh label,
 * subdomain count, ...).
 */
inline void
writeBenchJson(
    const std::string &name, const std::vector<BenchJsonRecord> &records,
    const std::vector<std::pair<std::string, std::string>> &info = {})
{
    const std::string path = "BENCH_" + name + ".json";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "[bench] cannot write " << path << "\n";
        return;
    }

    out << "{\n  \"bench\": \"" << jsonEscape(name) << "\",\n";
    out << "  \"host\": {\n"
        << "    \"hardware_threads\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "    \"compiler\": \""
#if defined(__VERSION__)
        << jsonEscape(__VERSION__)
#else
        << "unknown"
#endif
        << "\",\n    \"build\": \""
#ifdef NDEBUG
        << "optimized"
#else
        << "debug"
#endif
        << "\"\n  },\n";

    if (!info.empty()) {
        out << "  \"info\": {\n";
        for (std::size_t i = 0; i < info.size(); ++i)
            out << "    \"" << jsonEscape(info[i].first) << "\": \""
                << jsonEscape(info[i].second) << "\""
                << (i + 1 < info.size() ? "," : "") << "\n";
        out << "  },\n";
    }

    out << "  \"records\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const BenchJsonRecord &r = records[i];
        out << "    {\"kernel\": \"" << jsonEscape(r.kernel)
            << "\", \"rows\": " << r.rows << ", \"nnz\": " << r.nnz
            << ", \"seconds_per_smvp\": " << jsonNumber(r.secondsPerSmvp)
            << ", \"gflops\": " << jsonNumber(r.gflops)
            << ", \"tf_ns\": " << jsonNumber(r.tfNs);
        for (const auto &[key, value] : r.extra)
            out << ", \"" << jsonEscape(key)
                << "\": " << jsonNumber(value);
        out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "[bench] wrote " << path << "\n";
}

} // namespace quake::bench

#endif // QUAKE98_BENCH_BENCH_UTIL_H_
