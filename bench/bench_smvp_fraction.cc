/**
 * @file
 * Section 2.3's premise: the SMVP consumes over 80% of the sequential
 * running time, which is what licenses modeling the whole application
 * by its SMVP.  This harness runs the instrumented explicit solver on
 * sf-class meshes and reports the measured SMVP share of step time.
 */

#include "bench/bench_util.h"

#include "quake/simulation.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    const common::Args args(argc, argv);
    bench::benchHeader("SMVP share of sequential running time",
                       "the Section 2.3 claim (>80%)");

    common::Table t({"mesh", "steps", "dt", "SMVP share",
                     "peak |u|"});
    for (const bench::BenchMesh &bm : bench::meshLadder(args)) {
        if (bm.cls == mesh::SfClass::kSf1 && !args.has("full"))
            continue; // skip the smallest stand-in; sf2s already large
        const mesh::TetMesh &m = bench::cachedMesh(bm);
        const mesh::LayeredBasinModel model;

        sim::SimulationConfig config;
        config.durationSeconds = 1e9; // maxSteps binds
        config.maxSteps = args.getInt("steps", 60);
        config.sampleInterval = 0;
        // Peak the source immediately so the short instrumented run
        // actually excites the wavefield.
        config.wavelet.peakFrequencyHz = 0.25;
        config.wavelet.delaySeconds = 0.0;
        config.wavelet.amplitude = 1e3;

        const sim::SimulationReport report =
            sim::runSimulation(m, model, config);
        t.addRow({bm.label, std::to_string(report.steps),
                  common::formatTime(report.dt),
                  common::formatFixed(100.0 * report.smvpFraction, 1) +
                      "%",
                  common::formatFixed(report.peakDisplacement, 6)});
    }
    t.print(std::cout);
    std::cout << "\nPaper: SMVP operations consume over 80% of total "
                 "sequential running time.  Shares rise with mesh size "
                 "as the O(n) vector updates amortize against the "
                 "heavier O(nnz) SMVP.\n";
    return 0;
}
