/**
 * @file
 * Figure 7 — the SMVP property table (F, C_max, B_max, M_avg, F/C_max)
 * for every mesh and subdomain count — regenerated on the synthetic
 * pipeline with the published values alongside.
 */

#include "bench/bench_util.h"

#include "core/reference.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader("Quake SMVP properties", "Figure 7");

    for (const bench::BenchMesh &bm : bench::meshLadder(args)) {
        const mesh::TetMesh &m = bench::cachedMesh(bm);
        const ref::PaperMesh paper_mesh =
            ref::paperMeshFromName(mesh::sfClassName(bm.cls));

        std::cout << "--- " << bm.label << " ---\n";
        common::Table t({"subdomains", "F", "C_max", "B_max", "M_avg",
                         "F/C_max", "| paper F", "paper C_max",
                         "paper B_max", "paper M_avg", "paper F/C"});
        for (int subdomains : ref::kSubdomainCounts) {
            if (m.numElements() < subdomains)
                continue;
            const core::CharacterizationSummary s = core::summarize(
                bench::characterizeInstance(m, subdomains, bm.label));
            const ref::Figure7Entry &p =
                ref::figure7(paper_mesh, subdomains);
            t.addRow({std::to_string(subdomains),
                      common::formatCount(s.flopsMax),
                      common::formatCount(s.wordsMax),
                      common::formatCount(s.blocksMax),
                      common::formatFixed(s.messageSizeAvg, 0),
                      common::formatFixed(s.flopsPerWord, 0),
                      "| " + common::formatCount(p.flops),
                      common::formatCount(p.wordsMax),
                      common::formatCount(p.blocksMax),
                      common::formatCount(p.messageAvg),
                      common::formatCount(p.flopsPerWord)});
        }
        bench::printTable(t, args);
        std::cout << "\n";
    }

    std::cout << "Shape checks reproduced from Section 4.1:\n"
                 "  - F roughly halves as the subdomain count doubles\n"
                 "  - F/C_max falls toward ~50 at 128 subdomains for "
                 "sf2-class problems\n"
                 "  - M_avg stays small (hundreds to thousands of "
                 "words), so latency cannot be amortized\n"
                 "  - B_max grows with subdomain count (each PE talks "
                 "to more peers)\n";
    return 0;
}
