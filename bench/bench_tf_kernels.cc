/**
 * @file
 * Section 3.1 — measuring T_f, the sustained per-flop time of the local
 * SMVP, with google-benchmark.  The paper measures 30 ns on the Cray
 * T3D and 14 ns on the T3E and stresses that sustained rates sit far
 * below peak (12% on the T3E); this harness produces the same
 * measurement for this host across the kernel formats and mesh classes.
 *
 * Besides the usual google-benchmark console output, the run writes
 * BENCH_tf_kernels.json (see bench_util.h) so the measured T_f values
 * can be diffed across commits alongside BENCH_smvp.json.  Each record
 * carries a roofline annotation — bytes/flop from a per-format byte
 * traffic model, the sustained GB/s that follows from the measured
 * time, and the padding-overhead ratio (stored/structural blocks) —
 * and the run ends with a Figure 9-style requirement grid derived from
 * the best measured T_f via core::gridFromMeasuredTf.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/requirements.h"
#include "mesh/generator.h"
#include "spark/kernels.h"
#include "sparse/bcsr3_sym.h"
#include "sparse/sliced_ell3.h"

namespace
{

using namespace quake;

/** Lazily built suite per mesh class (shared across benchmarks). */
const spark::KernelSuite &
suiteFor(mesh::SfClass cls)
{
    static std::map<mesh::SfClass, std::unique_ptr<spark::KernelSuite>>
        suites;
    auto it = suites.find(cls);
    if (it == suites.end()) {
        static const mesh::LayeredBasinModel model;
        const mesh::GeneratedMesh generated = mesh::generateSfMesh(cls);
        it = suites
                 .emplace(cls, std::make_unique<spark::KernelSuite>(
                                   generated.mesh, model))
                 .first;
    }
    return *it->second;
}

/** Records accumulated across all benchmarks for the JSON report. */
std::vector<bench::BenchJsonRecord> &
jsonRecords()
{
    static std::vector<bench::BenchJsonRecord> records;
    return records;
}

/**
 * Streamed bytes of one SMVP in each format — the roofline numerator.
 * The model counts each array once per multiply (the streaming-access
 * pattern §3.1 attributes the low sustained rates to): matrix values +
 * indices + row offsets, one read of x, and one write of y — plus one
 * *read* of y for the symmetric scatter formats, whose y[col] updates
 * are read-modify-write.  Gather locality in x is deliberately ignored
 * (pessimistic for x, like every first-order roofline).
 */
double
bytesPerSmvp(const spark::KernelSuite &suite, spark::Kernel kernel)
{
    const double dof = static_cast<double>(suite.dof());
    const double xy_stream = 16.0 * dof;  // read x + write y
    const double y_rmw = 8.0 * dof;       // extra y read for scatters
    switch (kernel) {
      case spark::Kernel::kCsr: {
        const sparse::CsrMatrix &m = suite.csr();
        return 12.0 * static_cast<double>(m.nnz()) + // 8B value + 4B col
               8.0 * (dof + 1) + xy_stream;          // xadj
      }
      case spark::Kernel::kBcsr3:
      case spark::Kernel::kThreaded: {
        const sparse::Bcsr3Matrix &m = suite.bcsr();
        // 72B of values + 4B block column per 3x3 block.
        return 76.0 * static_cast<double>(m.numBlocks()) +
               8.0 * static_cast<double>(m.numBlockRows() + 1) +
               xy_stream;
      }
      case spark::Kernel::kSym: {
        const sparse::SymCsrMatrix &m = suite.sym();
        return 12.0 * static_cast<double>(m.storedEntries()) +
               8.0 * (dof + 1) + xy_stream + y_rmw;
      }
      case spark::Kernel::kSymBcsr3:
      case spark::Kernel::kSymBcsr3Mt:
      case spark::Kernel::kSymBcsr3Simd: {
        const sparse::SymBcsr3Matrix &m = suite.symBcsr();
        return 76.0 * static_cast<double>(m.storedBlocks()) +
               8.0 * static_cast<double>(m.numBlockRows() + 1) +
               xy_stream + y_rmw;
      }
      case spark::Kernel::kSlicedEll3:
      case spark::Kernel::kSlicedEll3Mt: {
        const sparse::SlicedEll3Matrix &m = suite.slicedEll();
        // Every stored slot (structural + padding) is streamed: 72B of
        // element planes + 4B column.  Lane row map and slice bases
        // stream once per multiply.
        return 76.0 * static_cast<double>(m.storedBlocks()) +
               8.0 * static_cast<double>(m.numSlices() *
                                         m.sliceHeight()) +
               8.0 * static_cast<double>(m.numSlices() + 1) + xy_stream;
      }
    }
    return 0.0;
}

/** Padding overhead of the format (1.0 for the unpadded formats). */
double
paddingRatioOf(const spark::KernelSuite &suite, spark::Kernel kernel)
{
    switch (kernel) {
      case spark::Kernel::kSlicedEll3:
      case spark::Kernel::kSlicedEll3Mt:
        return suite.slicedEll().paddingRatio();
      default:
        return 1.0;
    }
}

void
runKernelBench(benchmark::State &state, const std::string &label,
               mesh::SfClass cls, spark::Kernel kernel)
{
    const spark::KernelSuite &suite = suiteFor(cls);
    std::vector<double> x(static_cast<std::size_t>(suite.dof()));
    common::SplitMix64 rng(1998);
    for (double &v : x)
        v = rng.uniform(-1, 1);
    std::vector<double> y(x.size());

    std::int64_t iters = 0;
    double seconds = 0.0;
    for (auto _ : state) {
        const auto t0 = std::chrono::steady_clock::now();
        switch (kernel) {
          case spark::Kernel::kCsr:
            sparse::smvpCsr(suite.csr(), x.data(), y.data());
            break;
          case spark::Kernel::kBcsr3:
            sparse::smvpBcsr3(suite.bcsr(), x.data(), y.data());
            break;
          case spark::Kernel::kSym:
            sparse::smvpSym(suite.sym(), x.data(), y.data());
            break;
          case spark::Kernel::kSymBcsr3:
            suite.symBcsr().multiply(x.data(), y.data());
            break;
          case spark::Kernel::kSymBcsr3Simd:
            suite.symBcsr().multiplySimd(x.data(), y.data());
            break;
          case spark::Kernel::kSlicedEll3:
            suite.slicedEll().multiply(x.data(), y.data());
            break;
          case spark::Kernel::kThreaded:
          case spark::Kernel::kSymBcsr3Mt:
          case spark::Kernel::kSlicedEll3Mt:
            // Pool-backed kernels go through the suite (which owns the
            // persistent worker pool and the padded scratch slabs).
            y = suite.run(kernel, x);
            break;
        }
        benchmark::DoNotOptimize(y.data());
        benchmark::ClobberMemory();
        seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        ++iters;
    }

    // The paper's F = 2m flops per SMVP, regardless of storage format.
    // FLOPS prints as a rate (e.g. "1.9G/s"); T_f is its inverse — the
    // paper's 30 ns (T3D) / 14 ns (T3E) comparison points.
    const double flops = static_cast<double>(2 * suite.nnz());
    state.counters["flops_per_smvp"] = flops;
    state.counters["FLOPS"] = benchmark::Counter(
        flops, benchmark::Counter::kIsIterationInvariantRate);

    if (iters > 0) {
        const double per_smvp = seconds / static_cast<double>(iters);
        bench::BenchJsonRecord rec;
        rec.kernel = label;
        rec.rows = suite.dof();
        rec.nnz = suite.nnz();
        rec.secondsPerSmvp = per_smvp;
        rec.gflops = flops / per_smvp / 1e9;
        rec.tfNs = per_smvp / flops * 1e9;

        // Roofline annotation: model bytes per flop, the sustained
        // bandwidth the measured time implies, and padding overhead.
        const double bytes = bytesPerSmvp(suite, kernel);
        rec.extra.emplace_back("bytes_per_flop", bytes / flops);
        rec.extra.emplace_back("gbps", bytes / per_smvp / 1e9);
        rec.extra.emplace_back("padding_ratio",
                               paddingRatioOf(suite, kernel));

        // google-benchmark invokes the function several times while
        // calibrating the iteration count; keep only the final (longest,
        // most reliable) run for each benchmark label.
        auto &records = jsonRecords();
        for (bench::BenchJsonRecord &existing : records) {
            if (existing.kernel == label) {
                existing = std::move(rec);
                return;
            }
        }
        records.push_back(std::move(rec));
    }
}

} // namespace

#define QUAKE_TF_BENCH(tag, cls, kernel)                                  \
    BENCHMARK_CAPTURE(runKernelBench, tag, #tag, mesh::SfClass::cls,      \
                      spark::Kernel::kernel)

QUAKE_TF_BENCH(sf20_csr, kSf20, kCsr);
QUAKE_TF_BENCH(sf20_bcsr3, kSf20, kBcsr3);
QUAKE_TF_BENCH(sf20_sym, kSf20, kSym);
QUAKE_TF_BENCH(sf20_bcsr3sym, kSf20, kSymBcsr3);
QUAKE_TF_BENCH(sf20_bcsr3sym_simd, kSf20, kSymBcsr3Simd);
QUAKE_TF_BENCH(sf20_ell3, kSf20, kSlicedEll3);
QUAKE_TF_BENCH(sf10_csr, kSf10, kCsr);
QUAKE_TF_BENCH(sf10_bcsr3, kSf10, kBcsr3);
QUAKE_TF_BENCH(sf10_sym, kSf10, kSym);
QUAKE_TF_BENCH(sf10_bcsr3sym, kSf10, kSymBcsr3);
QUAKE_TF_BENCH(sf10_bcsr3sym_mt, kSf10, kSymBcsr3Mt);
QUAKE_TF_BENCH(sf10_bcsr3sym_simd, kSf10, kSymBcsr3Simd);
QUAKE_TF_BENCH(sf10_ell3, kSf10, kSlicedEll3);
QUAKE_TF_BENCH(sf10_ell3_mt, kSf10, kSlicedEll3Mt);
QUAKE_TF_BENCH(sf5_csr, kSf5, kCsr);
QUAKE_TF_BENCH(sf5_bcsr3, kSf5, kBcsr3);
QUAKE_TF_BENCH(sf5_sym, kSf5, kSym);
QUAKE_TF_BENCH(sf5_bcsr3sym, kSf5, kSymBcsr3);
QUAKE_TF_BENCH(sf5_bcsr3sym_simd, kSf5, kSymBcsr3Simd);
QUAKE_TF_BENCH(sf5_ell3, kSf5, kSlicedEll3);
QUAKE_TF_BENCH(sf5_ell3_mt, kSf5, kSlicedEll3Mt);

namespace
{

/**
 * §4-style closing summary: take the best measured T_f across all
 * records and derive the requirement operating points the way the
 * paper's Figure 9 grid does — from the kernel that actually runs.
 */
void
printRooflineSummary()
{
    const auto &records = jsonRecords();
    if (records.empty())
        return;
    const bench::BenchJsonRecord *best = &records.front();
    for (const bench::BenchJsonRecord &r : records)
        if (r.tfNs < best->tfNs)
            best = &r;

    std::printf("\nRoofline summary (per-format byte-traffic model)\n");
    std::printf("%-24s %10s %12s %10s %10s\n", "kernel", "tf_ns",
                "bytes/flop", "GB/s", "pad_ratio");
    for (const bench::BenchJsonRecord &r : records) {
        double bpf = 0.0, gbps = 0.0, pad = 1.0;
        for (const auto &kv : r.extra) {
            if (kv.first == "bytes_per_flop")
                bpf = kv.second;
            else if (kv.first == "gbps")
                gbps = kv.second;
            else if (kv.first == "padding_ratio")
                pad = kv.second;
        }
        std::printf("%-24s %10.3f %12.2f %10.2f %10.3f\n",
                    r.kernel.c_str(), r.tfNs, bpf, gbps, pad);
    }

    std::printf("\nSliced-ELL dispatch: %s\n",
                sparse::SlicedEll3Matrix::activeKernelName());
    std::printf("Requirement grid from best measured T_f (%s, %.3f "
                "ns/flop):\n",
                best->kernel.c_str(), best->tfNs);
    const std::vector<core::OperatingPoint> grid =
        core::gridFromMeasuredTf(best->tfNs * 1e-9,
                                 {0.25, 0.5, 0.75});
    for (const core::OperatingPoint &p : grid)
        std::printf("  E = %.2f -> sustained %.1f MFLOPS per PE\n",
                    p.efficiency, p.mflops);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printRooflineSummary();
    bench::writeBenchJson("tf_kernels", jsonRecords());
    return 0;
}
