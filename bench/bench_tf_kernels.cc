/**
 * @file
 * Section 3.1 — measuring T_f, the sustained per-flop time of the local
 * SMVP, with google-benchmark.  The paper measures 30 ns on the Cray
 * T3D and 14 ns on the T3E and stresses that sustained rates sit far
 * below peak (12% on the T3E); this harness produces the same
 * measurement for this host across the kernel formats and mesh classes.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "mesh/generator.h"
#include "spark/kernels.h"

namespace
{

using namespace quake;

/** Lazily built suite per mesh class (shared across benchmarks). */
const spark::KernelSuite &
suiteFor(mesh::SfClass cls)
{
    static std::map<mesh::SfClass, std::unique_ptr<spark::KernelSuite>>
        suites;
    auto it = suites.find(cls);
    if (it == suites.end()) {
        static const mesh::LayeredBasinModel model;
        const mesh::GeneratedMesh generated = mesh::generateSfMesh(cls);
        it = suites
                 .emplace(cls, std::make_unique<spark::KernelSuite>(
                                   generated.mesh, model))
                 .first;
    }
    return *it->second;
}

void
runKernelBench(benchmark::State &state, mesh::SfClass cls,
               spark::Kernel kernel)
{
    const spark::KernelSuite &suite = suiteFor(cls);
    std::vector<double> x(static_cast<std::size_t>(suite.dof()));
    common::SplitMix64 rng(1998);
    for (double &v : x)
        v = rng.uniform(-1, 1);
    std::vector<double> y(x.size());

    for (auto _ : state) {
        switch (kernel) {
          case spark::Kernel::kCsr:
            sparse::smvpCsr(suite.csr(), x.data(), y.data());
            break;
          case spark::Kernel::kBcsr3:
            sparse::smvpBcsr3(suite.bcsr(), x.data(), y.data());
            break;
          case spark::Kernel::kSym:
            sparse::smvpSym(suite.sym(), x.data(), y.data());
            break;
        }
        benchmark::DoNotOptimize(y.data());
        benchmark::ClobberMemory();
    }

    // The paper's F = 2m flops per SMVP, regardless of storage format.
    // FLOPS prints as a rate (e.g. "1.9G/s"); T_f is its inverse — the
    // paper's 30 ns (T3D) / 14 ns (T3E) comparison points.
    const double flops = static_cast<double>(2 * suite.nnz());
    state.counters["flops_per_smvp"] = flops;
    state.counters["FLOPS"] = benchmark::Counter(
        flops, benchmark::Counter::kIsIterationInvariantRate);
}

} // namespace

BENCHMARK_CAPTURE(runKernelBench, sf20_csr, mesh::SfClass::kSf20,
                  spark::Kernel::kCsr);
BENCHMARK_CAPTURE(runKernelBench, sf20_bcsr3, mesh::SfClass::kSf20,
                  spark::Kernel::kBcsr3);
BENCHMARK_CAPTURE(runKernelBench, sf20_sym, mesh::SfClass::kSf20,
                  spark::Kernel::kSym);
BENCHMARK_CAPTURE(runKernelBench, sf10_csr, mesh::SfClass::kSf10,
                  spark::Kernel::kCsr);
BENCHMARK_CAPTURE(runKernelBench, sf10_bcsr3, mesh::SfClass::kSf10,
                  spark::Kernel::kBcsr3);
BENCHMARK_CAPTURE(runKernelBench, sf10_sym, mesh::SfClass::kSf10,
                  spark::Kernel::kSym);
BENCHMARK_CAPTURE(runKernelBench, sf5_csr, mesh::SfClass::kSf5,
                  spark::Kernel::kCsr);
BENCHMARK_CAPTURE(runKernelBench, sf5_bcsr3, mesh::SfClass::kSf5,
                  spark::Kernel::kBcsr3);
BENCHMARK_CAPTURE(runKernelBench, sf5_sym, mesh::SfClass::kSf5,
                  spark::Kernel::kSym);

BENCHMARK_MAIN();
