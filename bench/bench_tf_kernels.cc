/**
 * @file
 * Section 3.1 — measuring T_f, the sustained per-flop time of the local
 * SMVP, with google-benchmark.  The paper measures 30 ns on the Cray
 * T3D and 14 ns on the T3E and stresses that sustained rates sit far
 * below peak (12% on the T3E); this harness produces the same
 * measurement for this host across the kernel formats and mesh classes.
 *
 * Besides the usual google-benchmark console output, the run writes
 * BENCH_tf_kernels.json (see bench_util.h) so the measured T_f values
 * can be diffed across commits alongside BENCH_smvp.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "mesh/generator.h"
#include "spark/kernels.h"
#include "sparse/bcsr3_sym.h"

namespace
{

using namespace quake;

/** Lazily built suite per mesh class (shared across benchmarks). */
const spark::KernelSuite &
suiteFor(mesh::SfClass cls)
{
    static std::map<mesh::SfClass, std::unique_ptr<spark::KernelSuite>>
        suites;
    auto it = suites.find(cls);
    if (it == suites.end()) {
        static const mesh::LayeredBasinModel model;
        const mesh::GeneratedMesh generated = mesh::generateSfMesh(cls);
        it = suites
                 .emplace(cls, std::make_unique<spark::KernelSuite>(
                                   generated.mesh, model))
                 .first;
    }
    return *it->second;
}

/** Records accumulated across all benchmarks for the JSON report. */
std::vector<bench::BenchJsonRecord> &
jsonRecords()
{
    static std::vector<bench::BenchJsonRecord> records;
    return records;
}

void
runKernelBench(benchmark::State &state, const std::string &label,
               mesh::SfClass cls, spark::Kernel kernel)
{
    const spark::KernelSuite &suite = suiteFor(cls);
    std::vector<double> x(static_cast<std::size_t>(suite.dof()));
    common::SplitMix64 rng(1998);
    for (double &v : x)
        v = rng.uniform(-1, 1);
    std::vector<double> y(x.size());

    std::int64_t iters = 0;
    double seconds = 0.0;
    for (auto _ : state) {
        const auto t0 = std::chrono::steady_clock::now();
        switch (kernel) {
          case spark::Kernel::kCsr:
            sparse::smvpCsr(suite.csr(), x.data(), y.data());
            break;
          case spark::Kernel::kBcsr3:
            sparse::smvpBcsr3(suite.bcsr(), x.data(), y.data());
            break;
          case spark::Kernel::kSym:
            sparse::smvpSym(suite.sym(), x.data(), y.data());
            break;
          case spark::Kernel::kSymBcsr3:
            suite.symBcsr().multiply(x.data(), y.data());
            break;
          case spark::Kernel::kThreaded:
          case spark::Kernel::kSymBcsr3Mt:
            // Pool-backed kernels go through the suite (which owns the
            // persistent worker pool and the padded scratch slabs).
            y = suite.run(kernel, x);
            break;
        }
        benchmark::DoNotOptimize(y.data());
        benchmark::ClobberMemory();
        seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        ++iters;
    }

    // The paper's F = 2m flops per SMVP, regardless of storage format.
    // FLOPS prints as a rate (e.g. "1.9G/s"); T_f is its inverse — the
    // paper's 30 ns (T3D) / 14 ns (T3E) comparison points.
    const double flops = static_cast<double>(2 * suite.nnz());
    state.counters["flops_per_smvp"] = flops;
    state.counters["FLOPS"] = benchmark::Counter(
        flops, benchmark::Counter::kIsIterationInvariantRate);

    if (iters > 0) {
        const double per_smvp = seconds / static_cast<double>(iters);
        bench::BenchJsonRecord rec;
        rec.kernel = label;
        rec.rows = suite.dof();
        rec.nnz = suite.nnz();
        rec.secondsPerSmvp = per_smvp;
        rec.gflops = flops / per_smvp / 1e9;
        rec.tfNs = per_smvp / flops * 1e9;

        // google-benchmark invokes the function several times while
        // calibrating the iteration count; keep only the final (longest,
        // most reliable) run for each benchmark label.
        auto &records = jsonRecords();
        for (bench::BenchJsonRecord &existing : records) {
            if (existing.kernel == label) {
                existing = std::move(rec);
                return;
            }
        }
        records.push_back(std::move(rec));
    }
}

} // namespace

#define QUAKE_TF_BENCH(tag, cls, kernel)                                  \
    BENCHMARK_CAPTURE(runKernelBench, tag, #tag, mesh::SfClass::cls,      \
                      spark::Kernel::kernel)

QUAKE_TF_BENCH(sf20_csr, kSf20, kCsr);
QUAKE_TF_BENCH(sf20_bcsr3, kSf20, kBcsr3);
QUAKE_TF_BENCH(sf20_sym, kSf20, kSym);
QUAKE_TF_BENCH(sf20_bcsr3sym, kSf20, kSymBcsr3);
QUAKE_TF_BENCH(sf10_csr, kSf10, kCsr);
QUAKE_TF_BENCH(sf10_bcsr3, kSf10, kBcsr3);
QUAKE_TF_BENCH(sf10_sym, kSf10, kSym);
QUAKE_TF_BENCH(sf10_bcsr3sym, kSf10, kSymBcsr3);
QUAKE_TF_BENCH(sf10_bcsr3sym_mt, kSf10, kSymBcsr3Mt);
QUAKE_TF_BENCH(sf5_csr, kSf5, kCsr);
QUAKE_TF_BENCH(sf5_bcsr3, kSf5, kBcsr3);
QUAKE_TF_BENCH(sf5_sym, kSf5, kSym);
QUAKE_TF_BENCH(sf5_bcsr3sym, kSf5, kSymBcsr3);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::writeBenchJson("tf_kernels", jsonRecords());
    return 0;
}
