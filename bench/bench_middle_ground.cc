/**
 * @file
 * §4.1's "interesting middle ground": the Quake SMVP between regular
 * grid stencils (<= 6 neighbours) and FFT-style all-to-all (p - 1
 * neighbours).  One table per communication signature metric, with the
 * grid and FFT poles built analytically and the Quake column from the
 * paper's Figure 7 (plus the synthetic pipeline when available).
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "core/synthetic_workloads.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader(
        "Regular grid vs. Quake SMVP vs. all-to-all at ~128 PEs",
        "the Section 4.1 'middle ground' comparison");

    // Comparable problem scale: ~838k flops/PE, the sf2/128 value.
    const ref::Figure7Entry &quake_entry =
        ref::figure7(ref::PaperMesh::kSf2, 128);
    const core::SmvpCharacterization grid = core::regularGrid3d(390, 5);
    const core::SmvpCharacterization fft = core::allToAll(
        128, quake_entry.messageAvg, quake_entry.flops);
    const core::CharacterizationSummary grid_s = core::summarize(grid);
    const core::CharacterizationSummary fft_s = core::summarize(fft);

    // Synthetic Quake column for the same comparison.
    const bench::BenchMesh bm =
        args.has("full")
            ? bench::BenchMesh{mesh::SfClass::kSf2, 1.0, "sf2"}
            : bench::BenchMesh{mesh::SfClass::kSf2, 2.0,
                               "sf2 (1/2 scale)"};
    const core::CharacterizationSummary syn_s =
        core::summarize(bench::characterizeInstance(
            bench::cachedMesh(bm), 128, bm.label));

    auto peers = [](std::int64_t blocks_max) {
        return std::to_string(blocks_max / 2);
    };

    common::Table t({"metric", "regular grid (125 PEs)",
                     "Quake sf2/128 (paper)",
                     "Quake " + bm.label + "/128 (synthetic)",
                     "all-to-all (128 PEs)"});
    t.addRow({"peers per PE", peers(grid_s.blocksMax),
              peers(quake_entry.blocksMax), peers(syn_s.blocksMax),
              peers(fft_s.blocksMax)});
    t.addRow({"peers / (p-1)",
              common::formatFixed(
                  grid_s.blocksMax / 2.0 / 124.0, 2),
              common::formatFixed(quake_entry.blocksMax / 2.0 / 127.0,
                                  2),
              common::formatFixed(syn_s.blocksMax / 2.0 / 127.0, 2),
              "1.00"});
    t.addRow({"M_avg (words)",
              common::formatFixed(grid_s.messageSizeAvg, 0),
              common::formatCount(quake_entry.messageAvg),
              common::formatFixed(syn_s.messageSizeAvg, 0),
              common::formatFixed(fft_s.messageSizeAvg, 0)});
    t.addRow({"F/C_max", common::formatFixed(grid_s.flopsPerWord, 0),
              common::formatCount(quake_entry.flopsPerWord),
              common::formatFixed(syn_s.flopsPerWord, 0),
              common::formatFixed(fft_s.flopsPerWord, 0)});
    bench::printTable(t, args);

    std::cout
        << "\nReading: the Quake SMVP's ~20-25 peers per PE (~18-20% "
           "of the machine) sit squarely between the stencil's 6 and "
           "the FFT's everyone — too many neighbours for a "
           "nearest-neighbour network design, far too few to justify "
           "all-to-all provisioning.  Combined with small messages "
           "and moderate F/C_max, this is why the paper argues "
           "irregular applications need their own requirement "
           "analysis rather than inheriting either pole's folklore.\n";
    return 0;
}
