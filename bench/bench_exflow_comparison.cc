/**
 * @file
 * Section 1's EXFLOW comparison: communication intensity (volume per
 * MFLOP, messages per MFLOP, mean message size) of the Quake SMVP vs.
 * the EXFLOW unstructured CFD code from Cypher et al. [5].  The point
 * to reproduce: two unstructured finite element codes from different
 * domains have nearly identical communication signatures — many small
 * messages, moderate total volume.
 */

#include "bench/bench_util.h"

#include "core/reference.h"
#include "sparse/assembly.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    bench::benchHeader("Communication intensity: Quake vs. EXFLOW",
                       "the Section 1 comparison");

    const bench::BenchMesh bm =
        args.has("full")
            ? bench::BenchMesh{mesh::SfClass::kSf2, 1.0, "sf2"}
            : bench::BenchMesh{mesh::SfClass::kSf2, 2.0,
                               "sf2 (1/2 scale)"};
    const mesh::TetMesh &m = bench::cachedMesh(bm);
    const int pes = 128;

    const core::SmvpCharacterization ch =
        bench::characterizeInstance(m, pes, bm.label);

    // Memory per PE: stiffness bytes/node x nodes / PEs, plus vectors.
    const mesh::LayeredBasinModel model;
    const sparse::Bcsr3Matrix k = sparse::assembleStiffness(m, model);
    const double mbytes_per_pe = sparse::bytesPerNode(k, 5) *
                                 static_cast<double>(m.numNodes()) /
                                 pes / 1e6;

    const ref::CommIntensity synthetic =
        ref::intensityFrom(ch, mbytes_per_pe);
    const ref::CommIntensity &paper_quake = ref::quakeSf2Intensity();
    const ref::CommIntensity &exflow = ref::exflowIntensity();

    common::Table t({"metric", "synthetic " + bm.label + "/128",
                     "paper sf2/128", "EXFLOW (512 PEs)"});
    t.addRow({"memory per PE (MB)",
              common::formatFixed(synthetic.memoryPerPeMBytes, 1),
              common::formatFixed(paper_quake.memoryPerPeMBytes, 1),
              common::formatFixed(exflow.memoryPerPeMBytes, 1)});
    t.addRow({"comm volume / MFLOP (KB)",
              common::formatFixed(synthetic.commKBytesPerMflop, 0),
              common::formatFixed(paper_quake.commKBytesPerMflop, 0),
              common::formatFixed(exflow.commKBytesPerMflop, 0)});
    t.addRow({"messages / MFLOP",
              common::formatFixed(synthetic.messagesPerMflop, 0),
              common::formatFixed(paper_quake.messagesPerMflop, 0),
              common::formatFixed(exflow.messagesPerMflop, 0)});
    t.addRow({"avg message size (KB)",
              common::formatFixed(synthetic.avgMessageKBytes, 1),
              common::formatFixed(paper_quake.avgMessageKBytes, 1),
              common::formatFixed(exflow.avgMessageKBytes, 1)});
    t.print(std::cout);

    std::cout << "\nThe reproduced claim: unstructured FEM codes share "
                 "a signature — KB-scale average messages, tens of "
                 "messages and ~100+ KB of traffic per MFLOP — across "
                 "application domains.  (The scaled synthetic mesh has "
                 "proportionally less work per PE, which raises its "
                 "per-MFLOP intensities; --full closes the gap.)\n";
    return 0;
}
