/**
 * @file
 * Multi-level MESI co-simulation of the per-format SMVP address
 * streams (DESIGN.md §15): replay BCSR3, symmetric-scatter, and
 * sliced-ELL traces through modeled 1998 (T3E node) and modern (CMP +
 * shared LLC) hierarchies at several PE counts, report per-level miss
 * rates, coherence (true/false sharing) misses, modeled DRAM traffic,
 * and the predicted effective T_f — then feed that T_f back into
 * Equation (1) via core::requirementSweepFromTf to re-derive the
 * paper's network requirements under each era's memory system.
 *
 * Two hard gates (exit status):
 *  - replay determinism: the canonical schedule must produce
 *    bit-identical statistics across reruns and across trace container
 *    orders (the DESIGN.md §15 contract);
 *  - the modeled-1998 single-PE BCSR3 replay must land in the paper's
 *    sustained-fraction-of-peak regime (~12% of the 600 MFLOPS peak;
 *    accepted band 5-30% — the co-sim models the SMVP stream only, so
 *    a loose band guards the claim without overfitting the simulator).
 *
 * Flags: --smoke (small mesh — the `perf` ctest tier), --full,
 *        --iterations N, --csv.  Emits BENCH_arch.json.
 */

#include "bench/bench_util.h"

#include <cstring>

#include "arch/cosim.h"
#include "core/requirements.h"
#include "sparse/assembly.h"

namespace
{

using namespace quake;

/** "" when equal, else a short description of the first difference. */
std::string
diffStats(const arch::MesiStats &a, const arch::MesiStats &b)
{
    if (a.pe.size() != b.pe.size())
        return "PE count";
    for (std::size_t p = 0; p < a.pe.size(); ++p) {
        const arch::PeStats &x = a.pe[p];
        const arch::PeStats &y = b.pe[p];
        if (x.accesses != y.accesses || x.l1Misses != y.l1Misses ||
            x.l2Misses != y.l2Misses || x.llcMisses != y.llcMisses ||
            x.coldMisses != y.coldMisses ||
            x.coherenceMisses != y.coherenceMisses ||
            x.capacityMisses != y.capacityMisses ||
            x.trueSharingMisses != y.trueSharingMisses ||
            x.falseSharingMisses != y.falseSharingMisses ||
            x.upgrades != y.upgrades ||
            x.invalidationsReceived != y.invalidationsReceived ||
            x.writebacks != y.writebacks ||
            std::memcmp(&x.seconds, &y.seconds, sizeof x.seconds) != 0)
            return "PE " + std::to_string(p) + " counters";
    }
    if (a.llcAccesses != b.llcAccesses || a.llcMisses != b.llcMisses ||
        a.bytesFromDram != b.bytesFromDram)
        return "shared-level counters";
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    const common::Args args(argc, argv);
    bench::benchHeader(
        "MESI memory-hierarchy co-simulation of SMVP streams",
        "the Section 3.1 / Section 4.3 memory-system analysis");

    const bool smoke = args.has("smoke");
    const int iterations =
        static_cast<int>(args.getInt("iterations", 2));
    const bench::BenchMesh bm{mesh::SfClass::kSf10, smoke ? 3.0 : 1.0,
                              smoke ? "sf10 (smoke)" : "sf10"};
    const mesh::TetMesh &m = bench::cachedMesh(bm);
    const mesh::LayeredBasinModel model;
    const sparse::Bcsr3Matrix k = sparse::assembleStiffness(m, model);
    std::cout << "mesh: " << bm.label << ", " << k.numRows()
              << " scalar rows, " << k.nnz() << " nnz, "
              << common::formatFixed(72.0 * k.numBlocks() / 1e6, 1)
              << " MB of block values\n\n";

    struct Era
    {
        const char *label;
        arch::MesiHierarchyConfig (*make)(int);
        double peakFlops; ///< per PE
    };
    const Era eras[] = {
        // T3E node: 600 MFLOPS peak 21164, no shared level.
        {"1998", &arch::MesiHierarchyConfig::t3e1998, 600e6},
        // Nehalem-like CMP: 2.93 GHz x 4 DP flops/cycle per core.
        {"modern", &arch::MesiHierarchyConfig::nehalemCmp, 11.72e9},
    };
    const arch::TraceFormat formats[] = {arch::TraceFormat::kBcsr3,
                                         arch::TraceFormat::kSymBcsr3,
                                         arch::TraceFormat::kSlicedEll3};
    const int pe_counts[] = {1, 4};

    int failures = 0;
    std::vector<common::BenchJsonRecord> records;
    double tf_by_era[2] = {0.0, 0.0};
    double frac_1998_bcsr3_p1 = 0.0;

    common::Table t({"era", "format", "PEs", "L1 miss", "L2 miss",
                     "LLC miss", "coh/miss", "true:false", "DRAM MB",
                     "T_f ns", "MFLOPS", "% peak"});
    for (std::size_t e = 0; e < std::size(eras); ++e) {
        for (int pes : pe_counts) {
            for (arch::TraceFormat f : formats) {
                arch::CosimOptions opt;
                opt.format = f;
                opt.numPes = pes;
                opt.iterations = iterations;
                opt.peakFlopsPerSecond = eras[e].peakFlops;
                const arch::MesiHierarchyConfig config =
                    eras[e].make(pes);
                const arch::CosimResult r =
                    arch::runCosim(k, config, opt);

                const arch::MesiStats &s = r.stats;
                const double acc =
                    static_cast<double>(s.totalAccesses());
                const double l1m =
                    static_cast<double>(s.totalL1Misses());
                const double l2m =
                    static_cast<double>(s.totalL2Misses());
                const double cohm =
                    static_cast<double>(s.totalCoherenceMisses());
                std::int64_t true_sh = 0, false_sh = 0;
                for (const arch::PeStats &p : s.pe) {
                    true_sh += p.trueSharingMisses;
                    false_sh += p.falseSharingMisses;
                }

                t.addRow({eras[e].label, arch::traceFormatName(f),
                          std::to_string(pes),
                          common::formatFixed(100.0 * l1m / acc, 2) + "%",
                          common::formatFixed(100.0 * l2m / acc, 2) + "%",
                          common::formatFixed(
                              100.0 * s.llcMisses / acc, 2) + "%",
                          common::formatFixed(
                              l2m > 0 ? 100.0 * cohm / l2m : 0.0, 1) +
                              "%",
                          std::to_string(true_sh) + ":" +
                              std::to_string(false_sh),
                          common::formatFixed(s.bytesFromDram / 1e6, 1),
                          common::formatFixed(r.tfSeconds * 1e9, 2),
                          common::formatFixed(r.mflops, 0),
                          common::formatFixed(100.0 * r.fractionOfPeak,
                                              1) + "%"});

                common::BenchJsonRecord rec;
                rec.kernel = std::string(eras[e].label) + "/" +
                             arch::traceFormatName(f) + "/p" +
                             std::to_string(pes);
                rec.rows = k.numRows();
                rec.nnz = k.nnz();
                rec.secondsPerSmvp = r.effectiveSeconds / iterations;
                rec.gflops = r.mflops / 1e3;
                rec.tfNs = r.tfSeconds * 1e9;
                rec.extra = {
                    {"fraction_of_peak", r.fractionOfPeak},
                    {"l1_miss_rate", acc > 0 ? l1m / acc : 0.0},
                    {"private_miss_rate", acc > 0 ? l2m / acc : 0.0},
                    {"coherence_misses", cohm},
                    {"false_sharing_misses",
                     static_cast<double>(false_sh)},
                    {"dram_mbytes", s.bytesFromDram / 1e6},
                };
                records.push_back(rec);

                if (f == arch::TraceFormat::kBcsr3 && pes == 1) {
                    tf_by_era[e] = r.tfSeconds;
                    if (e == 0)
                        frac_1998_bcsr3_p1 = r.fractionOfPeak;
                }
            }
        }
    }
    bench::printTable(t, args);

    // ---- gate 1: canonical-replay determinism -----------------------
    {
        arch::CosimOptions opt;
        opt.format = arch::TraceFormat::kSymBcsr3;
        opt.numPes = 4;
        opt.iterations = 2;
        std::vector<arch::PeTrace> traces =
            arch::buildCosimTraces(k, opt);
        const arch::MesiHierarchyConfig config =
            arch::MesiHierarchyConfig::nehalemCmp(4);
        const arch::MesiStats s1 =
            arch::replayTraces(traces, config, opt.chunkRefs);
        const arch::MesiStats s2 =
            arch::replayTraces(traces, config, opt.chunkRefs);
        std::reverse(traces.begin(), traces.end());
        const arch::MesiStats s3 =
            arch::replayTraces(traces, config, opt.chunkRefs);
        std::string why = diffStats(s1, s2);
        if (why.empty())
            why = diffStats(s1, s3);
        if (!why.empty()) {
            std::cout << "\nGATE FAILED: replay not deterministic ("
                      << why << ")\n";
            ++failures;
        } else {
            std::cout << "\nreplay determinism: rerun and "
                         "container-order stats bit-identical\n";
        }
    }

    // ---- gate 2: the paper's sustained-fraction-of-peak claim -------
    {
        const double lo = 0.05, hi = 0.30;
        std::cout << "modeled 1998 single-PE BCSR3: "
                  << common::formatFixed(100.0 * frac_1998_bcsr3_p1, 1)
                  << "% of the 600 MFLOPS peak (paper: ~12%, accepted "
                  << common::formatFixed(100 * lo, 0) << "-"
                  << common::formatFixed(100 * hi, 0) << "%)\n";
        if (frac_1998_bcsr3_p1 < lo || frac_1998_bcsr3_p1 > hi) {
            std::cout << "GATE FAILED: fraction of peak outside the "
                         "accepted band\n";
            ++failures;
        }
    }

    // ---- Equation (1) under each era's modeled memory system --------
    const core::SmvpShape shape =
        core::SmvpShape::fromSummary(core::summarize(
            bench::characterizeInstance(m, 4, bm.label)));
    const std::vector<double> effs = {0.5, 0.8, 0.9};
    common::Table req({"era", "T_f ns", "E=0.5", "E=0.8", "E=0.9"});
    for (std::size_t e = 0; e < std::size(eras); ++e) {
        const std::vector<core::RequirementRow> rows =
            core::requirementSweepFromTf(shape, tf_by_era[e], effs);
        std::vector<std::string> row = {
            eras[e].label,
            common::formatFixed(tf_by_era[e] * 1e9, 2)};
        for (const core::RequirementRow &rr : rows)
            row.push_back(
                common::formatBandwidth(rr.sustainedBandwidthBytes));
        req.addRow(row);
    }
    std::cout << "\nRequired sustained network bandwidth per PE "
                 "(Equation 1) from the co-simulated T_f:\n";
    bench::printTable(req, args);
    std::cout << "\nThe 1998 node's slow memory hides the network: a "
                 "slow T_f tolerates a slow interconnect.  The modern "
                 "hierarchy's ~10x lower T_f multiplies the bandwidth "
                 "the same efficiency target demands — the paper's "
                 "Section 4 argument, re-derived from a modeled rather "
                 "than measured memory system.\n";

    bench::writeBenchJson(
        "arch", records,
        {{"mesh", bm.label},
         {"iterations", std::to_string(iterations)},
         {"formats", "bcsr3 sym ell"},
         {"pe_counts", "1 4"},
         {"determinism_gate", failures == 0 ? "pass" : "fail"}});
    return failures == 0 ? 0 : 1;
}
