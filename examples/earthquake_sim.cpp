/**
 * @file
 * The Quake application itself: simulate seismic wave propagation
 * through the synthetic San Fernando basin with the explicit finite
 * element method, sequentially or distributed over logical PEs.
 *
 * Usage: earthquake_sim [--mesh sf20|sf10|sf5] [--pes N]
 *                       [--duration seconds] [--max-steps N]
 *                       [--freq hz] [--scale h-scale]
 *                       [--damping a0] [--seismogram path]
 *                       [--shards S] [--pin] [--topology SPEC]
 *                       [--trace path] [--metrics path]
 *                       [--sample-every N]
 *                       [--faults [--drop-rate R] [--seed S]]
 *                       [--checkpoint path [--checkpoint-every N]]
 *                       [--resume] [--deadline ms] [--retries N]
 *
 * --shards splits the distributed engine's PEs into S NUMA-style
 * shards (nested pinned worker pools, DESIGN.md §13); --pin pins shard
 * workers to their shard's CPUs (advisory); --topology overrides both
 * with "flat", "auto" (NUMA detection), or "SxT" (e.g. "2x4").  All
 * three are execution knobs: the trajectory is bitwise identical for
 * every topology.
 *
 * With --checkpoint, the run snapshots its full state to `path`
 * atomically every N steps (default 100); kill it at any point and
 * rerun with --resume to continue bitwise identically from the last
 * checkpoint (DESIGN.md §11 and the README crash-recovery recipe).
 * --deadline arms the watchdog: a run whose per-step heartbeat stalls
 * longer than the given milliseconds is cancelled, restored from the
 * last checkpoint, and retried (up to --retries attempts) under capped
 * exponential backoff, halving the worker threads after each stall.
 * Note: seismogram traces cover only the steps the final attempt
 * executed; the checkpointed state and report history are complete.
 *
 * With --trace or --metrics, the run records telemetry (DESIGN.md §9):
 * --trace writes a Chrome trace_event JSON loadable in Perfetto /
 * about://tracing, --metrics writes the phase histograms and counters
 * as a BENCH-schema JSON, and a measured-vs-modeled report compares the
 * run's compute/exchange split against the paper's Eq. (1) prediction
 * (distributed runs only).  --sample-every N thins the fine-grained
 * per-PE spans to every Nth step (default 16).
 *
 * With --faults, the per-step boundary exchange of the distributed run
 * is replayed through the reliable (ack/retransmit) protocol on an
 * unreliable network and the projected slowdown and stale-boundary
 * error bound are reported.
 */

#include <algorithm>
#include <iostream>

#include "common/args.h"
#include "common/engine_cli.h"
#include "common/error.h"
#include "common/table.h"
#include "parallel/characterize.h"
#include "parallel/event_sim.h"
#include "parallel/reliable_exchange.h"
#include "partition/geometric_bisection.h"
#include "quake/simulation.h"
#include "resilience/supervisor.h"
#include "telemetry/collector.h"
#include "telemetry/export.h"
#include "telemetry/report.h"

namespace
{

int
run(int argc, char **argv)
{
    using namespace quake;
    const common::Args args(argc, argv);
    const common::EngineCliOptions cli = common::parseEngineCli(args);
    const mesh::SfClass cls =
        mesh::sfClassFromName(args.get("mesh", "sf20"));

    sim::SimulationConfig config;
    config.numPes = static_cast<int>(args.getInt("pes", 1));
    config.durationSeconds = args.getDouble("duration", 20.0);
    config.maxSteps = args.getInt("max-steps", 2000);
    config.wavelet.peakFrequencyHz = args.getDouble("freq", 0.25);
    config.wavelet.delaySeconds = 2.0 / config.wavelet.peakFrequencyHz;
    config.sampleInterval = 50;
    config.dampingA0 = args.getDouble("damping", 0.0);
    config.smvpShards = cli.shards;
    config.pinSmvpThreads = cli.pin;
    config.topologySpec = cli.topologySpec;

    // Fail on bad flags before any mesh is generated: the shared
    // engine flags were validated by parseEngineCli above; the config
    // and the fault spec (when requested) are validated here.
    config.validate();
    resilience::ResilientRunOptions resilient;
    resilient.checkpointPath = args.get("checkpoint");
    resilient.checkpointEvery = args.getInt(
        "checkpoint-every", resilient.checkpointPath.empty() ? 0 : 100);
    resilient.resume = args.has("resume");
    resilient.supervisor.maxAttempts =
        static_cast<int>(args.getInt("retries", 3));
    resilient.supervisor.stallTimeout =
        std::chrono::milliseconds{args.getInt("deadline", 0)};
    resilient.supervisor.validate();
    QUAKE_EXPECT(resilient.checkpointEvery >= 0,
                 "--checkpoint-every must be >= 0, got "
                     << resilient.checkpointEvery);
    QUAKE_EXPECT(!resilient.resume || !resilient.checkpointPath.empty(),
                 "--resume requires --checkpoint <path>");
    QUAKE_EXPECT(resilient.supervisor.stallTimeout.count() >= 0,
                 "--deadline must be >= 0 ms, got "
                     << resilient.supervisor.stallTimeout.count());
    parallel::FaultSpec fault_spec;
    if (cli.faults) {
        fault_spec.seed = cli.faultSeed;
        fault_spec.dropProbability = cli.dropRate;
        fault_spec.ackDropProbability = fault_spec.dropProbability;
        fault_spec.validate();
    }

    std::cout << "Simulating " << mesh::sfClassName(cls) << " on "
              << config.numPes << " PE(s), source at ("
              << config.hypocenter.x << ", " << config.hypocenter.y
              << ", " << config.hypocenter.z << ") km depth...\n";
    if (!config.topologySpec.empty() || config.smvpShards > 1 ||
        config.pinSmvpThreads)
        std::cout << "  engine topology: "
                  << (config.topologySpec.empty()
                          ? std::to_string(config.smvpShards) +
                                " shard(s)"
                          : config.topologySpec)
                  << (config.pinSmvpThreads ? ", pinned" : "") << "\n";

    // Generate the mesh up front so receiver stations can be placed.
    const mesh::LayeredBasinModel model;
    const mesh::GeneratedMesh generated = mesh::generateMesh(
        model,
        mesh::MeshSpec::forClass(cls, args.getDouble("scale", 1.0)));

    sim::Seismogram record = sim::Seismogram::surfaceLine(
        generated.mesh, 8, model.params().basinCenter.y);
    config.recorder = &record;

    // Telemetry rides along only when an output was requested; a
    // disabled collector records nothing and costs one branch per hook.
    const std::string &trace_path = cli.tracePath;
    const std::string &metrics_path = cli.metricsPath;
    telemetry::CollectorConfig tele_config;
    tele_config.enabled = !trace_path.empty() || !metrics_path.empty();
    tele_config.sampleEvery = cli.sampleEvery;
    telemetry::Collector collector(tele_config);
    if (collector.enabled())
        config.collector = &collector;

    // Every run goes through the supervisor; with no checkpoint or
    // deadline flags it degenerates to a single plain attempt (no
    // watchdog thread, no hook) but still reports the final-state
    // fingerprint the crash-recovery smoke compares.
    const resilience::RunOutcome outcome =
        resilience::runSupervisedSimulation(generated.mesh, model,
                                            config, resilient);
    QUAKE_EXPECT(outcome.succeeded,
                 "run failed after " << outcome.attempts
                                     << " attempt(s): " << outcome.error);
    const sim::SimulationReport &report = outcome.report;

    std::cout << "\nRun summary:\n"
              << "  time step (CFL)      : "
              << common::formatTime(report.dt) << "\n"
              << "  steps taken          : " << report.steps << "\n"
              << "  simulated time       : "
              << common::formatFixed(report.simulatedSeconds, 2)
              << " s\n"
              << "  wall time in step()  : "
              << common::formatFixed(report.totalSeconds, 2) << " s\n"
              << "  wall time in SMVP    : "
              << common::formatFixed(report.smvpSeconds, 2) << " s  ("
              << common::formatFixed(100.0 * report.smvpFraction, 1)
              << "% — paper reports >80%)\n"
              << "  peak |displacement|  : "
              << common::formatFixed(report.peakDisplacement, 6) << "\n";

    std::cout << "\nResilience:\n"
              << "  attempts             : " << outcome.attempts << "\n"
              << "  restarts             : " << outcome.restarts;
    if (outcome.restarts > 0)
        std::cout << "  (resumed from step " << outcome.resumedFromStep
                  << ")";
    std::cout << "\n"
              << "  stalls / degradations: " << outcome.stalls << " / "
              << outcome.degradations << "\n"
              << "  final state fingerprint: 0x" << std::hex
              << outcome.stateFingerprint << std::dec << "\n";

    if (!report.samples.empty()) {
        std::cout << "\nWavefield history:\n";
        common::Table t({"t (s)", "peak |u|", "kinetic energy"});
        for (const sim::FieldSample &s : report.samples) {
            t.addRow({common::formatFixed(s.time, 2),
                      common::formatFixed(s.peakDisplacement, 6),
                      common::formatFixed(s.kineticEnergy, 6)});
        }
        t.print(std::cout);
    }

    // Seismograms: per-station peak ground motion, plus a file dump.
    std::cout << "\nReceiver stations (surface line through the basin):\n";
    common::Table stations({"station", "x (km)", "peak |u|"});
    for (std::size_t s = 0; s < record.stations().size(); ++s) {
        stations.addRow(
            {record.stations()[s].name,
             common::formatFixed(record.stations()[s].position.x, 1),
             common::formatFixed(record.peakAmplitude(s), 6)});
    }
    stations.print(std::cout);
    if (args.has("seismogram")) {
        record.write(args.get("seismogram"));
        std::cout << "wrote traces to " << args.get("seismogram")
                  << "\n";
    }

    if (collector.enabled() && config.numPes > 1) {
        // Measured compute/exchange split vs the paper's Eq. (1)
        // prediction, from the same partition the run used.
        const partition::GeometricBisection partitioner;
        const parallel::DistributedProblem topo =
            parallel::distributeTopology(
                generated.mesh,
                partitioner.partition(generated.mesh, config.numPes));
        const core::SmvpCharacterization ch = parallel::characterize(
            topo, mesh::sfClassName(cls) + "/" +
                      std::to_string(config.numPes));
        telemetry::ModelReportInputs inputs;
        inputs.shape = core::SmvpShape::fromSummary(core::summarize(ch));
        for (const core::PeLoad &pe : ch.pes) {
            inputs.totalFlops += static_cast<double>(pe.flops);
            inputs.totalWords += static_cast<double>(pe.words);
        }
        telemetry::printModelValidation(
            telemetry::validateModel(collector, inputs), std::cout);
    }

    if (cli.faults) {
        // Replay one step's boundary exchange through the reliable
        // protocol: what would this run cost on a lossy network?
        const int pes = std::max(config.numPes, 2);
        const double rate = fault_spec.dropProbability;
        const partition::GeometricBisection partitioner;
        const parallel::CommSchedule schedule =
            parallel::CommSchedule::build(
                generated.mesh,
                partitioner.partition(generated.mesh, pes));
        const parallel::MachineModel machine = parallel::crayT3e();

        const parallel::EventSimResult baseline =
            parallel::simulateExchange(schedule, machine);
        parallel::ReliableExchangeOptions reliable;
        reliable.faults = fault_spec;
        if (collector.enabled())
            reliable.collector = &collector;
        const parallel::ReliableExchangeResult r =
            parallel::simulateReliableExchange(schedule, machine,
                                               reliable);

        std::cout << "\nFault projection (" << pes << " PEs, "
                  << machine.name << ", drop rate "
                  << common::formatFixed(100.0 * rate, 2) << "%):\n"
                  << "  exchange per step    : "
                  << common::formatTime(baseline.tComm)
                  << " fault-free, " << common::formatTime(r.tComm)
                  << " with recovery ("
                  << common::formatFixed(
                         baseline.tComm > 0
                             ? r.tComm / baseline.tComm
                             : 1.0,
                         2)
                  << "x)\n"
                  << "  retransmissions      : " << r.retransmissions
                  << " (" << r.timeoutsFired << " timeouts)\n"
                  << "  exchanges lost       : "
                  << r.lostExchanges.size() << "\n"
                  << "  stale y = Kx bound   : "
                  << common::formatFixed(100.0 * r.staleFraction, 3)
                  << "% of boundary words\n";
    }

    if (collector.enabled()) {
        std::cout << "\nTelemetry (" << collector.spansRecorded()
                  << " spans, "
                  << collector.counterTotal(
                         telemetry::Counter::kStepsSampled)
                  << " sampled steps, " << collector.spansDropped()
                  << " dropped):\n";
        if (!trace_path.empty() &&
            telemetry::writeChromeTrace(collector, trace_path))
            std::cout << "  wrote Chrome trace " << trace_path
                      << " (open at https://ui.perfetto.dev)\n"
                      << "  step-span wall-time coverage: "
                      << common::formatFixed(
                             100.0 * telemetry::traceCoverage(collector),
                             1)
                      << "%\n";
        if (!metrics_path.empty())
            telemetry::writeMetricsBenchJson(
                collector, "earthquake_sim",
                {{"mesh", mesh::sfClassName(cls)},
                 {"pes", std::to_string(config.numPes)}},
                metrics_path);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const quake::common::FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
