/**
 * @file
 * The paper's Section 4 as a command: characterize an SMVP instance —
 * a synthetic mesh + partition, or one of the paper's published
 * instances — and print its complete communication-requirement
 * analysis (sustained bandwidth, bisection bandwidth, half-bandwidth
 * points for maximal and cache-line blocks, latency ceilings).
 *
 * Usage:
 *   analyze --paper sf2 --pes 128              # published Figure 7 row
 *   analyze --mesh sf10 --pes 32 [--scale S]   # synthetic pipeline
 *   analyze ... --mflops 150,300 --eff 0.85
 */

#include <iostream>
#include <sstream>

#include "common/args.h"
#include "common/error.h"
#include "core/reference.h"
#include "core/report.h"
#include "mesh/generator.h"
#include "parallel/characterize.h"
#include "partition/geometric_bisection.h"

namespace
{

std::vector<double>
parseList(const std::string &text)
{
    std::vector<double> values;
    std::istringstream iss(text);
    std::string item;
    while (std::getline(iss, item, ','))
        values.push_back(std::stod(item));
    return values;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    try {
        const int pes = static_cast<int>(args.getInt("pes", 128));

        core::SmvpCharacterization ch;
        if (args.has("paper")) {
            // Build a one-PE-shaped characterization from the
            // published Figure 7 entry (per-PE loads identical; no
            // bisection volume is published).
            const ref::PaperMesh mesh =
                ref::paperMeshFromName(args.get("paper"));
            const ref::Figure7Entry &entry = ref::figure7(mesh, pes);
            ch.name = ref::paperMeshName(mesh) + "/" +
                      std::to_string(pes) + " (paper)";
            ch.numPes = pes;
            ch.pes.assign(static_cast<std::size_t>(pes),
                          core::PeLoad{entry.flops, entry.wordsMax,
                                       entry.blocksMax});
            ch.messageSizes.assign(
                static_cast<std::size_t>(pes) * entry.blocksMax / 2,
                entry.messageAvg);
        } else {
            const mesh::SfClass cls =
                mesh::sfClassFromName(args.get("mesh", "sf10"));
            const mesh::GeneratedMesh generated = mesh::generateSfMesh(
                cls, args.getDouble("scale", 1.0));
            const partition::GeometricBisection partitioner;
            const parallel::DistributedProblem problem =
                parallel::distributeTopology(
                    generated.mesh,
                    partitioner.partition(generated.mesh, pes));
            ch = parallel::characterize(
                problem,
                mesh::sfClassName(cls) + "/" + std::to_string(pes));
        }

        core::AnalysisRequest request;
        if (args.has("mflops"))
            request.mflopsGrid = parseList(args.get("mflops"));
        if (args.has("eff"))
            request.efficiencyGrid = parseList(args.get("eff"));

        core::printReport(core::analyze(ch, request), std::cout);
    } catch (const common::FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
