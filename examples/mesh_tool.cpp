/**
 * @file
 * Mesh utility: generate a synthetic San Fernando mesh and write it in
 * the Archimedes/TetGen-style .node/.ele format (or inspect an existing
 * mesh on disk).
 *
 * Usage: mesh_tool generate --mesh sf20 [--scale S] --out prefix
 *        mesh_tool inspect <prefix>
 */

#include <iostream>

#include "common/args.h"
#include "common/error.h"
#include "common/table.h"
#include "mesh/generator.h"
#include "mesh/mesh_io.h"
#include "mesh/quality.h"

namespace
{

void
printStats(const quake::mesh::TetMesh &mesh)
{
    using namespace quake;
    const mesh::MeshStats s = mesh.computeStats();
    const mesh::QualityReport q = mesh::computeQualityReport(mesh);
    common::Table t({"metric", "value"});
    t.addRow({"nodes", common::formatCount(s.numNodes)});
    t.addRow({"elements", common::formatCount(s.numElements)});
    t.addRow({"edges", common::formatCount(s.numEdges)});
    t.addRow({"avg node degree", common::formatFixed(s.avgDegree, 2)});
    t.addRow({"min element quality", common::formatFixed(s.minQuality, 4)});
    t.addRow({"mean element quality",
              common::formatFixed(s.meanQuality, 4)});
    t.addRow({"min dihedral (deg)",
              common::formatFixed(q.minDihedralRad * 180.0 / M_PI, 1)});
    t.addRow({"max dihedral (deg)",
              common::formatFixed(q.maxDihedralRad * 180.0 / M_PI, 1)});
    t.addRow({"total volume (km^3)",
              common::formatFixed(s.totalVolume, 1)});
    t.print(std::cout);

    std::cout << "\nquality histogram (mean-ratio, 10 bins 0..1):\n";
    for (std::size_t b = 0; b < q.buckets.size(); ++b) {
        std::cout << "  [" << common::formatFixed(0.1 * b, 1) << ", "
                  << common::formatFixed(0.1 * (b + 1), 1) << ") "
                  << q.buckets[b] << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quake;
    const common::Args args(argc, argv);
    if (args.positional().empty()) {
        std::cout << "usage: mesh_tool generate --mesh sf20 [--scale S] "
                     "--out prefix\n"
                     "       mesh_tool inspect <prefix>\n";
        return 1;
    }

    try {
        const std::string command = args.positional()[0];
        if (command == "generate") {
            const mesh::SfClass cls =
                mesh::sfClassFromName(args.get("mesh", "sf20"));
            const mesh::GeneratedMesh generated = mesh::generateSfMesh(
                cls, args.getDouble("scale", 1.0));
            printStats(generated.mesh);
            const std::string out = args.get("out", "");
            if (!out.empty()) {
                mesh::writeMesh(generated.mesh, out);
                std::cout << "\nwrote " << out << ".node and " << out
                          << ".ele\n";
            }
        } else if (command == "inspect") {
            QUAKE_EXPECT(args.positional().size() >= 2,
                         "inspect needs a path prefix");
            const mesh::TetMesh mesh =
                mesh::readMesh(args.positional()[1]);
            mesh.validate();
            printStats(mesh);
        } else {
            common::fatal("unknown command '" + command + "'");
        }
    } catch (const common::FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
