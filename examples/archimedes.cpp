/**
 * @file
 * An Archimedes-style tool chain driver (paper §2.2): take a mesh
 * (generated or from .node/.ele files), partition it with a chosen
 * method, optionally polish the boundary, then emit everything a
 * parallel run needs — the partition file, the per-PE statistics, and
 * the communication schedule summary.
 *
 * Usage:
 *   archimedes --mesh sf20 [--scale S] --pes 16
 *              [--method inertial|coordinate|spectral|slab|random]
 *              [--refine] [--in prefix] [--out prefix]
 */

#include <iostream>
#include <memory>

#include "common/args.h"
#include "common/error.h"
#include "common/table.h"
#include "core/characterization.h"
#include "mesh/generator.h"
#include "mesh/mesh_io.h"
#include "parallel/characterize.h"
#include "partition/baselines.h"
#include "partition/geometric_bisection.h"
#include "partition/partition_io.h"
#include "partition/partition_stats.h"
#include "partition/refine_boundary.h"
#include "partition/spectral.h"

namespace
{

std::unique_ptr<quake::partition::Partitioner>
makePartitioner(const std::string &method)
{
    using namespace quake::partition;
    if (method == "inertial")
        return std::make_unique<GeometricBisection>(
            BisectionAxis::kInertial);
    if (method == "coordinate")
        return std::make_unique<GeometricBisection>(
            BisectionAxis::kLongestExtent);
    if (method == "spectral")
        return std::make_unique<SpectralBisection>();
    if (method == "slab")
        return std::make_unique<SlabPartitioner>();
    if (method == "random")
        return std::make_unique<RandomPartitioner>();
    quake::common::fatal("unknown method '" + method + "'");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quake;
    const common::Args args(argc, argv);
    try {
        // --- 1. Obtain the mesh. ---
        mesh::TetMesh m;
        if (args.has("in")) {
            m = mesh::readMesh(args.get("in"));
            m.validate();
            std::cout << "read mesh '" << args.get("in") << "': "
                      << common::formatCount(m.numNodes()) << " nodes, "
                      << common::formatCount(m.numElements())
                      << " elements\n";
        } else {
            const mesh::SfClass cls =
                mesh::sfClassFromName(args.get("mesh", "sf20"));
            m = mesh::generateSfMesh(cls, args.getDouble("scale", 1.0))
                    .mesh;
            std::cout << "generated " << mesh::sfClassName(cls) << ": "
                      << common::formatCount(m.numNodes()) << " nodes, "
                      << common::formatCount(m.numElements())
                      << " elements\n";
        }

        // --- 2. Partition (+ optional boundary polish). ---
        const int pes = static_cast<int>(args.getInt("pes", 16));
        const auto partitioner =
            makePartitioner(args.get("method", "inertial"));
        partition::Partition part = partitioner->partition(m, pes);
        std::cout << "partitioned into " << pes << " subdomains with "
                  << partitioner->name() << "\n";
        if (args.has("refine")) {
            const partition::BoundaryRefineReport report =
                partition::refineBoundary(m, part);
            std::cout << "boundary refinement: " << report.moves
                      << " moves, replicas "
                      << common::formatCount(report.replicasBefore)
                      << " -> "
                      << common::formatCount(report.replicasAfter)
                      << "\n";
        }

        // --- 3. Report what a parallel run will see. ---
        const partition::PartitionStats pstats =
            partition::computePartitionStats(m, part);
        const parallel::DistributedProblem problem =
            parallel::distributeTopology(m, part);
        const core::CharacterizationSummary summary = core::summarize(
            parallel::characterize(problem, "archimedes"));

        common::Table t({"property", "value"});
        t.addRow({"element imbalance",
                  common::formatFixed(pstats.elementImbalance, 3)});
        t.addRow({"shared nodes",
                  common::formatCount(pstats.sharedNodes)});
        t.addRow({"max node multiplicity",
                  std::to_string(pstats.maxNodeMultiplicity)});
        t.addRow({"F (flops/PE, max)",
                  common::formatCount(summary.flopsMax)});
        t.addRow({"C_max (words)",
                  common::formatCount(summary.wordsMax)});
        t.addRow({"B_max (blocks)",
                  common::formatCount(summary.blocksMax)});
        t.addRow({"M_avg (words)",
                  common::formatFixed(summary.messageSizeAvg, 0)});
        t.addRow({"F/C_max",
                  common::formatFixed(summary.flopsPerWord, 1)});
        t.addRow({"beta", common::formatFixed(summary.beta, 3)});
        t.print(std::cout);

        // --- 4. Emit artifacts. ---
        if (args.has("out")) {
            const std::string prefix = args.get("out");
            mesh::writeMesh(m, prefix);
            partition::writePartition(part, prefix + ".part");
            std::cout << "\nwrote " << prefix << ".node, " << prefix
                      << ".ele, " << prefix << ".part\n";
        }
    } catch (const common::FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
