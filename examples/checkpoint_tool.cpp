/**
 * @file
 * Checkpoint inspection and corruption harness (DESIGN.md §11).  Runs a
 * small deterministic scenario, checkpoints it through the real engine
 * hook, then either proves the round trip (--mode roundtrip) or damages
 * the file in one precisely targeted way and attempts to load it — the
 * loader must refuse each corruption class with its own FatalError
 * message, which the resilience rejection ctests match textually.
 *
 * Usage: checkpoint_tool --mode MODE [--dir DIR]
 *
 * Modes: roundtrip (exit 0), truncate, magic, version, bitflip-meta,
 * bitflip-u, bitflip-uprev, bitflip-stat, bitflip-rprt, trailing,
 * fingerprint (each exits 1 with a distinct "fatal: ..." line).
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/atomic_file.h"
#include "common/error.h"
#include "mesh/generator.h"
#include "mesh/soil_model.h"
#include "quake/simulation.h"
#include "resilience/checkpoint.h"

namespace
{

using namespace quake;

/** The fixed scenario every mode shares: tiny lattice, short run. */
sim::SimulationConfig
scenarioConfig()
{
    sim::SimulationConfig config;
    // A duration long enough that the 12-step cap is the binding limit
    // regardless of the lattice's stable dt.
    config.durationSeconds = 1000.0;
    config.maxSteps = 12;
    config.sampleInterval = 3;
    config.numPes = 2;
    config.smvpThreads = 2;
    return config;
}

/** Run the scenario, capturing the checkpoint the hook takes at step 6. */
resilience::Checkpoint
makeCheckpoint(const mesh::TetMesh &mesh, const mesh::SoilModel &model)
{
    const sim::SimulationConfig config = scenarioConfig();
    sim::SimulationEngine engine =
        sim::makeSimulationEngine(mesh, model, config);
    sim::SimulationReport report;
    report.dt = engine.dt;

    resilience::Checkpoint last;
    engine.stepper->checkpointEvery(
        6, [&](const sim::ExplicitTimeStepper &st) {
            if (last.state.steps != 0)
                return; // keep the mid-run snapshot, not the final one
            last.fingerprint = engine.fingerprint;
            last.dt = engine.dt;
            last.plannedSteps = engine.plannedSteps;
            st.saveState(last.state);
            last.reportPeak = std::max(report.peakDisplacement,
                                       st.peakDisplacement());
            last.samples = report.samples;
            if (config.sampleInterval > 0 &&
                st.stepCount() % config.sampleInterval == 0)
                last.samples.push_back(sim::FieldSample{
                    st.time(), st.peakDisplacement(),
                    st.kineticEnergy()});
        });
    sim::advanceSimulation(engine, config, report);
    QUAKE_EXPECT(last.state.steps == 6,
                 "scenario produced no checkpoint at step 6");
    return last;
}

/** Byte offset of the first payload byte of the tagged section. */
std::size_t
payloadOffset(const std::vector<std::uint8_t> &bytes, std::uint32_t tag)
{
    std::size_t pos = 8 + 4; // magic + version
    while (pos + 20 <= bytes.size()) {
        std::uint32_t t = 0;
        std::uint64_t len = 0;
        std::memcpy(&t, bytes.data() + pos, sizeof(t));
        std::memcpy(&len, bytes.data() + pos + 4, sizeof(len));
        if (t == tag)
            return pos + 20;
        pos += 20 + len;
    }
    QUAKE_PANIC("section not found in serialized checkpoint");
}

int
run(int argc, char **argv)
{
    const common::Args args(argc, argv);
    const std::string mode = args.get("mode", "roundtrip");
    const std::string dir = args.get("dir", "/tmp");
    const std::string path = dir + "/checkpoint_tool_" + mode + ".ckpt";

    const mesh::Aabb box{{0, 0, 0}, {4.0, 4.0, 2.0}};
    const mesh::UniformModel model(box, 1.0);
    const mesh::TetMesh mesh = mesh::buildKuhnLattice(box, 2, 2, 2);

    const resilience::Checkpoint ckpt = makeCheckpoint(mesh, model);
    std::vector<std::uint8_t> bytes =
        resilience::serializeCheckpoint(ckpt);

    if (mode == "roundtrip") {
        resilience::writeCheckpoint(path, ckpt);
        const resilience::Checkpoint back =
            resilience::readCheckpoint(path);
        QUAKE_EXPECT(resilience::stateFingerprint(back) ==
                         resilience::stateFingerprint(ckpt),
                     "round trip changed the state fingerprint");
        QUAKE_EXPECT(back.state.u == ckpt.state.u &&
                         back.state.up == ckpt.state.up &&
                         back.state.steps == ckpt.state.steps,
                     "round trip changed the integrator state");
        std::cout << "roundtrip ok: " << bytes.size() << " bytes, step "
                  << back.state.steps << ", state fingerprint 0x"
                  << std::hex << resilience::stateFingerprint(back)
                  << std::dec << "\n";
        std::remove(path.c_str());
        return 0;
    }

    if (mode == "fingerprint") {
        // A checkpoint from a *different* scenario config: same DOF
        // count, different damping — only the fingerprint guard can
        // tell them apart.
        sim::SimulationConfig other = scenarioConfig();
        other.dampingA0 = 0.25;
        sim::SimulationEngine engine =
            sim::makeSimulationEngine(mesh, model, other);
        resilience::requireCompatible(ckpt, engine); // throws
        QUAKE_PANIC("fingerprint mismatch was not refused");
    }

    // File-level corruptions: damage the serialized image, write it,
    // and try to load it back — readCheckpoint must throw.
    if (mode == "truncate") {
        bytes.resize(bytes.size() / 2);
    } else if (mode == "magic") {
        bytes[0] ^= 0xFF;
    } else if (mode == "version") {
        bytes[8] += 1; // little-endian low byte of the version u32
    } else if (mode == "bitflip-meta") {
        bytes[payloadOffset(bytes, 0x4d455441)] ^= 0x01;
    } else if (mode == "bitflip-u") {
        bytes[payloadOffset(bytes, 0x55435552) + 9] ^= 0x10;
    } else if (mode == "bitflip-uprev") {
        bytes[payloadOffset(bytes, 0x55505256) + 9] ^= 0x10;
    } else if (mode == "bitflip-stat") {
        bytes[payloadOffset(bytes, 0x53544154)] ^= 0x20;
    } else if (mode == "bitflip-rprt") {
        bytes[payloadOffset(bytes, 0x52505254)] ^= 0x20;
    } else if (mode == "trailing") {
        bytes.push_back(0xAB);
    } else {
        QUAKE_EXPECT(false, "unknown --mode " << mode);
    }
    common::writeFileAtomic(path, bytes.data(), bytes.size());
    const resilience::Checkpoint loaded =
        resilience::readCheckpoint(path); // must throw
    std::remove(path.c_str());
    QUAKE_PANIC("corrupted checkpoint (mode " + mode +
                ") was accepted at step " +
                std::to_string(loaded.state.steps));
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const quake::common::FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
