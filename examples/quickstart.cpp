/**
 * @file
 * Quickstart: the five-minute tour of the library.
 *
 * Generates a small synthetic San Fernando mesh, partitions it with
 * recursive geometric bisection, characterizes the parallel SMVP
 * (the paper's F, C_max, B_max, ...), and asks the performance models
 * what a communication system must deliver to run it at 90% efficiency
 * on 200-MFLOPS processing elements.
 *
 * Usage: quickstart [--mesh sf20|sf10|sf5] [--pes N]
 */

#include <iostream>

#include "common/args.h"
#include "common/table.h"
#include "core/perf_model.h"
#include "core/requirements.h"
#include "mesh/generator.h"
#include "parallel/characterize.h"
#include "partition/geometric_bisection.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    const common::Args args(argc, argv);
    const mesh::SfClass cls =
        mesh::sfClassFromName(args.get("mesh", "sf20"));
    const int pes = static_cast<int>(args.getInt("pes", 16));

    // 1. Generate a graded unstructured tetrahedral mesh of the basin.
    std::cout << "Generating synthetic " << mesh::sfClassName(cls)
              << " mesh...\n";
    const mesh::GeneratedMesh generated = mesh::generateSfMesh(cls);
    const mesh::MeshStats stats = generated.mesh.computeStats();
    std::cout << "  nodes: " << common::formatCount(stats.numNodes)
              << ", elements: " << common::formatCount(stats.numElements)
              << ", edges: " << common::formatCount(stats.numEdges)
              << ", avg degree: " << common::formatFixed(stats.avgDegree, 1)
              << "\n\n";

    // 2. Partition into one subdomain per PE.
    const partition::GeometricBisection partitioner;
    const partition::Partition part =
        partitioner.partition(generated.mesh, pes);

    // 3. Build the communication schedule and characterize the SMVP.
    const parallel::DistributedProblem problem =
        parallel::distributeTopology(generated.mesh, part);
    const core::SmvpCharacterization ch = parallel::characterize(
        problem, mesh::sfClassName(cls) + "/" + std::to_string(pes));
    const core::CharacterizationSummary summary = core::summarize(ch);

    std::cout << "SMVP characterization (" << ch.name << "):\n";
    common::Table properties({"property", "value"});
    properties.addRow({"F (flops/PE)",
                       common::formatCount(summary.flopsMax)});
    properties.addRow({"C_max (words/PE)",
                       common::formatCount(summary.wordsMax)});
    properties.addRow({"B_max (blocks/PE)",
                       common::formatCount(summary.blocksMax)});
    properties.addRow({"M_avg (words)",
                       common::formatFixed(summary.messageSizeAvg, 0)});
    properties.addRow({"F/C_max",
                       common::formatFixed(summary.flopsPerWord, 1)});
    properties.addRow({"beta bound",
                       common::formatFixed(summary.beta, 2)});
    properties.print(std::cout);

    // 4. Ask Equation (1)/(2) what the network must deliver.
    const core::SmvpShape shape = core::SmvpShape::fromSummary(summary);
    const core::Headline h = core::computeHeadline(shape, 200.0, 0.9);
    std::cout << "\nTo run this SMVP at 90% efficiency on 200-MFLOPS "
                 "PEs, the network needs:\n"
              << "  sustained bandwidth per PE : "
              << common::formatBandwidth(h.sustainedBandwidthBytes) << "\n"
              << "  burst bandwidth (half-bw)  : "
              << common::formatBandwidth(h.halfPoint.burstBandwidthBytes)
              << "\n"
              << "  block latency  (half-bw)   : "
              << common::formatTime(h.halfPoint.latency) << "\n"
              << "  latency bound @ inf burst  : "
              << common::formatTime(h.infiniteBurstLatency) << "\n";
    return 0;
}
