/**
 * @file
 * Capacity planner: the paper's models turned into an engineering tool.
 *
 * Given a machine description (sustained MFLOPS, block latency, burst
 * bandwidth), predict the efficiency of every Quake SMVP instance from
 * the paper's Figure 7, show whether latency or bandwidth dominates the
 * communication phase, and say what to fix first.
 *
 * Usage: capacity_planner [--mflops F] [--latency-us L] [--burst-mbs B]
 *                         [--mesh sf10|sf5|sf2|sf1] [--block-words W]
 *                         [--shards S] [--pin] [--topology SPEC]
 *                         [--faults [--drop-rate R] [--seed S]]
 *                         [--deadline-ms D [--retry-budget N]]
 *
 * Defaults describe the Cray T3E as measured in the paper.  With
 * --faults, a synthetic irregular exchange is executed through the
 * reliable protocol at the given drop rate and the Equation (1)/(2)
 * targets are deflated by the measured phase inflation.  With
 * --deadline-ms, the planner checks a per-step watchdog deadline SLO
 * against the Eq. (1) model prediction for the worst instance — the
 * same model-informed timeout the resilience supervisor derives — and
 * says whether the budgeted retries can absorb a stall.
 *
 * With --shards / --topology, the planner prints the normalized
 * shard x thread execution topology the SMVP engine would run under
 * (DESIGN.md §13) — "auto" shows what NUMA detection sees on this
 * host — so a placement can be sanity-checked before committing to a
 * long run.  --pin marks the printed topology as pinned.
 */

#include <iostream>

#include "common/args.h"
#include "common/engine_cli.h"
#include "common/error.h"
#include "common/table.h"
#include "core/requirements.h"
#include "core/reference.h"
#include "mesh/generator.h"
#include "parallel/event_sim.h"
#include "parallel/machine.h"
#include "parallel/phase_simulator.h"
#include "parallel/reliable_exchange.h"
#include "parallel/topology.h"
#include "parallel/worker_pool.h"
#include "partition/geometric_bisection.h"
#include "resilience/supervisor.h"

namespace
{

int
run(int argc, char **argv)
{
    using namespace quake;
    namespace ref = core::reference;
    const common::Args args(argc, argv);
    const common::EngineCliOptions cli = common::parseEngineCli(args);

    // customMachine validates the hardware description (positive rate,
    // non-negative latency, positive bandwidth); the fault spec, when
    // requested, is validated before any table is printed.
    const parallel::MachineModel machine = parallel::customMachine(
        "planned", args.getDouble("mflops", 70.0),
        args.getDouble("latency-us", 22.0) * 1e-6,
        args.getDouble("burst-mbs", 145.0) * 1e6);
    const ref::PaperMesh mesh =
        ref::paperMeshFromName(args.get("mesh", "sf2"));
    const long block_words = args.getInt("block-words", 0); // 0 = maximal
    QUAKE_EXPECT(block_words >= 0,
                 "--block-words must be >= 0, got " << block_words);
    parallel::FaultSpec fault_spec;
    if (cli.faults) {
        fault_spec.seed = cli.faultSeed;
        fault_spec.dropProbability = cli.dropRate;
        fault_spec.ackDropProbability = fault_spec.dropProbability;
        fault_spec.validate();
    }

    // Deadline/SLO and topology arguments were validated by
    // parseEngineCli before any table is printed; --topology parses
    // (or FatalErrors) here, still ahead of output.
    const double deadline_ms = cli.hasDeadlineMs ? cli.deadlineMs : 0.0;
    const long retry_budget = cli.retryBudget;
    parallel::Topology topo;
    topo.numShards = cli.shards;
    topo.pin = cli.pin;
    if (!cli.topologySpec.empty())
        topo = parallel::Topology::parse(cli.topologySpec, cli.pin);
    topo.validate();

    std::cout << "Machine: " << common::formatFixed(machine.mflops(), 0)
              << " MFLOPS sustained, T_l = "
              << common::formatTime(machine.tl) << ", burst = "
              << common::formatBandwidth(machine.burstBandwidthBytes())
              << (block_words > 0 ? " (" + std::to_string(block_words) +
                                        "-word blocks)"
                                  : " (maximally aggregated blocks)")
              << "\n\n";

    if (!cli.topologySpec.empty() || cli.shards > 1 || cli.pin) {
        // What the engine would run under (DESIGN.md §13): shard count,
        // threads per shard (0 = even split of the visible CPUs), and
        // any detected per-shard CPU placement.
        std::cout << "Execution topology: " << topo.numShards
                  << " shard(s) x "
                  << (topo.threadsPerShard > 0
                          ? std::to_string(topo.threadsPerShard)
                          : std::string("auto"))
                  << " thread(s)" << (topo.pin ? ", pinned" : "")
                  << " (" << parallel::WorkerPool::hardwareThreads()
                  << " CPUs visible to this process)\n";
        for (std::size_t s = 0; s < topo.shardCpus.size(); ++s) {
            std::cout << "  shard " << s << " CPUs:";
            for (int c : topo.shardCpus[s])
                std::cout << " " << c;
            std::cout << "\n";
        }
        std::cout << "\n";
    }

    common::Table t({"instance", "F/C_max", "T_comp", "T_comm",
                     "efficiency", "latency share", "advice"});
    for (int subdomains : ref::kSubdomainCounts) {
        core::SmvpShape shape = ref::shapeFor(mesh, subdomains);
        if (block_words > 0)
            shape = core::withFixedBlockSize(
                shape, static_cast<double>(block_words));

        const double t_comp = shape.flops * machine.tf;
        const double lat_time = shape.blocksMax * machine.tl;
        const double burst_time = shape.wordsMax * machine.tw;
        const double t_comm = lat_time + burst_time;
        const double eff = t_comp / (t_comp + t_comm);
        const double lat_share = lat_time / t_comm;

        const char *advice =
            eff > 0.9 ? "network is adequate"
            : (lat_share > 0.67
                   ? "reduce block latency"
                   : (lat_share < 0.33 ? "raise burst bandwidth"
                                       : "improve both equally"));

        t.addRow({ref::paperMeshName(mesh) + "/" +
                      std::to_string(subdomains),
                  common::formatFixed(shape.flops / shape.wordsMax, 0),
                  common::formatTime(t_comp), common::formatTime(t_comm),
                  common::formatFixed(eff, 3),
                  common::formatFixed(100.0 * lat_share, 0) + "%",
                  advice});
    }
    t.print(std::cout);

    std::cout << "\nTargets from Equation (1) for this machine at 90% "
                 "efficiency (worst instance, "
              << ref::paperMeshName(mesh) << "/128):\n";
    const core::SmvpShape worst = ref::shapeFor(mesh, 128);
    const core::Headline h =
        core::computeHeadline(worst, machine.mflops(), 0.9);
    std::cout << "  sustained bandwidth : "
              << common::formatBandwidth(h.sustainedBandwidthBytes) << "\n"
              << "  half-bw burst       : "
              << common::formatBandwidth(h.halfPoint.burstBandwidthBytes)
              << "\n"
              << "  half-bw latency     : "
              << common::formatTime(h.halfPoint.latency) << "\n";

    if (cli.hasDeadlineMs) {
        // The watchdog deadline the resilience supervisor would derive
        // from Eq. (1) for this machine's worst instance, vs the SLO.
        const double tc =
            core::tcFromBlocks(worst, machine.tl, machine.tw);
        const std::chrono::milliseconds model =
            resilience::modelStepDeadline(worst, machine.tf, tc, 3.0);
        const bool feasible =
            deadline_ms >= static_cast<double>(model.count());
        std::cout << "\nDeadline SLO check ("
                  << ref::paperMeshName(mesh) << "/128, "
                  << retry_budget << " attempt budget):\n"
                  << "  model step deadline : " << model.count()
                  << " ms (3x Eq. (1) prediction)\n"
                  << "  requested deadline  : "
                  << common::formatFixed(deadline_ms, 1) << " ms — "
                  << (feasible
                          ? "feasible; stalls leave headroom for "
                                + std::to_string(retry_budget - 1) +
                                " retr" +
                                (retry_budget == 2 ? std::string("y")
                                                   : std::string("ies"))
                          : "INFEASIBLE: tighter than the model predicts "
                            "a healthy step takes; the watchdog would "
                            "cancel healthy runs")
                  << "\n";
    }

    if (cli.faults) {
        // Execute a synthetic irregular exchange (Kuhn lattice, 64
        // subdomains) through the ack/retransmit protocol on the
        // planned machine, then shrink the hardware budget by the
        // measured phase inflation.
        const double rate = fault_spec.dropProbability;
        const mesh::TetMesh lattice = mesh::buildKuhnLattice(
            mesh::Aabb{{0, 0, 0}, {1, 1, 1}}, 10, 10, 10);
        const partition::GeometricBisection partitioner;
        const parallel::CommSchedule schedule =
            parallel::CommSchedule::build(
                lattice, partitioner.partition(lattice, 64));

        const parallel::EventSimResult baseline =
            parallel::simulateExchange(schedule, machine);
        parallel::ReliableExchangeOptions reliable;
        reliable.faults = fault_spec;
        const parallel::ReliableExchangeResult r =
            parallel::simulateReliableExchange(schedule, machine,
                                               reliable);
        const double inflation = baseline.tComm > 0
                                     ? r.tComm / baseline.tComm
                                     : 1.0;

        const double tf = 1.0 / (machine.mflops() * 1e6);
        const double tc_target =
            core::requiredTc(worst, 0.9, tf) / inflation;
        const core::HalfBandwidthPoint faulty =
            core::halfBandwidthPoint(worst, tc_target);
        std::cout
            << "\nWith message drop rate "
            << common::formatFixed(100.0 * rate, 2)
            << "% (measured protocol inflation "
            << common::formatFixed(inflation, 2) << "x, "
            << r.retransmissions << " retransmissions, "
            << r.lostExchanges.size() << " exchanges lost):\n"
            << "  half-bw burst       : "
            << common::formatBandwidth(faulty.burstBandwidthBytes)
            << "\n"
            << "  half-bw latency     : "
            << common::formatTime(faulty.latency) << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const quake::common::FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
