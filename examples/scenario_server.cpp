/**
 * @file
 * The serving mode (DESIGN.md §14): run a batch of multi-tenant
 * earthquake scenarios through the ScenarioService — shared engine,
 * content-addressed prefix cache, admission control, per-tenant
 * accounting — and report scenarios/sec next to the cache economics.
 *
 * Usage: scenario_server [--scenarios N] [--tenants T] [--executors E]
 *                        [--mesh sf20|sf10|...] [--scale S] [--pes P]
 *                        [--max-steps N] [--duration s]
 *                        [--threads N] [--span-threshold N]
 *                        [--cache-mb M] [--queue N] [--results DIR]
 *                        [--mflops F [--tc-ns W]] [--deadline-ms D]
 *                        [--shards S] [--pin] [--topology SPEC]
 *                        [--faults [--drop-rate R] [--seed S]]
 *                        [--metrics path] [--check]
 *
 * The workload cycles N scenario requests over T tenants; all share
 * the same mesh/partition/assembly prefix (distinct sources and
 * labels), so after the first request the cache serves every prefix
 * stage and the service spends its time stepping, not assembling.
 * --cache-mb 0 turns the cache off (every request rebuilds — the cold
 * regime the service benchmark compares against).  --topology becomes
 * each request's topology hint; --deadline-ms arms both model-based
 * admission (with --mflops) and the runtime SLO observer.  --check
 * reruns the first scenario standalone and fails (exit 1) unless the
 * service result is bitwise identical — the serving-mode contract.
 */

#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/engine_cli.h"
#include "common/error.h"
#include "common/table.h"
#include "mesh/generator.h"
#include "service/service.h"

namespace
{

int
run(int argc, char **argv)
{
    using namespace quake;
    const common::Args args(argc, argv);
    const common::EngineCliOptions cli = common::parseEngineCli(args);

    const long scenarios = args.getInt("scenarios", 8);
    const long tenants = args.getInt("tenants", 2);
    QUAKE_EXPECT(scenarios >= 1,
                 "--scenarios must be >= 1, got " << scenarios);
    QUAKE_EXPECT(tenants >= 1,
                 "--tenants must be >= 1, got " << tenants);
    const long cache_mb = args.getInt("cache-mb", 256);
    QUAKE_EXPECT(cache_mb >= 0,
                 "--cache-mb must be >= 0, got " << cache_mb);

    service::ServiceOptions options;
    options.executors = static_cast<int>(args.getInt("executors", 2));
    options.totalThreads = static_cast<int>(args.getInt("threads", 0));
    options.spanThreshold =
        static_cast<int>(args.getInt("span-threshold", 8));
    options.cacheBytes =
        static_cast<std::size_t>(cache_mb) << 20;
    options.queueCapacity =
        static_cast<std::size_t>(args.getInt("queue", 64));
    options.modelMflops = args.getDouble("mflops", 0.0);
    options.modelTcSecondsPerWord = args.getDouble("tc-ns", 0.0) * 1e-9;
    options.resultDir = args.get("results");
    options.validate();

    // The request template: one problem class shared by the whole
    // batch (that sharing is what the prefix cache monetizes).
    service::ScenarioRequest base;
    base.meshSpec = mesh::MeshSpec::forClass(
        mesh::sfClassFromName(args.get("mesh", "sf20")),
        args.getDouble("scale", 1.5));
    base.numPes = static_cast<int>(args.getInt("pes", 1));
    base.durationSeconds = args.getDouble("duration", 10.0);
    base.maxSteps = args.getInt("max-steps", 40);
    base.topologyHint = cli.topologySpec;
    base.faults = cli.faults;
    base.faultDropRate = cli.dropRate;
    base.faultSeed = cli.faultSeed;
    if (cli.hasDeadlineMs)
        base.deadlineMs = cli.deadlineMs;

    service::ScenarioService svc(options);
    std::cout << "Scenario service: " << options.executors
              << " executor lane(s), " << svc.totalThreads()
              << " thread budget, cache " << cache_mb << " MB, queue "
              << options.queueCapacity << "\n"
              << "Workload: " << scenarios << " scenario(s) over "
              << tenants << " tenant(s), "
              << (base.numPes > 1
                      ? std::to_string(base.numPes) + " PEs"
                      : std::string("sequential"))
              << "\n\n";

    std::vector<std::future<service::ScenarioResult>> futures;
    futures.reserve(static_cast<std::size_t>(scenarios));
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < scenarios; ++i) {
        service::ScenarioRequest req = base;
        req.tenant = "tenant-" + std::to_string(i % tenants);
        req.label = "scenario-" + std::to_string(i);
        // Distinct sources per request: same prefix, different
        // trajectories — the shape of real multi-tenant traffic.
        req.wavelet.peakFrequencyHz = 0.25 + 0.05 * (i % 4);
        futures.push_back(svc.submit(std::move(req)));
    }

    long completed = 0, shed = 0, misses = 0;
    service::ScenarioResult first;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        service::ScenarioResult r = futures[i].get();
        if (i == 0)
            first = r;
        if (r.completed)
            ++completed;
        else if (r.deadlineMiss)
            ++misses;
        else
            ++shed;
        if (!r.error.empty())
            std::cout << "  [" << r.tenant << "/" << r.label << "] "
                      << r.error << "\n";
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    svc.shutdown();

    const service::PrefixCache::Stats cs = svc.cacheStats();
    std::cout << "Batch: " << completed << " completed, " << shed
              << " shed, " << misses << " deadline miss(es) in "
              << common::formatFixed(wall, 2) << " s  ("
              << common::formatFixed(
                     completed > 0 ? static_cast<double>(completed) /
                                         wall
                                   : 0.0,
                     2)
              << " scenarios/sec)\n"
              << "Prefix cache: " << cs.hits << " hit(s), "
              << cs.misses << " miss(es), " << cs.evictions
              << " eviction(s), "
              << common::formatFixed(
                     static_cast<double>(cs.bytes) / (1 << 20), 1)
              << " MB resident\n\n";

    common::Table t({"tenant", "submitted", "completed", "shed",
                     "deadline miss", "cache hit/miss", "step s"});
    for (const auto &[tenant, ts] : svc.allTenantStats())
        t.addRow({tenant, std::to_string(ts.submitted),
                  std::to_string(ts.completed),
                  std::to_string(ts.shed),
                  std::to_string(ts.deadlineMisses),
                  std::to_string(ts.cacheHits) + "/" +
                      std::to_string(ts.cacheMisses),
                  common::formatFixed(ts.stepSeconds, 2)});
    t.print(std::cout);

    if (!cli.metricsPath.empty()) {
        svc.writeTenantMetricsJson("scenario_server", cli.metricsPath);
    }

    if (args.has("check")) {
        // The serving-mode contract: the service answer for the first
        // scenario must be bitwise the standalone answer.
        service::ScenarioRequest req = base;
        req.tenant = "tenant-0";
        req.label = "scenario-0";
        req.wavelet.peakFrequencyHz = 0.25;
        const service::ScenarioResult solo =
            service::ScenarioService::runStandalone(req);
        const bool equal =
            first.completed &&
            first.stateFingerprint == solo.stateFingerprint &&
            first.engineFingerprint == solo.engineFingerprint;
        std::cout << "\nBitwise check vs standalone: "
                  << (equal ? "IDENTICAL" : "MISMATCH") << " (service 0x"
                  << std::hex << first.stateFingerprint
                  << ", standalone 0x" << solo.stateFingerprint
                  << std::dec << ")\n";
        if (!equal)
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const quake::common::FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
