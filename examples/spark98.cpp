/**
 * @file
 * Spark98 revisited: measure the sustained local-SMVP rate T_f^-1 on
 * this host for every kernel variant, the way §3.1 measured 30 ns on
 * the Cray T3D and 14 ns on the T3E.
 *
 * Usage: spark98 [--mesh sf20|sf10|sf5] [--reps N]
 */

#include <iostream>

#include "common/args.h"
#include "common/table.h"
#include "core/reference.h"
#include "mesh/generator.h"
#include "spark/kernels.h"

int
main(int argc, char **argv)
{
    using namespace quake;
    const common::Args args(argc, argv);
    const mesh::SfClass cls =
        mesh::sfClassFromName(args.get("mesh", "sf10"));
    const int reps = static_cast<int>(args.getInt("reps", 20));

    std::cout << "Assembling " << mesh::sfClassName(cls)
              << " stiffness in all formats...\n";
    const mesh::LayeredBasinModel model;
    const mesh::GeneratedMesh generated = mesh::generateSfMesh(cls);
    const spark::KernelSuite suite(generated.mesh, model);

    std::cout << "  DOFs: " << common::formatCount(suite.dof())
              << ", scalar nonzeros: " << common::formatCount(suite.nnz())
              << ", flops per SMVP: "
              << common::formatCount(2 * suite.nnz()) << "\n\n";

    common::Table t({"kernel", "s/SMVP", "T_f", "sustained MFLOPS"});
    for (spark::Kernel kernel : spark::kAllKernels) {
        const spark::KernelTiming timing = suite.measure(kernel, reps);
        t.addRow({spark::kernelName(kernel),
                  common::formatTime(timing.secondsPerSmvp),
                  common::formatTime(timing.tf),
                  common::formatFixed(timing.mflops, 1)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference points (local Quake SMVP):\n"
              << "  Cray T3D (150 MHz 21064): T_f = "
              << common::formatTime(core::reference::kCrayT3dTf)
              << "  (~33 MFLOPS)\n"
              << "  Cray T3E (300 MHz 21164): T_f = "
              << common::formatTime(core::reference::kCrayT3eTf)
              << "  (~70 MFLOPS, 12% of 600 MFLOPS peak)\n";
    return 0;
}
