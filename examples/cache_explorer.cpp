/**
 * @file
 * Explore the paper's memory-system story (§3.1, §4.3) interactively:
 * assemble a stiffness matrix from a synthetic mesh, replay its SMVP
 * address stream — in any of the three storage formats — through a
 * configurable multi-level MESI hierarchy, and print the per-PE miss
 * taxonomy, coherence traffic, modeled DRAM bytes, and the predicted
 * effective T_f.  With --grid the T_f is fed straight into Equation (1)
 * to show what the modeled memory system demands of the network.
 *
 * Usage:
 *   cache_explorer --mesh sf20 --format sym --pes 4 --era modern
 *   cache_explorer --mesh sf10 --format bcsr3 --era 1998 --grid
 *   cache_explorer --era 1998 --line-bytes 64 --dram-ns 70   # §4.3 sweep
 *
 * Overrides (--line-bytes, --l1-kb, --l2-kb, --llc-mb, --dram-ns,
 * --coherence-ns, --peak-mflops) patch the chosen era's preset and are
 * validated with a distinct diagnostic per field; bad values die with
 * "fatal: ..." before any mesh is generated.
 */

#include <iostream>
#include <sstream>
#include <string>

#include "arch/cosim.h"
#include "common/args.h"
#include "common/error.h"
#include "common/table.h"
#include "core/requirements.h"
#include "mesh/generator.h"
#include "mesh/soil_model.h"
#include "parallel/characterize.h"
#include "parallel/topology.h"
#include "partition/geometric_bisection.h"
#include "sparse/assembly.h"

namespace
{

using namespace quake;

arch::TraceFormat
formatFromName(const std::string &name)
{
    if (name == "bcsr3")
        return arch::TraceFormat::kBcsr3;
    if (name == "sym")
        return arch::TraceFormat::kSymBcsr3;
    if (name == "ell")
        return arch::TraceFormat::kSlicedEll3;
    common::fatal("unknown format '" + name +
                  "' (expected bcsr3, sym, or ell)");
}

std::vector<double>
parseList(const std::string &text)
{
    std::vector<double> values;
    std::istringstream iss(text);
    std::string item;
    while (std::getline(iss, item, ','))
        values.push_back(std::stod(item));
    return values;
}

std::string
pct(double num, double den)
{
    return common::formatFixed(den > 0 ? 100.0 * num / den : 0.0, 2) +
           "%";
}

} // namespace

int
main(int argc, char **argv)
{
    const common::Args args(argc, argv);
    try {
        // ---- hierarchy: era preset + per-field overrides ------------
        const int pes = static_cast<int>(args.getInt("pes", 4));
        const std::string era = args.get("era", "1998");
        arch::MesiHierarchyConfig config;
        double peak_mflops = 0.0;
        if (era == "1998") {
            config = arch::MesiHierarchyConfig::t3e1998(pes);
            peak_mflops = 600.0;
        } else if (era == "modern") {
            config = arch::MesiHierarchyConfig::nehalemCmp(pes);
            peak_mflops = 11720.0;
        } else {
            common::fatal("unknown era '" + era +
                          "' (expected 1998 or modern)");
        }
        if (args.has("line-bytes")) {
            const int line =
                static_cast<int>(args.getInt("line-bytes", 0));
            config.l1.lineBytes = line;
            config.l2.lineBytes = line;
            config.llc.lineBytes = line;
        }
        if (args.has("l1-kb"))
            config.l1.sizeBytes = args.getInt("l1-kb", 0) * 1024;
        if (args.has("l2-kb"))
            config.l2.sizeBytes = args.getInt("l2-kb", 0) * 1024;
        if (args.has("llc-mb"))
            config.llc.sizeBytes =
                args.getInt("llc-mb", 0) * 1024 * 1024;
        if (args.has("dram-ns"))
            config.dramSeconds = args.getDouble("dram-ns", 0.0) * 1e-9;
        if (args.has("coherence-ns"))
            config.coherenceSeconds =
                args.getDouble("coherence-ns", 0.0) * 1e-9;
        peak_mflops = args.getDouble("peak-mflops", peak_mflops);
        config.validate();

        arch::CosimOptions opt;
        opt.format = formatFromName(args.get("format", "sym"));
        opt.numPes = pes;
        opt.iterations =
            static_cast<int>(args.getInt("iterations", 2));
        opt.sliceHeight = args.getInt("slice", 8);
        opt.peakFlopsPerSecond = peak_mflops * 1e6;

        // ---- the instance -------------------------------------------
        const mesh::SfClass cls =
            mesh::sfClassFromName(args.get("mesh", "sf20"));
        const mesh::GeneratedMesh generated =
            mesh::generateSfMesh(cls, args.getDouble("scale", 1.0));
        const mesh::LayeredBasinModel model;
        const sparse::Bcsr3Matrix k =
            sparse::assembleStiffness(generated.mesh, model);

        std::cout << "cache_explorer: " << mesh::sfClassName(cls)
                  << ", " << k.numRows() << " scalar rows, " << k.nnz()
                  << " nnz\n"
                  << "hierarchy: era " << era << ", " << pes
                  << " PE(s), line " << config.l1.lineBytes
                  << " B, L1 " << config.l1.sizeBytes / 1024
                  << " KB, L2 " << config.l2.sizeBytes / 1024 << " KB, "
                  << (config.hasLlc
                          ? "LLC " +
                                std::to_string(config.llc.sizeBytes /
                                               (1024 * 1024)) +
                                " MB"
                          : std::string("no shared LLC"))
                  << ", DRAM "
                  << common::formatTime(config.dramSeconds) << "\n"
                  << "replay: format "
                  << arch::traceFormatName(opt.format) << ", "
                  << opt.iterations
                  << " ping-ponged SMVP iteration(s)\n\n";

        const arch::CosimResult r = arch::runCosim(k, config, opt);
        const arch::MesiStats &s = r.stats;

        common::Table t({"PE", "accesses", "L1 miss", "priv miss",
                         "cold", "coherence", "cap/conf", "true:false",
                         "upgrades", "seconds"});
        for (std::size_t p = 0; p < s.pe.size(); ++p) {
            const arch::PeStats &ps = s.pe[p];
            t.addRow({std::to_string(p),
                      common::formatCount(ps.accesses),
                      pct(static_cast<double>(ps.l1Misses),
                          static_cast<double>(ps.accesses)),
                      pct(static_cast<double>(ps.l2Misses),
                          static_cast<double>(ps.accesses)),
                      common::formatCount(ps.coldMisses),
                      common::formatCount(ps.coherenceMisses),
                      common::formatCount(ps.capacityMisses),
                      std::to_string(ps.trueSharingMisses) + ":" +
                          std::to_string(ps.falseSharingMisses),
                      common::formatCount(ps.upgrades),
                      common::formatTime(ps.seconds)});
        }
        t.print(std::cout);

        std::cout << "\nshared level: "
                  << common::formatCount(s.llcAccesses)
                  << " LLC accesses, " << common::formatCount(s.llcMisses)
                  << " misses, "
                  << common::formatFixed(s.bytesFromDram / 1e6, 1)
                  << " MB from DRAM\n"
                  << "effective T_f "
                  << common::formatTime(r.tfSeconds) << "  ("
                  << common::formatFixed(r.mflops, 0)
                  << " MFLOPS aggregate, "
                  << common::formatFixed(100.0 * r.fractionOfPeak, 1)
                  << "% of " << common::formatFixed(peak_mflops, 0)
                  << " MFLOPS/PE peak)\n";

        // ---- Equation (1) from the co-simulated T_f -----------------
        if (args.has("grid")) {
            const partition::GeometricBisection partitioner;
            const parallel::DistributedProblem problem =
                parallel::distributeTopology(
                    generated.mesh,
                    partitioner.partition(generated.mesh, pes));
            const core::SmvpShape shape = core::SmvpShape::fromSummary(
                core::summarize(parallel::characterize(
                    problem, mesh::sfClassName(cls) + "/" +
                                 std::to_string(pes))));
            const std::vector<double> effs =
                args.has("eff") ? parseList(args.get("eff"))
                                : std::vector<double>{0.5, 0.8, 0.9};
            common::Table req(
                {"E", "T_c", "sustained bandwidth/PE"});
            for (const core::RequirementRow &row :
                 core::requirementSweepFromTf(shape, r.tfSeconds,
                                              effs))
                req.addRow({common::formatFixed(row.point.efficiency, 2),
                            common::formatTime(row.tc),
                            common::formatBandwidth(
                                row.sustainedBandwidthBytes)});
            std::cout << "\nEquation (1) network requirements at the "
                         "co-simulated T_f:\n";
            req.print(std::cout);
        }
    } catch (const common::FatalError &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
