# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--mesh" "sf20" "--pes" "4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_earthquake_sim "/root/repo/build/examples/earthquake_sim" "--mesh" "sf20" "--max-steps" "40" "--scale" "1.5")
set_tests_properties(example_earthquake_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_earthquake_sim_parallel "/root/repo/build/examples/earthquake_sim" "--mesh" "sf20" "--max-steps" "20" "--pes" "4" "--scale" "1.5" "--damping" "0.05")
set_tests_properties(example_earthquake_sim_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner" "--mflops" "200" "--latency-us" "2" "--burst-mbs" "600")
set_tests_properties(example_capacity_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner_blocks "/root/repo/build/examples/capacity_planner" "--mesh" "sf1" "--block-words" "4")
set_tests_properties(example_capacity_planner_blocks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spark98 "/root/repo/build/examples/spark98" "--mesh" "sf20" "--reps" "2")
set_tests_properties(example_spark98 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mesh_tool "/root/repo/build/examples/mesh_tool" "generate" "--mesh" "sf20" "--scale" "2.0")
set_tests_properties(example_mesh_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_archimedes "/root/repo/build/examples/archimedes" "--mesh" "sf20" "--pes" "6" "--method" "coordinate" "--refine")
set_tests_properties(example_archimedes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_paper "/root/repo/build/examples/analyze" "--paper" "sf2" "--pes" "128")
set_tests_properties(example_analyze_paper PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;38;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_synthetic "/root/repo/build/examples/analyze" "--mesh" "sf20" "--pes" "8" "--mflops" "200" "--eff" "0.9")
set_tests_properties(example_analyze_synthetic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;40;add_test;/root/repo/examples/CMakeLists.txt;0;")
