# Empty compiler generated dependencies file for archimedes.
# This may be replaced when dependencies are built.
