file(REMOVE_RECURSE
  "CMakeFiles/archimedes.dir/archimedes.cpp.o"
  "CMakeFiles/archimedes.dir/archimedes.cpp.o.d"
  "archimedes"
  "archimedes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archimedes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
