file(REMOVE_RECURSE
  "CMakeFiles/earthquake_sim.dir/earthquake_sim.cpp.o"
  "CMakeFiles/earthquake_sim.dir/earthquake_sim.cpp.o.d"
  "earthquake_sim"
  "earthquake_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthquake_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
