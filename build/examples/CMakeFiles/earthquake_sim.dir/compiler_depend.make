# Empty compiler generated dependencies file for earthquake_sim.
# This may be replaced when dependencies are built.
