file(REMOVE_RECURSE
  "CMakeFiles/analyze.dir/analyze.cpp.o"
  "CMakeFiles/analyze.dir/analyze.cpp.o.d"
  "analyze"
  "analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
