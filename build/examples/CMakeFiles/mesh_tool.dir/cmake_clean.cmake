file(REMOVE_RECURSE
  "CMakeFiles/mesh_tool.dir/mesh_tool.cpp.o"
  "CMakeFiles/mesh_tool.dir/mesh_tool.cpp.o.d"
  "mesh_tool"
  "mesh_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
