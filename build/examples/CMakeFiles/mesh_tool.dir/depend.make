# Empty dependencies file for mesh_tool.
# This may be replaced when dependencies are built.
