# Empty dependencies file for spark98.
# This may be replaced when dependencies are built.
