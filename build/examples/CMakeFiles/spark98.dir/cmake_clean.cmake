file(REMOVE_RECURSE
  "CMakeFiles/spark98.dir/spark98.cpp.o"
  "CMakeFiles/spark98.dir/spark98.cpp.o.d"
  "spark98"
  "spark98.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark98.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
