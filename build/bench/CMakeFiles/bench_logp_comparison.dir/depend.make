# Empty dependencies file for bench_logp_comparison.
# This may be replaced when dependencies are built.
