file(REMOVE_RECURSE
  "CMakeFiles/bench_logp_comparison.dir/bench_logp_comparison.cc.o"
  "CMakeFiles/bench_logp_comparison.dir/bench_logp_comparison.cc.o.d"
  "bench_logp_comparison"
  "bench_logp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
