# Empty dependencies file for bench_param_fit.
# This may be replaced when dependencies are built.
