file(REMOVE_RECURSE
  "CMakeFiles/bench_param_fit.dir/bench_param_fit.cc.o"
  "CMakeFiles/bench_param_fit.dir/bench_param_fit.cc.o.d"
  "bench_param_fit"
  "bench_param_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
