# Empty compiler generated dependencies file for bench_reorder_ablation.
# This may be replaced when dependencies are built.
