file(REMOVE_RECURSE
  "CMakeFiles/bench_reorder_ablation.dir/bench_reorder_ablation.cc.o"
  "CMakeFiles/bench_reorder_ablation.dir/bench_reorder_ablation.cc.o.d"
  "bench_reorder_ablation"
  "bench_reorder_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reorder_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
