# Empty compiler generated dependencies file for bench_fig9_sustained_bw.
# This may be replaced when dependencies are built.
