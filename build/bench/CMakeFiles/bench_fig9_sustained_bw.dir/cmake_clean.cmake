file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sustained_bw.dir/bench_fig9_sustained_bw.cc.o"
  "CMakeFiles/bench_fig9_sustained_bw.dir/bench_fig9_sustained_bw.cc.o.d"
  "bench_fig9_sustained_bw"
  "bench_fig9_sustained_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sustained_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
