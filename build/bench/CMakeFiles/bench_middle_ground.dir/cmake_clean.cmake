file(REMOVE_RECURSE
  "CMakeFiles/bench_middle_ground.dir/bench_middle_ground.cc.o"
  "CMakeFiles/bench_middle_ground.dir/bench_middle_ground.cc.o.d"
  "bench_middle_ground"
  "bench_middle_ground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_middle_ground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
