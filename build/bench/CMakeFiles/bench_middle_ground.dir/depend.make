# Empty dependencies file for bench_middle_ground.
# This may be replaced when dependencies are built.
