# Empty dependencies file for bench_duplex_ablation.
# This may be replaced when dependencies are built.
