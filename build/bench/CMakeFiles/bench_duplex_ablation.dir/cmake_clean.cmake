file(REMOVE_RECURSE
  "CMakeFiles/bench_duplex_ablation.dir/bench_duplex_ablation.cc.o"
  "CMakeFiles/bench_duplex_ablation.dir/bench_duplex_ablation.cc.o.d"
  "bench_duplex_ablation"
  "bench_duplex_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_duplex_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
