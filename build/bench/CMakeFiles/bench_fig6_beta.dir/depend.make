# Empty dependencies file for bench_fig6_beta.
# This may be replaced when dependencies are built.
