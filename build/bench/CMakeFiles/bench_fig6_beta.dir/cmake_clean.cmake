file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_beta.dir/bench_fig6_beta.cc.o"
  "CMakeFiles/bench_fig6_beta.dir/bench_fig6_beta.cc.o.d"
  "bench_fig6_beta"
  "bench_fig6_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
