file(REMOVE_RECURSE
  "CMakeFiles/bench_exflow_comparison.dir/bench_exflow_comparison.cc.o"
  "CMakeFiles/bench_exflow_comparison.dir/bench_exflow_comparison.cc.o.d"
  "bench_exflow_comparison"
  "bench_exflow_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exflow_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
