# Empty dependencies file for bench_exflow_comparison.
# This may be replaced when dependencies are built.
