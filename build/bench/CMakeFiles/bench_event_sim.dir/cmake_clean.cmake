file(REMOVE_RECURSE
  "CMakeFiles/bench_event_sim.dir/bench_event_sim.cc.o"
  "CMakeFiles/bench_event_sim.dir/bench_event_sim.cc.o.d"
  "bench_event_sim"
  "bench_event_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
