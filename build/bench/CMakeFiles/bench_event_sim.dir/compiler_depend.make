# Empty compiler generated dependencies file for bench_event_sim.
# This may be replaced when dependencies are built.
