# Empty compiler generated dependencies file for bench_smvp_fraction.
# This may be replaced when dependencies are built.
