file(REMOVE_RECURSE
  "CMakeFiles/bench_smvp_fraction.dir/bench_smvp_fraction.cc.o"
  "CMakeFiles/bench_smvp_fraction.dir/bench_smvp_fraction.cc.o.d"
  "bench_smvp_fraction"
  "bench_smvp_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smvp_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
