# Empty dependencies file for bench_fig7_properties.
# This may be replaced when dependencies are built.
