file(REMOVE_RECURSE
  "CMakeFiles/bench_tf_cache_model.dir/bench_tf_cache_model.cc.o"
  "CMakeFiles/bench_tf_cache_model.dir/bench_tf_cache_model.cc.o.d"
  "bench_tf_cache_model"
  "bench_tf_cache_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tf_cache_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
