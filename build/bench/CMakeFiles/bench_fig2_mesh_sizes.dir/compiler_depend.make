# Empty compiler generated dependencies file for bench_fig2_mesh_sizes.
# This may be replaced when dependencies are built.
