file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_mesh_sizes.dir/bench_fig2_mesh_sizes.cc.o"
  "CMakeFiles/bench_fig2_mesh_sizes.dir/bench_fig2_mesh_sizes.cc.o.d"
  "bench_fig2_mesh_sizes"
  "bench_fig2_mesh_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_mesh_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
