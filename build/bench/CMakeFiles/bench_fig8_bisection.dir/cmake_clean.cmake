file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bisection.dir/bench_fig8_bisection.cc.o"
  "CMakeFiles/bench_fig8_bisection.dir/bench_fig8_bisection.cc.o.d"
  "bench_fig8_bisection"
  "bench_fig8_bisection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
