# Empty compiler generated dependencies file for bench_app_speedup.
# This may be replaced when dependencies are built.
