# Empty dependencies file for bench_tf_kernels.
# This may be replaced when dependencies are built.
