file(REMOVE_RECURSE
  "CMakeFiles/bench_tf_kernels.dir/bench_tf_kernels.cc.o"
  "CMakeFiles/bench_tf_kernels.dir/bench_tf_kernels.cc.o.d"
  "bench_tf_kernels"
  "bench_tf_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tf_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
