
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scalability.cc" "bench/CMakeFiles/bench_scalability.dir/bench_scalability.cc.o" "gcc" "bench/CMakeFiles/bench_scalability.dir/bench_scalability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/quake_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/quake_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/quake_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quake_common.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/quake_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/quake_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
