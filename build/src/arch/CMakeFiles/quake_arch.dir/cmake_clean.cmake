file(REMOVE_RECURSE
  "CMakeFiles/quake_arch.dir/cache_model.cc.o"
  "CMakeFiles/quake_arch.dir/cache_model.cc.o.d"
  "CMakeFiles/quake_arch.dir/smvp_trace.cc.o"
  "CMakeFiles/quake_arch.dir/smvp_trace.cc.o.d"
  "libquake_arch.a"
  "libquake_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
