# Empty compiler generated dependencies file for quake_arch.
# This may be replaced when dependencies are built.
