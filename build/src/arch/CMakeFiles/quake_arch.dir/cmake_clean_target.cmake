file(REMOVE_RECURSE
  "libquake_arch.a"
)
