file(REMOVE_RECURSE
  "CMakeFiles/quake_sim.dir/seismogram.cc.o"
  "CMakeFiles/quake_sim.dir/seismogram.cc.o.d"
  "CMakeFiles/quake_sim.dir/simulation.cc.o"
  "CMakeFiles/quake_sim.dir/simulation.cc.o.d"
  "CMakeFiles/quake_sim.dir/source.cc.o"
  "CMakeFiles/quake_sim.dir/source.cc.o.d"
  "CMakeFiles/quake_sim.dir/time_stepper.cc.o"
  "CMakeFiles/quake_sim.dir/time_stepper.cc.o.d"
  "libquake_sim.a"
  "libquake_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
