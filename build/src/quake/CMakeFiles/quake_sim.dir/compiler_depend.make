# Empty compiler generated dependencies file for quake_sim.
# This may be replaced when dependencies are built.
