file(REMOVE_RECURSE
  "libquake_sim.a"
)
