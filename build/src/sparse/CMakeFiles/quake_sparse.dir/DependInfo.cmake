
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/assembly.cc" "src/sparse/CMakeFiles/quake_sparse.dir/assembly.cc.o" "gcc" "src/sparse/CMakeFiles/quake_sparse.dir/assembly.cc.o.d"
  "/root/repo/src/sparse/bcsr3.cc" "src/sparse/CMakeFiles/quake_sparse.dir/bcsr3.cc.o" "gcc" "src/sparse/CMakeFiles/quake_sparse.dir/bcsr3.cc.o.d"
  "/root/repo/src/sparse/csr.cc" "src/sparse/CMakeFiles/quake_sparse.dir/csr.cc.o" "gcc" "src/sparse/CMakeFiles/quake_sparse.dir/csr.cc.o.d"
  "/root/repo/src/sparse/elasticity.cc" "src/sparse/CMakeFiles/quake_sparse.dir/elasticity.cc.o" "gcc" "src/sparse/CMakeFiles/quake_sparse.dir/elasticity.cc.o.d"
  "/root/repo/src/sparse/reorder.cc" "src/sparse/CMakeFiles/quake_sparse.dir/reorder.cc.o" "gcc" "src/sparse/CMakeFiles/quake_sparse.dir/reorder.cc.o.d"
  "/root/repo/src/sparse/smvp.cc" "src/sparse/CMakeFiles/quake_sparse.dir/smvp.cc.o" "gcc" "src/sparse/CMakeFiles/quake_sparse.dir/smvp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/quake_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
