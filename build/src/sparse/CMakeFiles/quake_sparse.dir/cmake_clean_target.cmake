file(REMOVE_RECURSE
  "libquake_sparse.a"
)
