file(REMOVE_RECURSE
  "CMakeFiles/quake_sparse.dir/assembly.cc.o"
  "CMakeFiles/quake_sparse.dir/assembly.cc.o.d"
  "CMakeFiles/quake_sparse.dir/bcsr3.cc.o"
  "CMakeFiles/quake_sparse.dir/bcsr3.cc.o.d"
  "CMakeFiles/quake_sparse.dir/csr.cc.o"
  "CMakeFiles/quake_sparse.dir/csr.cc.o.d"
  "CMakeFiles/quake_sparse.dir/elasticity.cc.o"
  "CMakeFiles/quake_sparse.dir/elasticity.cc.o.d"
  "CMakeFiles/quake_sparse.dir/reorder.cc.o"
  "CMakeFiles/quake_sparse.dir/reorder.cc.o.d"
  "CMakeFiles/quake_sparse.dir/smvp.cc.o"
  "CMakeFiles/quake_sparse.dir/smvp.cc.o.d"
  "libquake_sparse.a"
  "libquake_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
