# Empty compiler generated dependencies file for quake_sparse.
# This may be replaced when dependencies are built.
