# Empty compiler generated dependencies file for quake_partition.
# This may be replaced when dependencies are built.
