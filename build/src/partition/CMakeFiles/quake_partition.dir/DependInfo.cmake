
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/baselines.cc" "src/partition/CMakeFiles/quake_partition.dir/baselines.cc.o" "gcc" "src/partition/CMakeFiles/quake_partition.dir/baselines.cc.o.d"
  "/root/repo/src/partition/geometric_bisection.cc" "src/partition/CMakeFiles/quake_partition.dir/geometric_bisection.cc.o" "gcc" "src/partition/CMakeFiles/quake_partition.dir/geometric_bisection.cc.o.d"
  "/root/repo/src/partition/partition_io.cc" "src/partition/CMakeFiles/quake_partition.dir/partition_io.cc.o" "gcc" "src/partition/CMakeFiles/quake_partition.dir/partition_io.cc.o.d"
  "/root/repo/src/partition/partition_stats.cc" "src/partition/CMakeFiles/quake_partition.dir/partition_stats.cc.o" "gcc" "src/partition/CMakeFiles/quake_partition.dir/partition_stats.cc.o.d"
  "/root/repo/src/partition/partitioner.cc" "src/partition/CMakeFiles/quake_partition.dir/partitioner.cc.o" "gcc" "src/partition/CMakeFiles/quake_partition.dir/partitioner.cc.o.d"
  "/root/repo/src/partition/refine_boundary.cc" "src/partition/CMakeFiles/quake_partition.dir/refine_boundary.cc.o" "gcc" "src/partition/CMakeFiles/quake_partition.dir/refine_boundary.cc.o.d"
  "/root/repo/src/partition/spectral.cc" "src/partition/CMakeFiles/quake_partition.dir/spectral.cc.o" "gcc" "src/partition/CMakeFiles/quake_partition.dir/spectral.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/quake_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
