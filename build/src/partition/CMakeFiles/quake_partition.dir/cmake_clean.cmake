file(REMOVE_RECURSE
  "CMakeFiles/quake_partition.dir/baselines.cc.o"
  "CMakeFiles/quake_partition.dir/baselines.cc.o.d"
  "CMakeFiles/quake_partition.dir/geometric_bisection.cc.o"
  "CMakeFiles/quake_partition.dir/geometric_bisection.cc.o.d"
  "CMakeFiles/quake_partition.dir/partition_io.cc.o"
  "CMakeFiles/quake_partition.dir/partition_io.cc.o.d"
  "CMakeFiles/quake_partition.dir/partition_stats.cc.o"
  "CMakeFiles/quake_partition.dir/partition_stats.cc.o.d"
  "CMakeFiles/quake_partition.dir/partitioner.cc.o"
  "CMakeFiles/quake_partition.dir/partitioner.cc.o.d"
  "CMakeFiles/quake_partition.dir/refine_boundary.cc.o"
  "CMakeFiles/quake_partition.dir/refine_boundary.cc.o.d"
  "CMakeFiles/quake_partition.dir/spectral.cc.o"
  "CMakeFiles/quake_partition.dir/spectral.cc.o.d"
  "libquake_partition.a"
  "libquake_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
