file(REMOVE_RECURSE
  "libquake_partition.a"
)
