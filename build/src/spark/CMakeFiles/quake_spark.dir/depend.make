# Empty dependencies file for quake_spark.
# This may be replaced when dependencies are built.
