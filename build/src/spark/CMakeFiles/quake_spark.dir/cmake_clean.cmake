file(REMOVE_RECURSE
  "CMakeFiles/quake_spark.dir/kernels.cc.o"
  "CMakeFiles/quake_spark.dir/kernels.cc.o.d"
  "libquake_spark.a"
  "libquake_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
