file(REMOVE_RECURSE
  "libquake_spark.a"
)
