file(REMOVE_RECURSE
  "CMakeFiles/quake_mesh.dir/generator.cc.o"
  "CMakeFiles/quake_mesh.dir/generator.cc.o.d"
  "CMakeFiles/quake_mesh.dir/geometry.cc.o"
  "CMakeFiles/quake_mesh.dir/geometry.cc.o.d"
  "CMakeFiles/quake_mesh.dir/mesh_io.cc.o"
  "CMakeFiles/quake_mesh.dir/mesh_io.cc.o.d"
  "CMakeFiles/quake_mesh.dir/quality.cc.o"
  "CMakeFiles/quake_mesh.dir/quality.cc.o.d"
  "CMakeFiles/quake_mesh.dir/refine.cc.o"
  "CMakeFiles/quake_mesh.dir/refine.cc.o.d"
  "CMakeFiles/quake_mesh.dir/soil_model.cc.o"
  "CMakeFiles/quake_mesh.dir/soil_model.cc.o.d"
  "CMakeFiles/quake_mesh.dir/tet_mesh.cc.o"
  "CMakeFiles/quake_mesh.dir/tet_mesh.cc.o.d"
  "libquake_mesh.a"
  "libquake_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
