# Empty compiler generated dependencies file for quake_mesh.
# This may be replaced when dependencies are built.
