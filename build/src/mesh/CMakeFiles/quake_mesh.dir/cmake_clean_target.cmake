file(REMOVE_RECURSE
  "libquake_mesh.a"
)
