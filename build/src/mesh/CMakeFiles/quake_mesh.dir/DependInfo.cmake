
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/generator.cc" "src/mesh/CMakeFiles/quake_mesh.dir/generator.cc.o" "gcc" "src/mesh/CMakeFiles/quake_mesh.dir/generator.cc.o.d"
  "/root/repo/src/mesh/geometry.cc" "src/mesh/CMakeFiles/quake_mesh.dir/geometry.cc.o" "gcc" "src/mesh/CMakeFiles/quake_mesh.dir/geometry.cc.o.d"
  "/root/repo/src/mesh/mesh_io.cc" "src/mesh/CMakeFiles/quake_mesh.dir/mesh_io.cc.o" "gcc" "src/mesh/CMakeFiles/quake_mesh.dir/mesh_io.cc.o.d"
  "/root/repo/src/mesh/quality.cc" "src/mesh/CMakeFiles/quake_mesh.dir/quality.cc.o" "gcc" "src/mesh/CMakeFiles/quake_mesh.dir/quality.cc.o.d"
  "/root/repo/src/mesh/refine.cc" "src/mesh/CMakeFiles/quake_mesh.dir/refine.cc.o" "gcc" "src/mesh/CMakeFiles/quake_mesh.dir/refine.cc.o.d"
  "/root/repo/src/mesh/soil_model.cc" "src/mesh/CMakeFiles/quake_mesh.dir/soil_model.cc.o" "gcc" "src/mesh/CMakeFiles/quake_mesh.dir/soil_model.cc.o.d"
  "/root/repo/src/mesh/tet_mesh.cc" "src/mesh/CMakeFiles/quake_mesh.dir/tet_mesh.cc.o" "gcc" "src/mesh/CMakeFiles/quake_mesh.dir/tet_mesh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
