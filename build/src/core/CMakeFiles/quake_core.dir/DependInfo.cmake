
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_model.cc" "src/core/CMakeFiles/quake_core.dir/app_model.cc.o" "gcc" "src/core/CMakeFiles/quake_core.dir/app_model.cc.o.d"
  "/root/repo/src/core/characterization.cc" "src/core/CMakeFiles/quake_core.dir/characterization.cc.o" "gcc" "src/core/CMakeFiles/quake_core.dir/characterization.cc.o.d"
  "/root/repo/src/core/logp.cc" "src/core/CMakeFiles/quake_core.dir/logp.cc.o" "gcc" "src/core/CMakeFiles/quake_core.dir/logp.cc.o.d"
  "/root/repo/src/core/param_fit.cc" "src/core/CMakeFiles/quake_core.dir/param_fit.cc.o" "gcc" "src/core/CMakeFiles/quake_core.dir/param_fit.cc.o.d"
  "/root/repo/src/core/perf_model.cc" "src/core/CMakeFiles/quake_core.dir/perf_model.cc.o" "gcc" "src/core/CMakeFiles/quake_core.dir/perf_model.cc.o.d"
  "/root/repo/src/core/reference.cc" "src/core/CMakeFiles/quake_core.dir/reference.cc.o" "gcc" "src/core/CMakeFiles/quake_core.dir/reference.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/quake_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/quake_core.dir/report.cc.o.d"
  "/root/repo/src/core/requirements.cc" "src/core/CMakeFiles/quake_core.dir/requirements.cc.o" "gcc" "src/core/CMakeFiles/quake_core.dir/requirements.cc.o.d"
  "/root/repo/src/core/synthetic_workloads.cc" "src/core/CMakeFiles/quake_core.dir/synthetic_workloads.cc.o" "gcc" "src/core/CMakeFiles/quake_core.dir/synthetic_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
