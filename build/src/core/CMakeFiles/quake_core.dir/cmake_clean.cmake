file(REMOVE_RECURSE
  "CMakeFiles/quake_core.dir/app_model.cc.o"
  "CMakeFiles/quake_core.dir/app_model.cc.o.d"
  "CMakeFiles/quake_core.dir/characterization.cc.o"
  "CMakeFiles/quake_core.dir/characterization.cc.o.d"
  "CMakeFiles/quake_core.dir/logp.cc.o"
  "CMakeFiles/quake_core.dir/logp.cc.o.d"
  "CMakeFiles/quake_core.dir/param_fit.cc.o"
  "CMakeFiles/quake_core.dir/param_fit.cc.o.d"
  "CMakeFiles/quake_core.dir/perf_model.cc.o"
  "CMakeFiles/quake_core.dir/perf_model.cc.o.d"
  "CMakeFiles/quake_core.dir/reference.cc.o"
  "CMakeFiles/quake_core.dir/reference.cc.o.d"
  "CMakeFiles/quake_core.dir/report.cc.o"
  "CMakeFiles/quake_core.dir/report.cc.o.d"
  "CMakeFiles/quake_core.dir/requirements.cc.o"
  "CMakeFiles/quake_core.dir/requirements.cc.o.d"
  "CMakeFiles/quake_core.dir/synthetic_workloads.cc.o"
  "CMakeFiles/quake_core.dir/synthetic_workloads.cc.o.d"
  "libquake_core.a"
  "libquake_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
