# Empty compiler generated dependencies file for quake_core.
# This may be replaced when dependencies are built.
