file(REMOVE_RECURSE
  "libquake_core.a"
)
