
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/characterize.cc" "src/parallel/CMakeFiles/quake_parallel.dir/characterize.cc.o" "gcc" "src/parallel/CMakeFiles/quake_parallel.dir/characterize.cc.o.d"
  "/root/repo/src/parallel/comm_schedule.cc" "src/parallel/CMakeFiles/quake_parallel.dir/comm_schedule.cc.o" "gcc" "src/parallel/CMakeFiles/quake_parallel.dir/comm_schedule.cc.o.d"
  "/root/repo/src/parallel/distributor.cc" "src/parallel/CMakeFiles/quake_parallel.dir/distributor.cc.o" "gcc" "src/parallel/CMakeFiles/quake_parallel.dir/distributor.cc.o.d"
  "/root/repo/src/parallel/event_sim.cc" "src/parallel/CMakeFiles/quake_parallel.dir/event_sim.cc.o" "gcc" "src/parallel/CMakeFiles/quake_parallel.dir/event_sim.cc.o.d"
  "/root/repo/src/parallel/machine.cc" "src/parallel/CMakeFiles/quake_parallel.dir/machine.cc.o" "gcc" "src/parallel/CMakeFiles/quake_parallel.dir/machine.cc.o.d"
  "/root/repo/src/parallel/parallel_smvp.cc" "src/parallel/CMakeFiles/quake_parallel.dir/parallel_smvp.cc.o" "gcc" "src/parallel/CMakeFiles/quake_parallel.dir/parallel_smvp.cc.o.d"
  "/root/repo/src/parallel/phase_simulator.cc" "src/parallel/CMakeFiles/quake_parallel.dir/phase_simulator.cc.o" "gcc" "src/parallel/CMakeFiles/quake_parallel.dir/phase_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/quake_core.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/quake_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/quake_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/quake_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
