file(REMOVE_RECURSE
  "libquake_parallel.a"
)
