file(REMOVE_RECURSE
  "CMakeFiles/quake_parallel.dir/characterize.cc.o"
  "CMakeFiles/quake_parallel.dir/characterize.cc.o.d"
  "CMakeFiles/quake_parallel.dir/comm_schedule.cc.o"
  "CMakeFiles/quake_parallel.dir/comm_schedule.cc.o.d"
  "CMakeFiles/quake_parallel.dir/distributor.cc.o"
  "CMakeFiles/quake_parallel.dir/distributor.cc.o.d"
  "CMakeFiles/quake_parallel.dir/event_sim.cc.o"
  "CMakeFiles/quake_parallel.dir/event_sim.cc.o.d"
  "CMakeFiles/quake_parallel.dir/machine.cc.o"
  "CMakeFiles/quake_parallel.dir/machine.cc.o.d"
  "CMakeFiles/quake_parallel.dir/parallel_smvp.cc.o"
  "CMakeFiles/quake_parallel.dir/parallel_smvp.cc.o.d"
  "CMakeFiles/quake_parallel.dir/phase_simulator.cc.o"
  "CMakeFiles/quake_parallel.dir/phase_simulator.cc.o.d"
  "libquake_parallel.a"
  "libquake_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
