# Empty dependencies file for quake_parallel.
# This may be replaced when dependencies are built.
