file(REMOVE_RECURSE
  "libquake_common.a"
)
