# Empty dependencies file for quake_common.
# This may be replaced when dependencies are built.
