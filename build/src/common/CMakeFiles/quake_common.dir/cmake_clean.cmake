file(REMOVE_RECURSE
  "CMakeFiles/quake_common.dir/args.cc.o"
  "CMakeFiles/quake_common.dir/args.cc.o.d"
  "CMakeFiles/quake_common.dir/table.cc.o"
  "CMakeFiles/quake_common.dir/table.cc.o.d"
  "libquake_common.a"
  "libquake_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
