# Empty dependencies file for test_multi_basin.
# This may be replaced when dependencies are built.
