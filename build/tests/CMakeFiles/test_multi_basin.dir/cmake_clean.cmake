file(REMOVE_RECURSE
  "CMakeFiles/test_multi_basin.dir/test_multi_basin.cc.o"
  "CMakeFiles/test_multi_basin.dir/test_multi_basin.cc.o.d"
  "test_multi_basin"
  "test_multi_basin.pdb"
  "test_multi_basin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_basin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
