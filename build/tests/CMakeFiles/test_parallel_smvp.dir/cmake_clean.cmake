file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_smvp.dir/test_parallel_smvp.cc.o"
  "CMakeFiles/test_parallel_smvp.dir/test_parallel_smvp.cc.o.d"
  "test_parallel_smvp"
  "test_parallel_smvp.pdb"
  "test_parallel_smvp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_smvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
