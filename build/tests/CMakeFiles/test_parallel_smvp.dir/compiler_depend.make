# Empty compiler generated dependencies file for test_parallel_smvp.
# This may be replaced when dependencies are built.
