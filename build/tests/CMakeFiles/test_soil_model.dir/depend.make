# Empty dependencies file for test_soil_model.
# This may be replaced when dependencies are built.
