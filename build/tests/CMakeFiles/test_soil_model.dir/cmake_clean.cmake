file(REMOVE_RECURSE
  "CMakeFiles/test_soil_model.dir/test_soil_model.cc.o"
  "CMakeFiles/test_soil_model.dir/test_soil_model.cc.o.d"
  "test_soil_model"
  "test_soil_model.pdb"
  "test_soil_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soil_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
