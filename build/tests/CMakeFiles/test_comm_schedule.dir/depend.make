# Empty dependencies file for test_comm_schedule.
# This may be replaced when dependencies are built.
