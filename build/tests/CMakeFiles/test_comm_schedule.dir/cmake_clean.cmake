file(REMOVE_RECURSE
  "CMakeFiles/test_comm_schedule.dir/test_comm_schedule.cc.o"
  "CMakeFiles/test_comm_schedule.dir/test_comm_schedule.cc.o.d"
  "test_comm_schedule"
  "test_comm_schedule.pdb"
  "test_comm_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
