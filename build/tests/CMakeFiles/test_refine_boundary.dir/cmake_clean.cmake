file(REMOVE_RECURSE
  "CMakeFiles/test_refine_boundary.dir/test_refine_boundary.cc.o"
  "CMakeFiles/test_refine_boundary.dir/test_refine_boundary.cc.o.d"
  "test_refine_boundary"
  "test_refine_boundary.pdb"
  "test_refine_boundary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refine_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
