# Empty compiler generated dependencies file for test_distributor.
# This may be replaced when dependencies are built.
