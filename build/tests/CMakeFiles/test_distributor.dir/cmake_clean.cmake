file(REMOVE_RECURSE
  "CMakeFiles/test_distributor.dir/test_distributor.cc.o"
  "CMakeFiles/test_distributor.dir/test_distributor.cc.o.d"
  "test_distributor"
  "test_distributor.pdb"
  "test_distributor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
