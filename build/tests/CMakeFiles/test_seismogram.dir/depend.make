# Empty dependencies file for test_seismogram.
# This may be replaced when dependencies are built.
