file(REMOVE_RECURSE
  "CMakeFiles/test_seismogram.dir/test_seismogram.cc.o"
  "CMakeFiles/test_seismogram.dir/test_seismogram.cc.o.d"
  "test_seismogram"
  "test_seismogram.pdb"
  "test_seismogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seismogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
