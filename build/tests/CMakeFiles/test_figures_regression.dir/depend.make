# Empty dependencies file for test_figures_regression.
# This may be replaced when dependencies are built.
