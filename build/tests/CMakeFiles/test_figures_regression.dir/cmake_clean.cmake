file(REMOVE_RECURSE
  "CMakeFiles/test_figures_regression.dir/test_figures_regression.cc.o"
  "CMakeFiles/test_figures_regression.dir/test_figures_regression.cc.o.d"
  "test_figures_regression"
  "test_figures_regression.pdb"
  "test_figures_regression[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figures_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
