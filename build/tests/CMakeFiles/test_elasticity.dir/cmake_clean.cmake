file(REMOVE_RECURSE
  "CMakeFiles/test_elasticity.dir/test_elasticity.cc.o"
  "CMakeFiles/test_elasticity.dir/test_elasticity.cc.o.d"
  "test_elasticity"
  "test_elasticity.pdb"
  "test_elasticity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
