# Empty dependencies file for test_elasticity.
# This may be replaced when dependencies are built.
