file(REMOVE_RECURSE
  "CMakeFiles/test_tet_mesh.dir/test_tet_mesh.cc.o"
  "CMakeFiles/test_tet_mesh.dir/test_tet_mesh.cc.o.d"
  "test_tet_mesh"
  "test_tet_mesh.pdb"
  "test_tet_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tet_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
