# Empty dependencies file for test_tet_mesh.
# This may be replaced when dependencies are built.
