file(REMOVE_RECURSE
  "CMakeFiles/test_time_stepper.dir/test_time_stepper.cc.o"
  "CMakeFiles/test_time_stepper.dir/test_time_stepper.cc.o.d"
  "test_time_stepper"
  "test_time_stepper.pdb"
  "test_time_stepper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_stepper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
