# Empty dependencies file for test_time_stepper.
# This may be replaced when dependencies are built.
