# Empty compiler generated dependencies file for test_param_fit.
# This may be replaced when dependencies are built.
