file(REMOVE_RECURSE
  "CMakeFiles/test_param_fit.dir/test_param_fit.cc.o"
  "CMakeFiles/test_param_fit.dir/test_param_fit.cc.o.d"
  "test_param_fit"
  "test_param_fit.pdb"
  "test_param_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
