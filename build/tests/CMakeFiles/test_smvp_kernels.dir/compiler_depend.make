# Empty compiler generated dependencies file for test_smvp_kernels.
# This may be replaced when dependencies are built.
