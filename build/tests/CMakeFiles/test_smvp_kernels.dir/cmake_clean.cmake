file(REMOVE_RECURSE
  "CMakeFiles/test_smvp_kernels.dir/test_smvp_kernels.cc.o"
  "CMakeFiles/test_smvp_kernels.dir/test_smvp_kernels.cc.o.d"
  "test_smvp_kernels"
  "test_smvp_kernels.pdb"
  "test_smvp_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smvp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
