# Empty dependencies file for test_phase_simulator.
# This may be replaced when dependencies are built.
