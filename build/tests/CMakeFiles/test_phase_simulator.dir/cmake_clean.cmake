file(REMOVE_RECURSE
  "CMakeFiles/test_phase_simulator.dir/test_phase_simulator.cc.o"
  "CMakeFiles/test_phase_simulator.dir/test_phase_simulator.cc.o.d"
  "test_phase_simulator"
  "test_phase_simulator.pdb"
  "test_phase_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
