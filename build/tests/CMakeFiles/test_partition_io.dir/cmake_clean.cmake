file(REMOVE_RECURSE
  "CMakeFiles/test_partition_io.dir/test_partition_io.cc.o"
  "CMakeFiles/test_partition_io.dir/test_partition_io.cc.o.d"
  "test_partition_io"
  "test_partition_io.pdb"
  "test_partition_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
