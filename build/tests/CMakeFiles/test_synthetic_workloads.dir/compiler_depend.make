# Empty compiler generated dependencies file for test_synthetic_workloads.
# This may be replaced when dependencies are built.
