file(REMOVE_RECURSE
  "CMakeFiles/test_synthetic_workloads.dir/test_synthetic_workloads.cc.o"
  "CMakeFiles/test_synthetic_workloads.dir/test_synthetic_workloads.cc.o.d"
  "test_synthetic_workloads"
  "test_synthetic_workloads.pdb"
  "test_synthetic_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synthetic_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
