# Empty dependencies file for test_bcsr3.
# This may be replaced when dependencies are built.
