file(REMOVE_RECURSE
  "CMakeFiles/test_bcsr3.dir/test_bcsr3.cc.o"
  "CMakeFiles/test_bcsr3.dir/test_bcsr3.cc.o.d"
  "test_bcsr3"
  "test_bcsr3.pdb"
  "test_bcsr3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcsr3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
